#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Chaos harness for `mcpat-guard` and the worker pool.
//!
//! Injects the three failure modes the guard layer promises to survive —
//! worker-thread kills, forced solve-cache evictions, and mid-build
//! cancellations at randomized checkpoints — across all four validation
//! presets, then asserts the recovery invariants:
//!
//! * the pool keeps serving after every kill (dead lanes respawn),
//! * the solve cache never serves a partially materialized entry, and
//! * a rerun of the same configuration after any amount of chaos is
//!   bit-identical to a clean build.
//!
//! The seed is printed on every run and can be pinned with
//! `MCPAT_CHAOS_SEED` to replay a failure.

use std::sync::{Mutex, MutexGuard, OnceLock};

use mcpat::array::memo;
use mcpat::guard::{Budget, GuardError};
use mcpat::tech::{DeviceType, TechNode};
use mcpat::{
    dse_streaming, AxisGrid, DseCheckpoint, DseOptions, ParetoFrontier, Processor, ProcessorConfig,
    WorkloadModel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Serializes tests that flip process-global knobs (thread override,
/// memo mode, cache cap).
fn knob_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the default knobs when a test exits (even by panic).
struct KnobReset;
impl Drop for KnobReset {
    fn drop(&mut self) {
        mcpat::par::set_thread_override(0);
        memo::set_auto();
        memo::set_cap(None);
    }
}

fn presets() -> Vec<ProcessorConfig> {
    vec![
        ProcessorConfig::niagara(),
        ProcessorConfig::niagara2(),
        ProcessorConfig::alpha21364(),
        ProcessorConfig::tulsa(),
    ]
}

/// The replayable chaos seed, printed once per process.
fn chaos_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let seed = std::env::var("MCPAT_CHAOS_SEED")
            .ok()
            .and_then(|v| {
                let v = v.trim();
                v.strip_prefix("0x")
                    .map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
            })
            .unwrap_or(0x4d63_5041_5443_4841); // "McPATCHA"
        eprintln!("chaos seed: {seed:#018x} (replay with MCPAT_CHAOS_SEED)");
        seed
    })
}

/// Every externally observable f64 of a built chip, as exact bit
/// patterns (same shape as `perf_identity.rs`): a single differing bit
/// after chaos is a failure.
fn fingerprint(chip: &Processor) -> Vec<(String, u64)> {
    let mut v = Vec::new();
    let power = chip.peak_power();
    for item in &power.items {
        v.push((format!("{}.dynamic", item.name), item.dynamic.to_bits()));
        v.push((
            format!("{}.sub", item.name),
            item.leakage.subthreshold.to_bits(),
        ));
        v.push((format!("{}.gate", item.name), item.leakage.gate.to_bits()));
    }
    for item in &power.core_detail.items {
        v.push((
            format!("core.{}.dynamic", item.name),
            item.dynamic.to_bits(),
        ));
        v.push((
            format!("core.{}.leak", item.name),
            item.leakage.total().to_bits(),
        ));
    }
    for item in chip.area_breakdown() {
        v.push((format!("area.{}", item.name), item.area.to_bits()));
    }
    let t = chip.timing();
    v.push(("timing.fo4".into(), t.fo4.to_bits()));
    v.push((
        "timing.core_max_clock".into(),
        t.core_max_clock_hz.to_bits(),
    ));
    v.push(("timing.l2_cycle".into(), t.l2_cycle_time.to_bits()));
    v.push(("die_area".into(), chip.die_area().to_bits()));
    v
}

fn assert_identical(a: &[(String, u64)], b: &[(String, u64)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: fingerprint lengths differ");
    for ((na, xa), (nb, xb)) in a.iter().zip(b) {
        assert_eq!(na, nb, "{what}: component order differs");
        assert_eq!(
            xa,
            xb,
            "{what}: `{na}` differs: {:e} vs {:e}",
            f64::from_bits(*xa),
            f64::from_bits(*xb)
        );
    }
}

/// Clean reference fingerprints for every preset, built with the cache
/// cleared so later (chaos-era) builds exercise the same solve paths.
fn clean_references() -> Vec<(ProcessorConfig, Vec<(String, u64)>)> {
    presets()
        .into_iter()
        .map(|cfg| {
            memo::clear();
            let chip = Processor::build(&cfg).expect("clean build");
            let fp = fingerprint(&chip);
            (cfg, fp)
        })
        .collect()
}

/// Mid-build cancellation at randomized checkpoints: every outcome is
/// either a complete bit-identical chip or a typed `GuardError`, and an
/// immediate budget-free rerun — over whatever partial cache the
/// cancelled attempt left behind — is bit-identical to the clean build.
#[test]
fn mid_build_cancellation_leaves_no_poisoned_state() {
    let _lock = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(4);
    memo::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(chaos_seed() ^ 0x00CA_9CE1);

    let refs = clean_references();
    let mut cancelled = 0u32;
    let mut completed = 0u32;
    for (cfg, clean) in &refs {
        for round in 0..10 {
            // Cold cache each round so the cancel lands inside live
            // solver sweeps, not on an all-hits fast path.
            memo::clear();
            let budget = Budget::unbounded();
            // Mostly early trips; one in five is generous enough to
            // cover the whole build and must then change nothing.
            let checks = if rng.gen_range(0u32..5) == 0 {
                u64::MAX
            } else {
                rng.gen_range(0..600)
            };
            budget.cancel_after_checks(checks);
            let outcome = {
                let _scope = budget.enter();
                Processor::build(cfg)
            };
            match outcome {
                Ok(chip) => {
                    completed += 1;
                    assert_identical(
                        clean,
                        &fingerprint(&chip),
                        &format!("{} survived cancel round {round}", cfg.name),
                    );
                }
                Err(e) => {
                    cancelled += 1;
                    let g = e.guard_error().unwrap_or_else(|| {
                        panic!("{}: non-guard error after cancel: {e}", cfg.name)
                    });
                    assert!(
                        matches!(g, GuardError::Cancelled { .. }),
                        "{}: expected Cancelled, got {g}",
                        cfg.name
                    );
                }
            }
            // Zero poisoned state: the very next unbudgeted build, on
            // top of whatever the cancelled attempt cached, matches the
            // clean reference bit for bit.
            let rerun = Processor::build(cfg)
                .unwrap_or_else(|e| panic!("{}: rerun failed after cancel: {e}", cfg.name));
            assert_identical(
                clean,
                &fingerprint(&rerun),
                &format!("{} rerun after cancel round {round}", cfg.name),
            );
        }
    }
    // With 600-check trip points against cold multi-thousand-checkpoint
    // builds, both arms must actually run.
    assert!(cancelled > 0, "chaos never cancelled a build");
    assert!(completed > 0, "chaos never let a build finish");
}

/// Worker kills: tasks that murder their host worker produce a typed
/// error at the submitter (never a hang, never an untyped panic), dead
/// lanes respawn, and the pool then serves clean work — including full
/// preset builds bit-identical to pre-chaos references.
#[test]
fn worker_kills_respawn_and_the_pool_keeps_serving() {
    let _lock = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(4);
    memo::set_enabled(true);

    let refs = clean_references();
    let before = mcpat::par::pool::stats().workers_respawned;
    let mut kill_errors = 0u32;
    for round in 0..40 {
        let items: Vec<u64> = (0..64).collect();
        let result = mcpat::par::par_map(&items, 2, |_, &x| {
            // The sleep blocks whichever thread runs the task, so on a
            // single-CPU host the helping submitter cedes the core and
            // the notified resident workers provably pop part of the
            // batch — instant tasks can be drained entirely inline by
            // the submitter, and the kill below would never fire.
            std::thread::sleep(std::time::Duration::from_micros(100));
            // Dies only when running on a resident pool worker; inline
            // execution on the submitting thread is a no-op.
            mcpat::par::pool::chaos_kill_worker();
            x * x
        });
        match result {
            Ok(v) => assert_eq!(v.len(), items.len()),
            Err(e) => {
                kill_errors += 1;
                assert!(!e.to_string().is_empty(), "round {round}: empty error");
            }
        }
        if mcpat::par::pool::stats().workers_respawned > before {
            break;
        }
    }
    let stats = mcpat::par::pool::stats();
    assert!(
        stats.workers_respawned > before,
        "no worker was ever killed and respawned (respawned = {})",
        stats.workers_respawned
    );
    assert!(kill_errors > 0, "kills never surfaced as typed errors");

    // The pool still computes correct results...
    let items: Vec<u64> = (0..128).collect();
    let squares = mcpat::par::par_map(&items, 2, |_, &x| x * x).expect("pool serves after kills");
    assert!(squares
        .iter()
        .enumerate()
        .all(|(i, &s)| s == (i as u64) * (i as u64)));

    // ...and full builds over it are bit-identical to pre-chaos runs.
    for (cfg, clean) in &refs {
        memo::clear();
        let chip = Processor::build(cfg).expect("build after kills");
        assert_identical(
            clean,
            &fingerprint(&chip),
            &format!("{} after kills", cfg.name),
        );
    }
}

/// Forced evictions: a solve cache squeezed to near-nothing changes
/// throughput, never results. Eviction pressure must be visible both in
/// the global cache counters and in the per-build `BuildPerf` billing.
#[test]
fn forced_evictions_never_change_results() {
    let _lock = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(4);
    memo::set_enabled(true);

    let refs = clean_references();
    memo::set_cap(Some(2));
    let evictions_before = memo::stats().evictions;
    let mut billed = 0u64;
    for (cfg, clean) in &refs {
        memo::clear();
        // Two passes: the second runs over whatever survived eviction.
        for pass in 0..2 {
            let chip = Processor::build(cfg).expect("build under eviction pressure");
            assert_identical(
                clean,
                &fingerprint(&chip),
                &format!("{} evict pass {pass}", cfg.name),
            );
            billed += chip.perf.solve_cache_evictions;
        }
    }
    let after = memo::stats();
    assert!(
        after.evictions > evictions_before,
        "cap 2 produced no evictions"
    );
    assert!(billed > 0, "BuildPerf never billed an eviction under cap 2");
    memo::set_cap(None);
}

/// Asserts two frontiers are the same down to the last bit: points,
/// order, names, cursors, and all six tracked winners.
fn assert_frontier_bits(a: &ParetoFrontier, b: &ParetoFrontier, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: frontier sizes differ");
    for (x, y) in a.points().iter().zip(b.points().iter()) {
        assert_eq!(x.name, y.name, "{what}: point name differs");
        assert_eq!(x.cursor, y.cursor, "{what}: point cursor differs");
        assert_eq!(x.area.to_bits(), y.area.to_bits(), "{what}: area bits");
        assert_eq!(
            x.peak_power.to_bits(),
            y.peak_power.to_bits(),
            "{what}: peak bits"
        );
        assert_eq!(
            x.metrics.delay.to_bits(),
            y.metrics.delay.to_bits(),
            "{what}: delay bits"
        );
        assert_eq!(
            x.metrics.energy.to_bits(),
            y.metrics.energy.to_bits(),
            "{what}: energy bits"
        );
    }
    for (wa, wb) in a.winners().iter().zip(b.winners().iter()) {
        match (wa, wb) {
            (Some(x), Some(y)) => {
                assert_eq!(x.cursor, y.cursor, "{what}: winner cursor differs");
                assert_eq!(
                    x.metrics.energy.to_bits(),
                    y.metrics.energy.to_bits(),
                    "{what}: winner energy bits"
                );
            }
            (None, None) => {}
            _ => panic!("{what}: winner presence differs"),
        }
    }
}

/// Cancelled sweeps resume losslessly: a DSE run killed by the guard's
/// cooperative cancel at a randomized checkpoint count, then resumed
/// from its last emitted checkpoint (possibly through several further
/// kills), converges on a frontier bit-identical to an uninterrupted
/// sweep's.
#[test]
fn cancelled_dse_sweeps_resume_to_a_bit_identical_frontier() {
    let _lock = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(2);
    memo::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(chaos_seed() ^ 0x0D5E_0D5E);

    let grid = AxisGrid::manycore(
        vec![TechNode::N45, TechNode::N22],
        vec![DeviceType::Hp],
        vec![2, 4],
        vec![1 << 20, 2 << 20],
        (0..20).map(|i| 1.0e9 + 0.1e9 * f64::from(i)).collect(),
    );
    let opts = DseOptions {
        chunk: 16,
        checkpoint_every: 32,
        ..DseOptions::default()
    };
    let reference = dse_streaming(
        &grid,
        &opts,
        &mut WorkloadModel::default(),
        None,
        |_| Ok(()),
    )
    .expect("uninterrupted sweep");

    let mut kills = 0u32;
    for round in 0..8 {
        let mut last_cp: Option<DseCheckpoint> = None;
        // Kill the sweep after a random number of budget checks, then
        // keep resuming (each resume under a fresh random kill budget)
        // until one attempt runs to completion.
        let mut attempts = 0;
        let finished = loop {
            attempts += 1;
            assert!(attempts < 64, "round {round}: resume never converged");
            let budget = Budget::unbounded();
            // The whole warm sweep performs a few hundred budget
            // checks; trip points mostly land inside it, and the tail
            // of the range occasionally lets a run finish early.
            let checks = if attempts > 16 {
                u64::MAX // guarantee convergence in degenerate seeds
            } else {
                rng.gen_range(20..400)
            };
            budget.cancel_after_checks(checks);
            let resume_from = last_cp.clone();
            let mut newest: Option<DseCheckpoint> = None;
            let outcome = {
                let _scope = budget.enter();
                dse_streaming(
                    &grid,
                    &opts,
                    &mut WorkloadModel::default(),
                    resume_from.as_ref(),
                    |cp| {
                        newest = Some(cp.clone());
                        Ok(())
                    },
                )
            };
            if newest.is_some() {
                last_cp = newest;
            }
            match outcome {
                Ok(result) => break result,
                Err(e) => {
                    kills += 1;
                    let g = e
                        .guard_error()
                        .unwrap_or_else(|| panic!("round {round}: non-guard error: {e}"));
                    assert!(
                        matches!(g, GuardError::Cancelled { .. }),
                        "round {round}: expected Cancelled, got {g}"
                    );
                }
            }
        };
        assert_frontier_bits(
            &finished.frontier,
            &reference.frontier,
            &format!("round {round} ({attempts} attempt(s))"),
        );
        // Candidate accounting survives resume exactly; only the
        // full-vs-delta build split may shift at resume points.
        assert_eq!(finished.perf.candidates, reference.perf.candidates);
        assert_eq!(finished.perf.pruned, reference.perf.pruned);
        assert_eq!(finished.perf.rejected, reference.perf.rejected);
    }
    assert!(kills > 0, "chaos never cancelled a sweep");
}

/// The combined storm: randomized kills, cancels, and cache squeezes
/// interleaved across random presets — then, with knobs restored, every
/// preset rebuilds bit-identically and the pool answers a final sanity
/// fan-out.
#[test]
fn randomized_mixed_chaos_then_bit_identical_recovery() {
    let _lock = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(4);
    memo::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(chaos_seed() ^ 0x0057_0293);

    let refs = clean_references();
    for round in 0..24 {
        let (cfg, _) = &refs[rng.gen_range(0..refs.len())];
        match rng.gen_range(0u32..3) {
            0 => {
                // Kill storm through a plain fan-out.
                let items: Vec<u64> = (0..32).collect();
                let _ = mcpat::par::par_map(&items, 2, |_, &x| {
                    mcpat::par::pool::chaos_kill_worker();
                    x + 1
                });
            }
            1 => {
                // Mid-build cancel at a random checkpoint.
                memo::clear();
                let budget = Budget::unbounded();
                budget.cancel_after_checks(rng.gen_range(0..800));
                let _scope = budget.enter();
                if let Err(e) = Processor::build(cfg) {
                    assert!(
                        e.guard_error().is_some(),
                        "round {round}: non-guard chaos error: {e}"
                    );
                }
            }
            _ => {
                // Build under a randomly squeezed cache.
                memo::set_cap(Some(rng.gen_range(1..6)));
                memo::clear();
                Processor::build(cfg)
                    .unwrap_or_else(|e| panic!("round {round}: eviction-only build failed: {e}"));
                memo::set_cap(None);
            }
        }
    }

    // Recovery: defaults back, everything bit-identical, pool alive.
    memo::set_cap(None);
    for (cfg, clean) in &refs {
        memo::clear();
        let chip = Processor::build(cfg).expect("post-storm build");
        assert_identical(
            clean,
            &fingerprint(&chip),
            &format!("{} post-storm", cfg.name),
        );
    }
    let items: Vec<u64> = (0..64).collect();
    let doubled = mcpat::par::par_map(&items, 2, |_, &x| x * 2).expect("pool after storm");
    assert_eq!(doubled[63], 126);
}
