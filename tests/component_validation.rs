#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Component-level validation: the paper validates its array models
//! against circuit simulation; here we pin our array solver against
//! well-known published/CACTI-class reference points (order-of-magnitude
//! anchors, generous ±60% bands — these guard against unit mistakes and
//! catastrophic model drift, not calibration detail).

use mcpat::array::cache::{AccessMode, CacheSpec};
use mcpat::array::{ArraySpec, OptTarget, Ports};
use mcpat::tech::{DeviceType, TechNode, TechParams};

struct Anchor {
    what: &'static str,
    measured: f64,
    expected: f64,
    /// Allowed ratio band (measured/expected within [1/band, band]).
    band: f64,
}

fn check(anchors: &[Anchor]) {
    for a in anchors {
        let ratio = a.measured / a.expected;
        assert!(
            ratio > 1.0 / a.band && ratio < a.band,
            "{}: measured {:.3e} vs expected {:.3e} (ratio {:.2})",
            a.what,
            a.measured,
            a.expected,
            ratio
        );
    }
}

#[test]
fn l1_cache_at_65nm_matches_cacti_class_numbers() {
    let tech = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
    let l1 = CacheSpec::new("l1", 32 * 1024, 64, 4)
        .solve(&tech, OptTarget::EnergyDelay)
        .unwrap();
    check(&[
        Anchor {
            what: "32KB L1 hit latency (s)",
            measured: l1.hit_latency,
            expected: 0.7e-9, // CACTI-class ≈0.5–1 ns at 65 nm
            band: 2.5,
        },
        Anchor {
            what: "32KB L1 read energy (J)",
            measured: l1.read_hit_energy,
            // A parallel 4-way probe reads all ways of a 64 B block
            // (2 Kb) plus tags: CACTI-class ≈0.1–0.5 nJ at 65 nm.
            expected: 250e-12,
            band: 3.0,
        },
        Anchor {
            what: "32KB L1 area (m²)",
            measured: l1.area,
            expected: 0.45e-6, // ≈0.3–0.7 mm²
            band: 2.5,
        },
    ]);
}

#[test]
fn l2_cache_at_45nm_matches_cacti_class_numbers() {
    let tech = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
    let l2 = CacheSpec::new("l2", 2 * 1024 * 1024, 64, 8)
        .with_access_mode(AccessMode::Sequential)
        .solve(&tech, OptTarget::EnergyDelay)
        .unwrap();
    check(&[
        Anchor {
            what: "2MB L2 hit latency (s)",
            measured: l2.hit_latency,
            expected: 2.5e-9, // a few ns
            band: 3.0,
        },
        Anchor {
            what: "2MB L2 area (m²)",
            measured: l2.area,
            expected: 8e-6, // several mm²
            band: 2.5,
        },
        Anchor {
            what: "2MB L2 leakage (W)",
            measured: l2.leakage.total(),
            expected: 1.2, // around a watt at 45 nm HP hot
            band: 3.0,
        },
    ]);
}

#[test]
fn register_file_at_90nm_matches_published_class_numbers() {
    // 21264-class 80×64b register file with many ports: sub-ns access,
    // a few pJ per read.
    let tech = TechParams::new(TechNode::N90, DeviceType::Hp, 360.0);
    let rf = ArraySpec::table(80, 64)
        .with_ports(Ports::reg_file(8, 4))
        .solve(&tech, OptTarget::Delay)
        .unwrap();
    check(&[
        Anchor {
            what: "80-entry RF access time (s)",
            measured: rf.access_time,
            expected: 0.45e-9,
            band: 2.5,
        },
        Anchor {
            what: "80-entry RF read energy (J)",
            measured: rf.read_energy,
            expected: 6e-12,
            band: 4.0,
        },
    ]);
}

#[test]
fn tlb_cam_search_is_sub_ns_and_picojoule() {
    let tech = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
    let tlb = ArraySpec::cam(64, 64, 52)
        .solve(&tech, OptTarget::Delay)
        .unwrap();
    check(&[
        Anchor {
            what: "64-entry TLB search time (s)",
            measured: tlb.access_time,
            expected: 0.5e-9,
            band: 3.0,
        },
        Anchor {
            what: "64-entry TLB search energy (J)",
            measured: tlb.search_energy,
            expected: 6e-12,
            band: 4.0,
        },
    ]);
}

#[test]
fn fo4_delays_match_published_process_numbers() {
    // Published FO4: ≈ 17–36 ps at 90 nm HP, scaling ≈ linearly with L.
    for (node, expected_ps) in [
        (TechNode::N90, 25.0),
        (TechNode::N65, 18.0),
        (TechNode::N45, 13.0),
        (TechNode::N32, 9.0),
    ] {
        let tech = TechParams::new(node, DeviceType::Hp, 360.0);
        let ratio = tech.fo4() * 1e12 / expected_ps;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "{node}: fo4 {:.1} ps vs expected {expected_ps} ps",
            tech.fo4() * 1e12
        );
    }
}
