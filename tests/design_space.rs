#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Integration test: the manycore case-study machinery — technology
//! scaling, clustering, in-order vs out-of-order tradeoffs, and the
//! area-aware metric flip that is the paper's headline result.

use mcpat::metrics::{best_index, Metric, MetricSet};
use mcpat::tech::DeviceType;
use mcpat::{dse, AxisGrid, DseEvaluator, DseOptions, Processor, ProcessorConfig, WorkloadModel};
use mcpat_mcore::config::CoreConfig;
use mcpat_sim::{SystemModel, WorkloadProfile};
use mcpat_tech::TechNode;

fn manycore(kind: &str, node: TechNode, cores: u32, cluster: u32) -> ProcessorConfig {
    let core = match kind {
        "inorder" => CoreConfig::niagara2_like(),
        _ => CoreConfig::alpha21364_like(),
    };
    ProcessorConfig::manycore(
        &format!("{kind}-{cores}c-x{cluster}"),
        node,
        core,
        cores,
        cluster,
        u64::from(cluster) * 1024 * 1024,
    )
}

#[test]
fn scaling_shrinks_area_and_raises_leakage_fraction() {
    let mut last_area = f64::INFINITY;
    let mut last_leak_frac = 0.0;
    for node in [TechNode::N90, TechNode::N45, TechNode::N22] {
        let cfg = manycore("inorder", node, 8, 2);
        let chip = Processor::build(&cfg).unwrap();
        let p = chip.peak_power();
        let area = chip.die_area_mm2();
        let leak_frac = p.leakage().total() / p.total();
        assert!(area < last_area, "{node}: area {area}");
        assert!(leak_frac > last_leak_frac, "{node}: leak {leak_frac}");
        last_area = area;
        last_leak_frac = leak_frac;
    }
}

#[test]
fn ooo_wins_latency_inorder_wins_area_efficiency() {
    let node = TechNode::N22;
    let wl = WorkloadProfile::splash_like();
    let io_cfg = manycore("inorder", node, 16, 4);
    let ooo_cfg = manycore("ooo", node, 16, 4);
    let io_chip = Processor::build(&io_cfg).unwrap();
    let ooo_chip = Processor::build(&ooo_cfg).unwrap();
    let io_run = SystemModel::new(&io_cfg).simulate(&wl, 100_000_000);
    let ooo_run = SystemModel::new(&ooo_cfg).simulate(&wl, 100_000_000);

    // OoO finishes the fixed instruction budget sooner...
    assert!(ooo_run.seconds < io_run.seconds);
    // ...but the in-order chip delivers more throughput per unit area.
    let io_tpa = io_run.aggregate_ips / io_chip.die_area_mm2();
    let ooo_tpa = ooo_run.aggregate_ips / ooo_chip.die_area_mm2();
    assert!(
        io_tpa > 0.6 * ooo_tpa,
        "in-order throughput/area should be competitive: {io_tpa:.3e} vs {ooo_tpa:.3e}"
    );
}

#[test]
fn clustering_sweep_produces_distinct_designs() {
    let node = TechNode::N22;
    let mut areas = Vec::new();
    for cluster in [1u32, 2, 4, 8] {
        let cfg = manycore("inorder", node, 16, cluster);
        let chip = Processor::build(&cfg).unwrap();
        areas.push(chip.die_area_mm2());
    }
    // Fewer, larger L2s amortize controller overhead: area decreases
    // then flattens; all values positive and distinct from each other.
    for w in areas.windows(2) {
        assert!((w[0] - w[1]).abs() > 1e-6, "degenerate sweep: {areas:?}");
    }
}

#[test]
fn metric_choice_changes_the_selected_design() {
    // Construct a sweep where area varies strongly; assert EDAP/EDA2P
    // pick at least as small a design as ED2P does.
    let node = TechNode::N22;
    let wl = WorkloadProfile::splash_like();
    let mut points = Vec::new();
    let mut areas = Vec::new();
    for (kind, cores) in [("inorder", 16), ("inorder", 32), ("ooo", 16), ("ooo", 8)] {
        let cfg = manycore(kind, node, cores, 4);
        let chip = Processor::build(&cfg).unwrap();
        let run = SystemModel::new(&cfg).simulate(&wl, 100_000_000);
        let p = chip.runtime_power(&run.stats);
        points.push(MetricSet::from_power(
            p.total(),
            run.seconds,
            chip.die_area(),
        ));
        areas.push(chip.die_area());
    }
    let ed2p_pick = best_index(&points, Metric::Ed2p).unwrap();
    let eda2p_pick = best_index(&points, Metric::Eda2p).unwrap();
    assert!(
        areas[eda2p_pick] <= areas[ed2p_pick],
        "area-aware metric must not pick a bigger chip: {:?} vs {:?}",
        areas[eda2p_pick],
        areas[ed2p_pick]
    );
}

/// The streaming engine's headline contract: every chip on the final
/// frontier — and every per-metric winner — carries exactly the numbers
/// a from-scratch `Processor::build` of its configuration produces,
/// even though the sweep served it through pruning, dedupe, and
/// cache/clock delta rebuilds. Checked exhaustively over every
/// survivor, bit for bit.
#[test]
fn streaming_dse_survivors_are_bit_identical_to_from_scratch_builds() {
    let grid = AxisGrid::manycore(
        vec![TechNode::N45, TechNode::N22],
        vec![DeviceType::Hp, DeviceType::Lop],
        vec![4, 8],
        vec![1 << 20, 2 << 20],
        (0..8).map(|i| 1.0e9 + 0.25e9 * f64::from(i)).collect(),
    );
    let opts = DseOptions {
        chunk: 48, // several chunks, rows crossing chunk boundaries
        ..DseOptions::default()
    };
    let result = dse(&grid, &opts, &mut WorkloadModel::default()).expect("streaming sweep");
    assert!(!result.frontier.is_empty(), "sweep produced no frontier");
    assert_eq!(result.perf.candidates, grid.total());

    let survivors = result
        .frontier
        .points()
        .iter()
        .chain(result.frontier.winners().iter().flatten());
    let mut checked = 0;
    for point in survivors {
        let cfg = grid
            .config_at(point.cursor)
            .expect("survivor cursor in range");
        assert_eq!(point.name, cfg.name, "survivor name mismatch");
        let chip = Processor::build(&cfg).expect("from-scratch build");
        let metrics = WorkloadModel::default().evaluate(&chip);
        assert_eq!(point.area.to_bits(), chip.die_area().to_bits());
        assert_eq!(
            point.peak_power.to_bits(),
            chip.peak_power().total().to_bits()
        );
        assert_eq!(point.metrics.delay.to_bits(), metrics.delay.to_bits());
        assert_eq!(point.metrics.energy.to_bits(), metrics.energy.to_bits());
        assert_eq!(point.metrics.area.to_bits(), metrics.area.to_bits());
        checked += 1;
    }
    assert!(checked > 0);
    assert!(result.frontier.winners_are_pareto());
    // The streaming path must actually have streamed: delta probes are
    // the overwhelming majority of builds.
    assert!(
        result.perf.probes > result.perf.full_builds * 4,
        "sweep did not lean on delta rebuilds: {:?}",
        result.perf
    );
}

#[test]
fn more_cores_give_more_throughput_until_bandwidth_saturates() {
    let node = TechNode::N22;
    let wl = WorkloadProfile::memory_bound();
    let mut last_ips = 0.0;
    let mut speedups = Vec::new();
    for cores in [4u32, 16, 64] {
        let cfg = manycore("inorder", node, cores, 4);
        let run = SystemModel::new(&cfg).simulate(&wl, 10_000_000);
        if last_ips > 0.0 {
            speedups.push(run.aggregate_ips / last_ips);
        }
        last_ips = run.aggregate_ips;
    }
    // The second 4× core scaling must help less than the first.
    assert!(
        speedups[1] < speedups[0],
        "no bandwidth saturation visible: {speedups:?}"
    );
}
