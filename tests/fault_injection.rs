#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Fault-injection harness for the panic-free modeling core.
//!
//! Applies randomized single-field corruptions — zeros, negatives,
//! NaN/Inf, saturated maxima, and swapped field pairs — to the four
//! validation presets, then asserts the invariant the library promises:
//! `Processor::build` never panics; every corrupted configuration either
//! yields a typed diagnostic (`McpatError`) or builds into a report
//! whose power and area figures are all finite and non-negative.

use std::panic::AssertUnwindSafe;

use mcpat::{Processor, ProcessorConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A corruption payload. Mutators cast it to their field's type; Rust's
/// saturating `as` conversions turn NaN into 0 and ±Inf into the type's
/// extremes, so one f64 menu covers integer fields too.
const PAYLOADS: [f64; 9] = [
    0.0,
    -1.0,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    1e308,
    -1e308,
    1e-300,
    4_294_967_295.0, // u32::MAX
];

type Mutator = (&'static str, fn(&mut ProcessorConfig, f64));

/// Single-field corruptions: each writes the payload into one field.
fn field_mutators() -> Vec<Mutator> {
    vec![
        ("clock_hz", |c, v| c.clock_hz = v),
        ("temperature_k", |c, v| c.temperature_k = v),
        ("io_bandwidth", |c, v| c.io_bandwidth = v),
        ("vdd_scale", |c, v| c.vdd_scale = v),
        ("num_cores", |c, v| c.num_cores = v as u32),
        ("num_l2s", |c, v| c.num_l2s = v as u32),
        ("num_shared_fpus", |c, v| c.num_shared_fpus = v as u32),
        ("core.clock_hz", |c, v| c.core.clock_hz = v),
        ("core.threads", |c, v| c.core.threads = v as u32),
        ("core.fetch_width", |c, v| c.core.fetch_width = v as u32),
        ("core.decode_width", |c, v| c.core.decode_width = v as u32),
        ("core.issue_width", |c, v| c.core.issue_width = v as u32),
        ("core.commit_width", |c, v| c.core.commit_width = v as u32),
        ("core.fp_issue_width", |c, v| {
            c.core.fp_issue_width = v as u32
        }),
        ("core.pipeline_depth", |c, v| {
            c.core.pipeline_depth = v as u32
        }),
        ("core.arch_int_regs", |c, v| c.core.arch_int_regs = v as u32),
        ("core.arch_fp_regs", |c, v| c.core.arch_fp_regs = v as u32),
        ("core.phys_int_regs", |c, v| c.core.phys_int_regs = v as u32),
        ("core.phys_fp_regs", |c, v| c.core.phys_fp_regs = v as u32),
        ("core.instruction_buffer_size", |c, v| {
            c.core.instruction_buffer_size = v as u32
        }),
        ("core.instruction_window_size", |c, v| {
            c.core.instruction_window_size = v as u32
        }),
        ("core.fp_instruction_window_size", |c, v| {
            c.core.fp_instruction_window_size = v as u32
        }),
        ("core.rob_size", |c, v| c.core.rob_size = v as u32),
        ("core.load_queue_size", |c, v| {
            c.core.load_queue_size = v as u32
        }),
        ("core.store_queue_size", |c, v| {
            c.core.store_queue_size = v as u32
        }),
        ("core.num_alus", |c, v| c.core.num_alus = v as u32),
        ("core.num_fpus", |c, v| c.core.num_fpus = v as u32),
        ("core.num_muls", |c, v| c.core.num_muls = v as u32),
        ("core.word_bits", |c, v| c.core.word_bits = v as u32),
        ("core.vaddr_bits", |c, v| c.core.vaddr_bits = v as u32),
        ("core.paddr_bits", |c, v| c.core.paddr_bits = v as u32),
        ("core.instruction_bits", |c, v| {
            c.core.instruction_bits = v as u32
        }),
        ("core.opcode_bits", |c, v| c.core.opcode_bits = v as u32),
        ("core.btb_entries", |c, v| c.core.btb_entries = v as u32),
        ("core.itlb_entries", |c, v| c.core.itlb_entries = v as u32),
        ("core.dtlb_entries", |c, v| c.core.dtlb_entries = v as u32),
        ("core.predictor.global_entries", |c, v| {
            c.core.predictor.global_entries = v as u32
        }),
        ("core.predictor.local_l1_entries", |c, v| {
            c.core.predictor.local_l1_entries = v as u32
        }),
        ("core.predictor.local_l2_entries", |c, v| {
            c.core.predictor.local_l2_entries = v as u32
        }),
        ("core.predictor.chooser_entries", |c, v| {
            c.core.predictor.chooser_entries = v as u32
        }),
        ("core.predictor.ras_entries", |c, v| {
            c.core.predictor.ras_entries = v as u32
        }),
        ("core.icache.capacity", |c, v| {
            c.core.icache.capacity = v as u64
        }),
        ("core.icache.block_bytes", |c, v| {
            c.core.icache.block_bytes = v as u32
        }),
        ("core.icache.associativity", |c, v| {
            c.core.icache.associativity = v as u32
        }),
        ("core.icache.banks", |c, v| c.core.icache.banks = v as u32),
        ("core.dcache.capacity", |c, v| {
            c.core.dcache.capacity = v as u64
        }),
        ("core.dcache.block_bytes", |c, v| {
            c.core.dcache.block_bytes = v as u32
        }),
        ("core.dcache.associativity", |c, v| {
            c.core.dcache.associativity = v as u32
        }),
        ("core.dcache.banks", |c, v| c.core.dcache.banks = v as u32),
        ("fabric.flit_bits", |c, v| c.fabric.flit_bits = v as u32),
        ("fabric.vcs_per_port", |c, v| {
            c.fabric.vcs_per_port = v as u32
        }),
        ("fabric.buffers_per_vc", |c, v| {
            c.fabric.buffers_per_vc = v as u32
        }),
        ("l2.cache.capacity", |c, v| {
            if let Some(l2) = &mut c.l2 {
                l2.cache.capacity = v as u64;
            }
        }),
        ("l2.cache.block_bytes", |c, v| {
            if let Some(l2) = &mut c.l2 {
                l2.cache.block_bytes = v as u32;
            }
        }),
        ("l2.cache.associativity", |c, v| {
            if let Some(l2) = &mut c.l2 {
                l2.cache.associativity = v as u32;
            }
        }),
        ("l2.mshr_entries", |c, v| {
            if let Some(l2) = &mut c.l2 {
                l2.mshr_entries = v as u32;
            }
        }),
        ("l2.wb_buffer_entries", |c, v| {
            if let Some(l2) = &mut c.l2 {
                l2.wb_buffer_entries = v as u32;
            }
        }),
        ("l2.fill_buffer_entries", |c, v| {
            if let Some(l2) = &mut c.l2 {
                l2.fill_buffer_entries = v as u32;
            }
        }),
        ("l2.directory_sharers", |c, v| {
            if let Some(l2) = &mut c.l2 {
                l2.directory_sharers = v as u32;
            }
        }),
        ("l3.cache.capacity", |c, v| {
            if let Some(l3) = &mut c.l3 {
                l3.cache.capacity = v as u64;
            }
        }),
        ("l3.cache.associativity", |c, v| {
            if let Some(l3) = &mut c.l3 {
                l3.cache.associativity = v as u32;
            }
        }),
        ("mc.channels", |c, v| {
            if let Some(mc) = &mut c.mc {
                mc.channels = v as u32;
            }
        }),
        ("mc.bus_bits", |c, v| {
            if let Some(mc) = &mut c.mc {
                mc.bus_bits = v as u32;
            }
        }),
        ("mc.peak_bw_per_channel", |c, v| {
            if let Some(mc) = &mut c.mc {
                mc.peak_bw_per_channel = v;
            }
        }),
        ("mc.read_queue_depth", |c, v| {
            if let Some(mc) = &mut c.mc {
                mc.read_queue_depth = v as u32;
            }
        }),
        ("mc.write_queue_depth", |c, v| {
            if let Some(mc) = &mut c.mc {
                mc.write_queue_depth = v as u32;
            }
        }),
    ]
}

/// Swapped-field corruptions: plausible copy-paste mistakes where two
/// related knobs trade places. The payload is ignored.
fn swap_mutators() -> Vec<Mutator> {
    vec![
        ("swap(clock_hz, temperature_k)", |c, _| {
            std::mem::swap(&mut c.clock_hz, &mut c.temperature_k)
        }),
        ("swap(num_cores, num_l2s)", |c, _| {
            std::mem::swap(&mut c.num_cores, &mut c.num_l2s)
        }),
        ("swap(icache.capacity, icache.block_bytes)", |c, _| {
            let cap = c.core.icache.capacity;
            c.core.icache.capacity = u64::from(c.core.icache.block_bytes);
            c.core.icache.block_bytes = cap.min(u64::from(u32::MAX)) as u32;
        }),
        ("swap(dcache.block_bytes, dcache.associativity)", |c, _| {
            std::mem::swap(
                &mut c.core.dcache.block_bytes,
                &mut c.core.dcache.associativity,
            )
        }),
        ("swap(arch_int_regs, phys_int_regs)", |c, _| {
            std::mem::swap(&mut c.core.arch_int_regs, &mut c.core.phys_int_regs)
        }),
        ("swap(load_queue_size, store_queue_size)", |c, _| {
            std::mem::swap(&mut c.core.load_queue_size, &mut c.core.store_queue_size)
        }),
        ("swap(fetch_width, pipeline_depth)", |c, _| {
            std::mem::swap(&mut c.core.fetch_width, &mut c.core.pipeline_depth)
        }),
        ("swap(fabric.flit_bits, fabric.vcs_per_port)", |c, _| {
            std::mem::swap(&mut c.fabric.flit_bits, &mut c.fabric.vcs_per_port)
        }),
    ]
}

fn presets() -> Vec<ProcessorConfig> {
    vec![
        ProcessorConfig::niagara(),
        ProcessorConfig::niagara2(),
        ProcessorConfig::alpha21364(),
        ProcessorConfig::tulsa(),
    ]
}

/// Builds the corrupted config and checks the panic-free invariant.
/// Returns an error description if the invariant is violated.
fn check(cfg: &ProcessorConfig) -> Result<(), String> {
    match Processor::build(cfg) {
        Err(e) => {
            // A typed diagnostic is a valid outcome; it must render.
            let text = e.to_string();
            if text.is_empty() {
                return Err("error rendered to empty string".into());
            }
            Ok(())
        }
        Ok(chip) => {
            let power = chip.peak_power();
            let total = power.total();
            if !total.is_finite() || total < 0.0 {
                return Err(format!("peak power not finite/non-negative: {total}"));
            }
            for item in &power.items {
                let d = item.dynamic;
                let l = item.leakage.total();
                if !d.is_finite() || d < 0.0 || !l.is_finite() || l < 0.0 {
                    return Err(format!(
                        "component {} power not finite/non-negative: dyn={d} leak={l}",
                        item.name
                    ));
                }
            }
            let area = chip.die_area_mm2();
            if !area.is_finite() || area < 0.0 {
                return Err(format!("die area not finite/non-negative: {area}"));
            }
            if chip.report().is_empty() {
                return Err("report rendered to empty string".into());
            }
            Ok(())
        }
    }
}

/// Runs one corrupted config; returns a violation description, if any.
fn run_case(label: &str, cfg: ProcessorConfig) -> Option<String> {
    if std::env::var_os("FI_TRACE").is_some() {
        eprintln!("case: {label}");
    }
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| check(&cfg)));
    match outcome {
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            Some(format!("PANIC [{label}]: {msg}"))
        }
        Ok(Err(msg)) => Some(format!("invariant violated [{label}]: {msg}")),
        Ok(Ok(())) => None,
    }
}

/// Fails the test with every collected violation, not just the first.
fn report_violations(violations: Vec<String>, cases: usize) {
    assert!(
        violations.is_empty(),
        "{} of {cases} corrupted configs violated the panic-free invariant:\n{}",
        violations.len(),
        violations.join("\n")
    );
}

/// The headline harness: ≥1,000 randomized single-field corruptions
/// across the four validation presets.
#[test]
fn randomized_single_field_corruptions_never_panic() {
    let fields = field_mutators();
    let swaps = swap_mutators();
    let bases = presets();
    let mut rng = StdRng::seed_from_u64(0x4d63_5041_5430_3039); // "McPAT09"

    let mut violations = Vec::new();
    let mut cases = 0usize;
    while cases < 1_200 {
        let base = &bases[cases % bases.len()];
        // One in six cases swaps a field pair; the rest overwrite one
        // field with a hostile payload.
        let (name, mutate, payload) = if rng.gen_range(0u32..6) == 0 {
            let (name, f) = swaps[rng.gen_range(0..swaps.len())];
            (name, f, 0.0)
        } else {
            let (name, f) = fields[rng.gen_range(0..fields.len())];
            (name, f, PAYLOADS[rng.gen_range(0..PAYLOADS.len())])
        };
        let mut cfg = base.clone();
        mutate(&mut cfg, payload);
        let label = format!("{} + {name} = {payload:e}", cfg.name);
        violations.extend(run_case(&label, cfg));
        cases += 1;
    }
    assert!(cases >= 1_000, "harness must cover at least 1,000 configs");
    report_violations(violations, cases);
}

/// Exhaustive sweep: every field mutator crossed with every payload on
/// one preset, so no single corruption can hide behind randomness.
#[test]
fn exhaustive_field_payload_matrix_on_niagara() {
    let base = ProcessorConfig::niagara();
    let mut violations = Vec::new();
    let mut cases = 0usize;
    for (name, mutate) in field_mutators() {
        for payload in PAYLOADS {
            let mut cfg = base.clone();
            mutate(&mut cfg, payload);
            violations.extend(run_case(&format!("niagara + {name} = {payload:e}"), cfg));
            cases += 1;
        }
    }
    report_violations(violations, cases);
}

/// The same invariant under thread-parallel builds: corruptions whose
/// failure surfaces *inside a worker thread* must still come back as a
/// typed diagnostic (`ArrayError::Worker` at worst), never as a panic
/// escaping the build or a poisoned lock wedging later builds.
#[test]
fn parallel_corruptions_surface_as_typed_errors() {
    struct ResetOverride;
    impl Drop for ResetOverride {
        fn drop(&mut self) {
            mcpat::par::set_thread_override(0);
        }
    }
    let _reset = ResetOverride;
    mcpat::par::set_thread_override(4);

    let fields = field_mutators();
    let mut rng = StdRng::seed_from_u64(0x4d63_5041_5450_4152); // "McPATPAR"
    let mut violations = Vec::new();
    let mut cases = 0usize;
    let bases = presets();
    while cases < 300 {
        let base = &bases[cases % bases.len()];
        let (name, mutate) = fields[rng.gen_range(0..fields.len())];
        let payload = PAYLOADS[rng.gen_range(0..PAYLOADS.len())];
        let mut cfg = base.clone();
        mutate(&mut cfg, payload);
        let label = format!("par4 {} + {name} = {payload:e}", cfg.name);
        violations.extend(run_case(&label, cfg));
        cases += 1;
    }
    report_violations(violations, cases);

    // No corrupted build may leave poisoned global state behind: a
    // clean preset must still build on the same (parallel) settings.
    for base in presets() {
        assert!(
            Processor::build(&base).is_ok(),
            "{}: clean build failed after parallel fault injection",
            base.name
        );
    }
}

/// Budget-fuzz matrix: ~500 random deadlines, from 0 µs through
/// generous, against all four presets. Every outcome must be either a
/// complete report bit-identical to the unbudgeted build or a typed
/// `GuardError` — never a partial report, never a panic.
#[test]
fn random_deadlines_yield_complete_reports_or_typed_guard_errors() {
    use mcpat::guard::Budget;
    use std::time::Duration;

    /// Observable result bits: peak-power breakdown, die area, timing.
    fn budget_fingerprint(chip: &Processor) -> Vec<u64> {
        let mut v = Vec::new();
        let power = chip.peak_power();
        for item in &power.items {
            v.push(item.dynamic.to_bits());
            v.push(item.leakage.subthreshold.to_bits());
            v.push(item.leakage.gate.to_bits());
        }
        v.push(chip.die_area().to_bits());
        v.push(chip.timing().fo4.to_bits());
        v.push(chip.timing().core_max_clock_hz.to_bits());
        v
    }

    let bases = presets();
    let clean: Vec<Vec<u64>> = bases
        .iter()
        .map(|cfg| budget_fingerprint(&Processor::build(cfg).expect("clean build")))
        .collect();

    let mut rng = StdRng::seed_from_u64(0x4d63_5041_5442_4744); // "McPATBGD"
    let mut violations = Vec::new();
    let mut cases = 0usize;
    let mut trips = 0usize;
    while cases < 520 {
        let which = cases % bases.len();
        let cfg = &bases[which];
        // A quarter of the deadlines are generous (must never trip on
        // these presets); the rest sweep 0 µs up through the range
        // where a build genuinely races its deadline. The first case
        // per preset pins a zero deadline, which must trip at the very
        // first checkpoint — on a fast host with a warm solve cache the
        // random range alone can fail to land inside a build.
        let deadline = if cases < bases.len() {
            Duration::ZERO
        } else if rng.gen_range(0u32..4) == 0 {
            Duration::from_secs(3600)
        } else {
            Duration::from_micros(rng.gen_range(0..20_000))
        };
        let label = format!("{} + deadline {deadline:?}", cfg.name);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let budget = Budget::with_deadline(deadline);
            let _scope = budget.enter();
            Processor::build(cfg)
        }));
        match outcome {
            Err(_) => violations.push(format!("PANIC [{label}]")),
            Ok(Ok(chip)) => {
                if budget_fingerprint(&chip) != clean[which] {
                    violations.push(format!("partial/divergent result [{label}]"));
                }
                if chip.report().is_empty() {
                    violations.push(format!("empty report [{label}]"));
                }
            }
            Ok(Err(e)) => {
                trips += 1;
                if e.guard_error().is_none() {
                    violations.push(format!("untyped budget failure [{label}]: {e}"));
                }
            }
        }
        cases += 1;
    }
    assert!(cases >= 500, "matrix must cover at least 500 cases");
    assert!(trips > 0, "no deadline ever tripped — fuzz range too lax");
    report_violations(violations, cases);

    // No deadline trip may poison shared state for later builds.
    for (which, base) in bases.iter().enumerate() {
        let chip = Processor::build(base).expect("clean build after deadline fuzz");
        assert_eq!(
            budget_fingerprint(&chip),
            clean[which],
            "{}: post-fuzz build diverged",
            base.name
        );
    }
}

/// Direct geometry corruption on the cache tag-width arithmetic. The
/// computation `paddr_bits - (offset_bits + index_bits) + state_bits`
/// once mixed saturating and unchecked adds; under the saturated-
/// maximum payloads this harness feeds everywhere else, the unchecked
/// adds overflow in debug builds. The whole expression must be
/// saturating: corrupted geometry degrades the estimate, never panics.
#[test]
fn corrupted_cache_geometry_keeps_tag_bits_total() {
    use mcpat_array::CacheSpec;
    let hostile_bits = [0u32, 1, 63, 64, u32::MAX - 1, u32::MAX];
    let hostile_blocks = [0u32, 1, 64, u32::MAX];
    let mut violations = Vec::new();
    let mut cases = 0usize;
    for &paddr in &hostile_bits {
        for &state in &hostile_bits {
            for &block in &hostile_blocks {
                for &capacity in &[0u64, 1, 1 << 20, u64::MAX] {
                    let mut spec = CacheSpec::new("corrupt", capacity, 64, 8);
                    spec.paddr_bits = paddr;
                    spec.state_bits = state;
                    spec.block_bytes = block;
                    let label = format!(
                        "tag_bits paddr={paddr} state={state} block={block} cap={capacity}"
                    );
                    match std::panic::catch_unwind(AssertUnwindSafe(|| spec.tag_bits())) {
                        Err(_) => violations.push(format!("PANIC [{label}]")),
                        Ok(_total_width) => {}
                    }
                    cases += 1;
                }
            }
        }
    }
    // A sane geometry must still compute the textbook width: 44-bit
    // physical address, 64 B blocks (6 offset bits), 2048 sets (11
    // index bits), plus the coherence state bits.
    let mut sane = CacheSpec::new("sane", 1 << 20, 64, 8);
    sane.paddr_bits = 44;
    sane.state_bits = 2;
    assert_eq!(sane.tag_bits(), 44 - 6 - 11 + 2);
    report_violations(violations, cases);
}

/// Every swap corruption on every preset.
#[test]
fn swapped_field_corruptions_never_panic() {
    let mut violations = Vec::new();
    let mut cases = 0usize;
    for base in presets() {
        for (name, mutate) in swap_mutators() {
            let mut cfg = base.clone();
            mutate(&mut cfg, 0.0);
            violations.extend(run_case(&format!("{} + {name}", cfg.name), cfg));
            cases += 1;
        }
    }
    report_violations(violations, cases);
}
