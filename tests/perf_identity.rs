#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Bit-identity guarantees of the parallel/memoized evaluation paths.
//!
//! The perf work (threaded array sweeps, chip-build fan-out, and the
//! content-addressed solve cache) must be *invisible* in the results:
//! every mode — serial, any thread count, warm cache — has to produce
//! bit-for-bit the same chip. These tests enforce that on the paper's
//! validation presets.
//!
//! All tests here flip process-global knobs (thread override, cache
//! mode), so they serialize on one mutex and restore the defaults
//! before releasing it.

use mcpat::array::memo;
use mcpat::{
    explore, explore_batch, max_clock_under_power_budget, Budgets, Exploration, MetricSet,
    Processor, ProcessorConfig,
};
use mcpat_mcore::config::CoreConfig;
use mcpat_tech::TechNode;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes every test that touches the global thread/cache knobs.
fn knob_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the default knobs when a test exits (even by panic).
struct KnobReset;
impl Drop for KnobReset {
    fn drop(&mut self) {
        mcpat::par::set_thread_override(0);
        memo::set_auto();
        mcpat::obs::set_tracing(false);
    }
}

fn presets() -> Vec<ProcessorConfig> {
    vec![
        ProcessorConfig::niagara(),
        ProcessorConfig::niagara2(),
        ProcessorConfig::alpha21364(),
        ProcessorConfig::tulsa(),
    ]
}

/// Every externally observable f64 of a built chip, as exact bit
/// patterns: peak-power breakdown, per-unit core detail, area
/// breakdown, timing roll-up, and die area. Names ride along so a
/// mismatch points at the component, not just an index.
fn fingerprint(chip: &Processor) -> Vec<(String, u64)> {
    let mut v = Vec::new();
    let power = chip.peak_power();
    for item in &power.items {
        v.push((format!("{}.dynamic", item.name), item.dynamic.to_bits()));
        v.push((
            format!("{}.sub", item.name),
            item.leakage.subthreshold.to_bits(),
        ));
        v.push((format!("{}.gate", item.name), item.leakage.gate.to_bits()));
    }
    for item in &power.core_detail.items {
        v.push((
            format!("core.{}.dynamic", item.name),
            item.dynamic.to_bits(),
        ));
        v.push((
            format!("core.{}.leak", item.name),
            item.leakage.total().to_bits(),
        ));
    }
    for item in chip.area_breakdown() {
        v.push((format!("area.{}", item.name), item.area.to_bits()));
    }
    let t = chip.timing();
    v.push(("timing.fo4".into(), t.fo4.to_bits()));
    v.push((
        "timing.core_max_clock".into(),
        t.core_max_clock_hz.to_bits(),
    ));
    v.push(("timing.l2_cycle".into(), t.l2_cycle_time.to_bits()));
    v.push(("die_area".into(), chip.die_area().to_bits()));
    v
}

fn assert_identical(a: &[(String, u64)], b: &[(String, u64)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: fingerprint lengths differ");
    for ((na, xa), (nb, xb)) in a.iter().zip(b) {
        assert_eq!(na, nb, "{what}: component order differs");
        assert_eq!(
            xa,
            xb,
            "{what}: `{na}` differs: {:e} vs {:e}",
            f64::from_bits(*xa),
            f64::from_bits(*xb)
        );
    }
}

fn sweep_candidates() -> Vec<ProcessorConfig> {
    [2u32, 4, 8]
        .into_iter()
        .map(|n| {
            ProcessorConfig::manycore(
                &format!("m{n}"),
                TechNode::N32,
                CoreConfig::generic_inorder(),
                n,
                n.min(2),
                1024 * 1024,
            )
        })
        .collect()
}

fn sweep_eval(chip: &Processor) -> MetricSet {
    let n = f64::from(chip.config.num_cores.max(1));
    MetricSet::from_power(10.0 * n, 1.0 / n, chip.die_area())
}

/// Every f64 of an exploration result as exact bit patterns, keyed by
/// candidate name.
fn exploration_fingerprint(ex: &Exploration) -> Vec<(String, u64)> {
    let mut v = Vec::new();
    for c in &ex.feasible {
        v.push((format!("{}.area", c.name), c.area.to_bits()));
        v.push((format!("{}.peak", c.name), c.peak_power.to_bits()));
        v.push((format!("{}.energy", c.name), c.metrics.energy.to_bits()));
        v.push((format!("{}.delay", c.name), c.metrics.delay.to_bits()));
        v.push((format!("{}.marea", c.name), c.metrics.area.to_bits()));
    }
    v
}

#[test]
fn serial_and_parallel_builds_are_bit_identical() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    for cfg in presets() {
        mcpat::par::set_thread_override(1);
        let serial = fingerprint(&Processor::build(&cfg).unwrap());
        mcpat::par::set_thread_override(4);
        let parallel = fingerprint(&Processor::build(&cfg).unwrap());
        assert_identical(&serial, &parallel, &cfg.name);
    }
}

#[test]
fn every_thread_count_is_bit_identical() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    let cfg = ProcessorConfig::niagara2();
    mcpat::par::set_thread_override(1);
    let reference = fingerprint(&Processor::build(&cfg).unwrap());
    for threads in [2, 3, 8, 16] {
        mcpat::par::set_thread_override(threads);
        let fp = fingerprint(&Processor::build(&cfg).unwrap());
        assert_identical(&reference, &fp, &format!("{} threads", threads));
    }
}

#[test]
fn warm_cache_build_equals_cold_field_for_field() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(1);
    memo::set_enabled(true);
    memo::clear();
    for cfg in presets() {
        memo::clear();
        let cold_chip = Processor::build(&cfg).unwrap();
        assert!(
            cold_chip.perf.solve_cache_misses > 0,
            "{}: cold build should miss the empty cache",
            cfg.name
        );
        let warm_chip = Processor::build(&cfg).unwrap();
        assert!(
            warm_chip.perf.solve_cache_hits > 0,
            "{}: warm build should hit the populated cache",
            cfg.name
        );
        assert_eq!(
            warm_chip.perf.solve_cache_misses, 0,
            "{}: warm build should not miss",
            cfg.name
        );
        assert_identical(
            &fingerprint(&cold_chip),
            &fingerprint(&warm_chip),
            &cfg.name,
        );
    }
}

#[test]
fn cached_solve_equals_uncached_across_presets() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(1);
    for cfg in presets() {
        memo::set_enabled(false);
        let uncached = fingerprint(&Processor::build(&cfg).unwrap());
        memo::set_enabled(true);
        memo::clear();
        let _warmup = Processor::build(&cfg).unwrap();
        let cached = fingerprint(&Processor::build(&cfg).unwrap());
        assert_identical(&uncached, &cached, &cfg.name);
    }
}

#[test]
fn explore_is_bit_identical_across_pool_thread_counts() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    let cands = sweep_candidates();
    mcpat::par::set_thread_override(1);
    let reference = explore(&cands, Budgets::default(), sweep_eval).unwrap();
    let ref_fp = exploration_fingerprint(&reference);
    for threads in [2, 3, 8, 16] {
        mcpat::par::set_thread_override(threads);
        let ex = explore(&cands, Budgets::default(), sweep_eval).unwrap();
        let what = format!("explore at {threads} pool threads");
        assert_eq!(reference.rejected, ex.rejected, "{what}: rejected set");
        assert_eq!(reference.pareto, ex.pareto, "{what}: pareto front");
        assert_identical(&ref_fp, &exploration_fingerprint(&ex), &what);
    }
}

#[test]
fn explore_batch_is_bit_identical_to_serial_explore() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    let mut cands = sweep_candidates();
    // One duplicate configuration under a different name exercises the
    // dedup path against the serial reference.
    let mut dup = cands[0].clone();
    dup.name = String::from("m2-copy");
    cands.push(dup);

    mcpat::par::set_thread_override(1);
    let reference = explore(&cands, Budgets::default(), sweep_eval).unwrap();
    let ref_fp = exploration_fingerprint(&reference);
    for threads in [1, 4] {
        mcpat::par::set_thread_override(threads);
        let (batched, perf) = explore_batch(&cands, Budgets::default(), sweep_eval).unwrap();
        let what = format!("explore_batch at {threads} pool threads");
        assert_eq!(perf.candidates, cands.len(), "{what}");
        assert_eq!(perf.deduped, 1, "{what}: the copy must dedupe");
        assert_eq!(reference.rejected, batched.rejected, "{what}: rejected");
        assert_eq!(reference.pareto, batched.pareto, "{what}: pareto");
        assert_identical(&ref_fp, &exploration_fingerprint(&batched), &what);
    }
}

#[test]
fn incremental_bisection_equals_full_rebuild_bisection() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    mcpat::par::set_thread_override(1);
    let cfg = ProcessorConfig::manycore(
        "clk",
        TechNode::N32,
        CoreConfig::generic_inorder(),
        4,
        2,
        1024 * 1024,
    );
    // The pre-incremental algorithm: rebuild the whole chip per probe.
    let power_at = |clock: f64| -> f64 {
        let mut c = cfg.clone();
        c.clock_hz = clock;
        c.core.clock_hz = clock;
        Processor::build(&c).unwrap().peak_power().total()
    };
    let (budget, lo_hz, hi_hz) = (25.0, 0.5e9, 6.0e9);
    assert!(power_at(lo_hz) <= budget && power_at(hi_hz) > budget);
    let (mut lo, mut hi) = (lo_hz, hi_hz);
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if power_at(mid) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let incremental = max_clock_under_power_budget(&cfg, budget, lo_hz, hi_hz)
        .unwrap()
        .expect("a feasible clock exists");
    assert_eq!(
        incremental.to_bits(),
        lo.to_bits(),
        "incremental bisection diverged: {incremental:e} vs {lo:e}"
    );
}

#[test]
fn traced_builds_are_bit_identical_across_presets() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    mcpat::par::set_thread_override(1);
    for cfg in presets() {
        mcpat::obs::set_tracing(false);
        let off = Processor::build(&cfg).unwrap();
        assert!(
            off.trace.is_none(),
            "{}: a tracing-off build must not carry a trace",
            cfg.name
        );
        mcpat::obs::set_tracing(true);
        let on = Processor::build(&cfg).unwrap();
        mcpat::obs::set_tracing(false);
        let trace = on
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("{}: tracing-on build records a trace", cfg.name));
        assert!(
            trace.spans.iter().any(|s| s.path == "build"),
            "{}: trace is missing the root build span: {:?}",
            cfg.name,
            trace.spans
        );
        assert_identical(
            &fingerprint(&off),
            &fingerprint(&on),
            &format!("{}: traced vs untraced", cfg.name),
        );
    }
}

#[test]
fn mcpat_threads_env_one_equals_default() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    mcpat::par::set_thread_override(0); // let the env variable rule
    let cfg = ProcessorConfig::alpha21364();

    std::env::set_var("MCPAT_THREADS", "1");
    let forced_serial = fingerprint(&Processor::build(&cfg).unwrap());
    std::env::remove_var("MCPAT_THREADS");
    let default = fingerprint(&Processor::build(&cfg).unwrap());

    assert_identical(&forced_serial, &default, "MCPAT_THREADS=1 vs default");
}

#[test]
fn build_perf_reports_thread_count() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(3);
    let chip = Processor::build(&ProcessorConfig::niagara()).unwrap();
    assert_eq!(chip.perf.threads, 3);
    assert!(chip.report().contains("3 thread(s)"));
}
