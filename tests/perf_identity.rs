#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Bit-identity guarantees of the parallel/memoized evaluation paths.
//!
//! The perf work (threaded array sweeps, chip-build fan-out, and the
//! content-addressed solve cache) must be *invisible* in the results:
//! every mode — serial, any thread count, warm cache — has to produce
//! bit-for-bit the same chip. These tests enforce that on the paper's
//! validation presets.
//!
//! All tests here flip process-global knobs (thread override, cache
//! mode), so they serialize on one mutex and restore the defaults
//! before releasing it.

use mcpat::array::memo;
use mcpat::{
    explore, explore_batch, max_clock_under_power_budget, Budgets, Exploration, MetricSet,
    Processor, ProcessorConfig,
};
use mcpat_mcore::config::CoreConfig;
use mcpat_tech::TechNode;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Counts this thread's heap allocations so the arena-reuse test can
/// assert the cold exploration batch's allocation budget through the
/// same `register_alloc_probe` seam benchline uses.
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System` unchanged; the counter
// update has no effect on allocation behavior (`try_with` shrugs off
// TLS teardown instead of re-entering the allocator or panicking).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn current_thread_allocs() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// Serializes every test that touches the global thread/cache knobs.
fn knob_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the default knobs when a test exits (even by panic).
struct KnobReset;
impl Drop for KnobReset {
    fn drop(&mut self) {
        mcpat::par::set_thread_override(0);
        memo::set_auto();
        mcpat::obs::set_tracing(false);
        mcpat::array::solve::set_reference_mode(false);
    }
}

fn presets() -> Vec<ProcessorConfig> {
    vec![
        ProcessorConfig::niagara(),
        ProcessorConfig::niagara2(),
        ProcessorConfig::alpha21364(),
        ProcessorConfig::tulsa(),
    ]
}

/// Every externally observable f64 of a built chip, as exact bit
/// patterns: peak-power breakdown, per-unit core detail, area
/// breakdown, timing roll-up, and die area. Names ride along so a
/// mismatch points at the component, not just an index.
fn fingerprint(chip: &Processor) -> Vec<(String, u64)> {
    let mut v = Vec::new();
    let power = chip.peak_power();
    for item in &power.items {
        v.push((format!("{}.dynamic", item.name), item.dynamic.to_bits()));
        v.push((
            format!("{}.sub", item.name),
            item.leakage.subthreshold.to_bits(),
        ));
        v.push((format!("{}.gate", item.name), item.leakage.gate.to_bits()));
    }
    for item in &power.core_detail.items {
        v.push((
            format!("core.{}.dynamic", item.name),
            item.dynamic.to_bits(),
        ));
        v.push((
            format!("core.{}.leak", item.name),
            item.leakage.total().to_bits(),
        ));
    }
    for item in chip.area_breakdown() {
        v.push((format!("area.{}", item.name), item.area.to_bits()));
    }
    let t = chip.timing();
    v.push(("timing.fo4".into(), t.fo4.to_bits()));
    v.push((
        "timing.core_max_clock".into(),
        t.core_max_clock_hz.to_bits(),
    ));
    v.push(("timing.l2_cycle".into(), t.l2_cycle_time.to_bits()));
    v.push(("die_area".into(), chip.die_area().to_bits()));
    v
}

fn assert_identical(a: &[(String, u64)], b: &[(String, u64)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: fingerprint lengths differ");
    for ((na, xa), (nb, xb)) in a.iter().zip(b) {
        assert_eq!(na, nb, "{what}: component order differs");
        assert_eq!(
            xa,
            xb,
            "{what}: `{na}` differs: {:e} vs {:e}",
            f64::from_bits(*xa),
            f64::from_bits(*xb)
        );
    }
}

fn sweep_candidates() -> Vec<ProcessorConfig> {
    [2u32, 4, 8]
        .into_iter()
        .map(|n| {
            ProcessorConfig::manycore(
                &format!("m{n}"),
                TechNode::N32,
                CoreConfig::generic_inorder(),
                n,
                n.min(2),
                1024 * 1024,
            )
        })
        .collect()
}

fn sweep_eval(chip: &Processor) -> MetricSet {
    let n = f64::from(chip.config.num_cores.max(1));
    MetricSet::from_power(10.0 * n, 1.0 / n, chip.die_area())
}

/// Every f64 of an exploration result as exact bit patterns, keyed by
/// candidate name.
fn exploration_fingerprint(ex: &Exploration) -> Vec<(String, u64)> {
    let mut v = Vec::new();
    for c in &ex.feasible {
        v.push((format!("{}.area", c.name), c.area.to_bits()));
        v.push((format!("{}.peak", c.name), c.peak_power.to_bits()));
        v.push((format!("{}.energy", c.name), c.metrics.energy.to_bits()));
        v.push((format!("{}.delay", c.name), c.metrics.delay.to_bits()));
        v.push((format!("{}.marea", c.name), c.metrics.area.to_bits()));
    }
    v
}

#[test]
fn serial_and_parallel_builds_are_bit_identical() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    for cfg in presets() {
        mcpat::par::set_thread_override(1);
        let serial = fingerprint(&Processor::build(&cfg).unwrap());
        mcpat::par::set_thread_override(4);
        let parallel = fingerprint(&Processor::build(&cfg).unwrap());
        assert_identical(&serial, &parallel, &cfg.name);
    }
}

#[test]
fn every_thread_count_is_bit_identical() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    let cfg = ProcessorConfig::niagara2();
    mcpat::par::set_thread_override(1);
    let reference = fingerprint(&Processor::build(&cfg).unwrap());
    for threads in [2, 3, 8, 16] {
        mcpat::par::set_thread_override(threads);
        let fp = fingerprint(&Processor::build(&cfg).unwrap());
        assert_identical(&reference, &fp, &format!("{} threads", threads));
    }
}

#[test]
fn warm_cache_build_equals_cold_field_for_field() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(1);
    memo::set_enabled(true);
    memo::clear();
    for cfg in presets() {
        memo::clear();
        let cold_chip = Processor::build(&cfg).unwrap();
        assert!(
            cold_chip.perf.solve_cache_misses > 0,
            "{}: cold build should miss the empty cache",
            cfg.name
        );
        let warm_chip = Processor::build(&cfg).unwrap();
        assert!(
            warm_chip.perf.solve_cache_hits > 0,
            "{}: warm build should hit the populated cache",
            cfg.name
        );
        assert_eq!(
            warm_chip.perf.solve_cache_misses, 0,
            "{}: warm build should not miss",
            cfg.name
        );
        assert_identical(
            &fingerprint(&cold_chip),
            &fingerprint(&warm_chip),
            &cfg.name,
        );
    }
}

#[test]
fn cached_solve_equals_uncached_across_presets() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(1);
    for cfg in presets() {
        memo::set_enabled(false);
        let uncached = fingerprint(&Processor::build(&cfg).unwrap());
        memo::set_enabled(true);
        memo::clear();
        let _warmup = Processor::build(&cfg).unwrap();
        let cached = fingerprint(&Processor::build(&cfg).unwrap());
        assert_identical(&uncached, &cached, &cfg.name);
    }
}

#[test]
fn explore_is_bit_identical_across_pool_thread_counts() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    let cands = sweep_candidates();
    mcpat::par::set_thread_override(1);
    let reference = explore(&cands, Budgets::default(), sweep_eval).unwrap();
    let ref_fp = exploration_fingerprint(&reference);
    for threads in [2, 3, 8, 16] {
        mcpat::par::set_thread_override(threads);
        let ex = explore(&cands, Budgets::default(), sweep_eval).unwrap();
        let what = format!("explore at {threads} pool threads");
        assert_eq!(reference.rejected, ex.rejected, "{what}: rejected set");
        assert_eq!(reference.pareto, ex.pareto, "{what}: pareto front");
        assert_identical(&ref_fp, &exploration_fingerprint(&ex), &what);
    }
}

#[test]
fn explore_batch_is_bit_identical_to_serial_explore() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    let mut cands = sweep_candidates();
    // One duplicate configuration under a different name exercises the
    // dedup path against the serial reference.
    let mut dup = cands[0].clone();
    dup.name = String::from("m2-copy");
    cands.push(dup);

    mcpat::par::set_thread_override(1);
    let reference = explore(&cands, Budgets::default(), sweep_eval).unwrap();
    let ref_fp = exploration_fingerprint(&reference);
    for threads in [1, 4] {
        mcpat::par::set_thread_override(threads);
        let (batched, perf) = explore_batch(&cands, Budgets::default(), sweep_eval).unwrap();
        let what = format!("explore_batch at {threads} pool threads");
        assert_eq!(perf.candidates, cands.len(), "{what}");
        assert_eq!(perf.deduped, 1, "{what}: the copy must dedupe");
        assert_eq!(reference.rejected, batched.rejected, "{what}: rejected");
        assert_eq!(reference.pareto, batched.pareto, "{what}: pareto");
        assert_identical(&ref_fp, &exploration_fingerprint(&batched), &what);
    }
}

#[test]
fn incremental_bisection_equals_full_rebuild_bisection() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    mcpat::par::set_thread_override(1);
    let cfg = ProcessorConfig::manycore(
        "clk",
        TechNode::N32,
        CoreConfig::generic_inorder(),
        4,
        2,
        1024 * 1024,
    );
    // The pre-incremental algorithm: rebuild the whole chip per probe.
    let power_at = |clock: f64| -> f64 {
        let mut c = cfg.clone();
        c.clock_hz = clock;
        c.core.clock_hz = clock;
        Processor::build(&c).unwrap().peak_power().total()
    };
    let (budget, lo_hz, hi_hz) = (25.0, 0.5e9, 6.0e9);
    assert!(power_at(lo_hz) <= budget && power_at(hi_hz) > budget);
    let (mut lo, mut hi) = (lo_hz, hi_hz);
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if power_at(mid) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let incremental = max_clock_under_power_budget(&cfg, budget, lo_hz, hi_hz)
        .unwrap()
        .expect("a feasible clock exists");
    assert_eq!(
        incremental.to_bits(),
        lo.to_bits(),
        "incremental bisection diverged: {incremental:e} vs {lo:e}"
    );
}

#[test]
fn traced_builds_are_bit_identical_across_presets() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    mcpat::par::set_thread_override(1);
    for cfg in presets() {
        mcpat::obs::set_tracing(false);
        let off = Processor::build(&cfg).unwrap();
        assert!(
            off.trace.is_none(),
            "{}: a tracing-off build must not carry a trace",
            cfg.name
        );
        mcpat::obs::set_tracing(true);
        let on = Processor::build(&cfg).unwrap();
        mcpat::obs::set_tracing(false);
        let trace = on
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("{}: tracing-on build records a trace", cfg.name));
        assert!(
            trace.spans.iter().any(|s| s.path == "build"),
            "{}: trace is missing the root build span: {:?}",
            cfg.name,
            trace.spans
        );
        assert_identical(
            &fingerprint(&off),
            &fingerprint(&on),
            &format!("{}: traced vs untraced", cfg.name),
        );
    }
}

#[test]
fn mcpat_threads_env_one_equals_default() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    mcpat::par::set_thread_override(0); // let the env variable rule
    let cfg = ProcessorConfig::alpha21364();

    std::env::set_var("MCPAT_THREADS", "1");
    let forced_serial = fingerprint(&Processor::build(&cfg).unwrap());
    std::env::remove_var("MCPAT_THREADS");
    let default = fingerprint(&Processor::build(&cfg).unwrap());

    assert_identical(&forced_serial, &default, "MCPAT_THREADS=1 vs default");
}

#[test]
fn soa_sweep_matches_reference_solver_across_presets() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    mcpat::par::set_thread_override(1);
    for cfg in presets() {
        mcpat::array::solve::set_reference_mode(true);
        let reference = fingerprint(&Processor::build(&cfg).unwrap());
        mcpat::array::solve::set_reference_mode(false);
        let soa = fingerprint(&Processor::build(&cfg).unwrap());
        assert_identical(
            &reference,
            &soa,
            &format!("{}: SoA sweep vs reference solver", cfg.name),
        );
    }
}

#[test]
fn soa_sweep_matches_reference_on_both_relaxation_rungs() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    mcpat::par::set_thread_override(1);
    let tech = mcpat_tech::TechParams::new(TechNode::N32, mcpat_tech::DeviceType::Hp, 360.0);
    // Strict rung: feasible exactly as asked. Widened rung: a cycle
    // bound no geometry can meet forces the solver down its
    // relaxation ladder.
    let strict = mcpat::array::ArraySpec::ram(32 * 1024, 64);
    let widened = mcpat::array::ArraySpec::ram(1024 * 1024, 64).with_max_cycle_time(1e-12);
    for (rung, spec) in [("strict", &strict), ("widened", &widened)] {
        for target in [
            mcpat::array::OptTarget::EnergyDelay,
            mcpat::array::OptTarget::EnergyDelaySquared,
        ] {
            mcpat::array::solve::set_reference_mode(true);
            let r = spec.solve(&tech, target).unwrap();
            mcpat::array::solve::set_reference_mode(false);
            let s = spec.solve(&tech, target).unwrap();
            let what = format!("{rung} rung, {target:?}");
            assert_eq!(
                (r.nspd, r.ndwl, r.ndbl, r.rows_per_mat, r.cols_per_mat),
                (s.nspd, s.ndwl, s.ndbl, s.rows_per_mat, s.cols_per_mat),
                "{what}: organization"
            );
            assert_eq!(r.relaxation, s.relaxation, "{what}: relaxation");
            for (field, a, b) in [
                ("access_time", r.access_time, s.access_time),
                ("cycle_time", r.cycle_time, s.cycle_time),
                ("read_energy", r.read_energy, s.read_energy),
                ("write_energy", r.write_energy, s.write_energy),
                ("search_energy", r.search_energy, s.search_energy),
                ("area", r.area, s.area),
                ("height", r.height, s.height),
                ("width", r.width, s.width),
                ("leak.sub", r.leakage.subthreshold, s.leakage.subthreshold),
                ("leak.gate", r.leakage.gate, s.leakage.gate),
            ] {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{what}: `{field}` differs: {a:e} vs {b:e}"
                );
            }
        }
    }
    assert!(
        widened
            .solve(&tech, mcpat::array::OptTarget::EnergyDelay)
            .unwrap()
            .relaxation
            .is_some(),
        "the widened spec must actually exercise the relaxation ladder"
    );
}

/// The committed pre-arena baseline ran `explore_batch_16_candidates`
/// at 3870 serial allocations. The SoA sweep plus per-build arenas
/// must hold the cold batch at a ≥30% reduction: ≤ 2709.
const EXPLORE_BATCH_ALLOC_CEILING: u64 = 2709;

#[test]
fn arena_reuse_cuts_explore_batch_allocs_at_least_30_percent() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    mcpat::par::set_thread_override(1);
    mcpat::register_alloc_probe(current_thread_allocs);
    // The benchline `explore_batch_16_candidates` workload, verbatim.
    let cands: Vec<ProcessorConfig> = (0..16u32)
        .map(|i| {
            ProcessorConfig::manycore(
                &format!("c{i}"),
                TechNode::N32,
                CoreConfig::generic_inorder(),
                2 + (i % 4) * 2,
                1 + (i % 4),
                u64::from(1 + (i % 4)) * 1024 * 1024,
            )
        })
        .collect();
    let eval = |c: &Processor| MetricSet::from_power(10.0, 1.0, c.die_area());
    // One warm-up pass grows the thread-local arenas and lazy
    // statics; the measured pass is the steady state every sweep
    // scenario lives in.
    let _ = explore_batch(&cands, Budgets::default(), eval).unwrap();
    let (_, perf) = explore_batch(&cands, Budgets::default(), eval).unwrap();
    assert!(perf.allocs > 0, "the alloc probe must be live");
    assert!(
        perf.allocs <= EXPLORE_BATCH_ALLOC_CEILING,
        "explore_batch_16_candidates ran {} allocations; the arena pass must stay \
         at or below {} (>=30% under the committed baseline's 3870)",
        perf.allocs,
        EXPLORE_BATCH_ALLOC_CEILING
    );
}

#[test]
fn build_perf_reports_thread_count() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(3);
    let chip = Processor::build(&ProcessorConfig::niagara()).unwrap();
    assert_eq!(chip.perf.threads, 3);
    assert!(chip.report().contains("3 thread(s)"));
}
