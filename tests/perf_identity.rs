#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Bit-identity guarantees of the parallel/memoized evaluation paths.
//!
//! The perf work (threaded array sweeps, chip-build fan-out, and the
//! content-addressed solve cache) must be *invisible* in the results:
//! every mode — serial, any thread count, warm cache — has to produce
//! bit-for-bit the same chip. These tests enforce that on the paper's
//! validation presets.
//!
//! All tests here flip process-global knobs (thread override, cache
//! mode), so they serialize on one mutex and restore the defaults
//! before releasing it.

use mcpat::array::memo;
use mcpat::{Processor, ProcessorConfig};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes every test that touches the global thread/cache knobs.
fn knob_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the default knobs when a test exits (even by panic).
struct KnobReset;
impl Drop for KnobReset {
    fn drop(&mut self) {
        mcpat::par::set_thread_override(0);
        memo::set_auto();
    }
}

fn presets() -> Vec<ProcessorConfig> {
    vec![
        ProcessorConfig::niagara(),
        ProcessorConfig::niagara2(),
        ProcessorConfig::alpha21364(),
        ProcessorConfig::tulsa(),
    ]
}

/// Every externally observable f64 of a built chip, as exact bit
/// patterns: peak-power breakdown, per-unit core detail, area
/// breakdown, timing roll-up, and die area. Names ride along so a
/// mismatch points at the component, not just an index.
fn fingerprint(chip: &Processor) -> Vec<(String, u64)> {
    let mut v = Vec::new();
    let power = chip.peak_power();
    for item in &power.items {
        v.push((format!("{}.dynamic", item.name), item.dynamic.to_bits()));
        v.push((
            format!("{}.sub", item.name),
            item.leakage.subthreshold.to_bits(),
        ));
        v.push((format!("{}.gate", item.name), item.leakage.gate.to_bits()));
    }
    for item in &power.core_detail.items {
        v.push((
            format!("core.{}.dynamic", item.name),
            item.dynamic.to_bits(),
        ));
        v.push((
            format!("core.{}.leak", item.name),
            item.leakage.total().to_bits(),
        ));
    }
    for item in chip.area_breakdown() {
        v.push((format!("area.{}", item.name), item.area.to_bits()));
    }
    let t = chip.timing();
    v.push(("timing.fo4".into(), t.fo4.to_bits()));
    v.push((
        "timing.core_max_clock".into(),
        t.core_max_clock_hz.to_bits(),
    ));
    v.push(("timing.l2_cycle".into(), t.l2_cycle_time.to_bits()));
    v.push(("die_area".into(), chip.die_area().to_bits()));
    v
}

fn assert_identical(a: &[(String, u64)], b: &[(String, u64)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: fingerprint lengths differ");
    for ((na, xa), (nb, xb)) in a.iter().zip(b) {
        assert_eq!(na, nb, "{what}: component order differs");
        assert_eq!(
            xa,
            xb,
            "{what}: `{na}` differs: {:e} vs {:e}",
            f64::from_bits(*xa),
            f64::from_bits(*xb)
        );
    }
}

#[test]
fn serial_and_parallel_builds_are_bit_identical() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    for cfg in presets() {
        mcpat::par::set_thread_override(1);
        let serial = fingerprint(&Processor::build(&cfg).unwrap());
        mcpat::par::set_thread_override(4);
        let parallel = fingerprint(&Processor::build(&cfg).unwrap());
        assert_identical(&serial, &parallel, &cfg.name);
    }
}

#[test]
fn every_thread_count_is_bit_identical() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    let cfg = ProcessorConfig::niagara2();
    mcpat::par::set_thread_override(1);
    let reference = fingerprint(&Processor::build(&cfg).unwrap());
    for threads in [2, 3, 8, 16] {
        mcpat::par::set_thread_override(threads);
        let fp = fingerprint(&Processor::build(&cfg).unwrap());
        assert_identical(&reference, &fp, &format!("{} threads", threads));
    }
}

#[test]
fn warm_cache_build_equals_cold_field_for_field() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(1);
    memo::set_enabled(true);
    memo::clear();
    for cfg in presets() {
        memo::clear();
        let cold_chip = Processor::build(&cfg).unwrap();
        assert!(
            cold_chip.perf.solve_cache_misses > 0,
            "{}: cold build should miss the empty cache",
            cfg.name
        );
        let warm_chip = Processor::build(&cfg).unwrap();
        assert!(
            warm_chip.perf.solve_cache_hits > 0,
            "{}: warm build should hit the populated cache",
            cfg.name
        );
        assert_eq!(
            warm_chip.perf.solve_cache_misses, 0,
            "{}: warm build should not miss",
            cfg.name
        );
        assert_identical(
            &fingerprint(&cold_chip),
            &fingerprint(&warm_chip),
            &cfg.name,
        );
    }
}

#[test]
fn cached_solve_equals_uncached_across_presets() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(1);
    for cfg in presets() {
        memo::set_enabled(false);
        let uncached = fingerprint(&Processor::build(&cfg).unwrap());
        memo::set_enabled(true);
        memo::clear();
        let _warmup = Processor::build(&cfg).unwrap();
        let cached = fingerprint(&Processor::build(&cfg).unwrap());
        assert_identical(&uncached, &cached, &cfg.name);
    }
}

#[test]
fn mcpat_threads_env_one_equals_default() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    memo::set_enabled(false);
    mcpat::par::set_thread_override(0); // let the env variable rule
    let cfg = ProcessorConfig::alpha21364();

    std::env::set_var("MCPAT_THREADS", "1");
    let forced_serial = fingerprint(&Processor::build(&cfg).unwrap());
    std::env::remove_var("MCPAT_THREADS");
    let default = fingerprint(&Processor::build(&cfg).unwrap());

    assert_identical(&forced_serial, &default, "MCPAT_THREADS=1 vs default");
}

#[test]
fn build_perf_reports_thread_count() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(3);
    let chip = Processor::build(&ProcessorConfig::niagara()).unwrap();
    assert_eq!(chip.perf.threads, 3);
    assert!(chip.report().contains("3 thread(s)"));
}
