#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Scoped-attribution guarantees of the `mcpat-obs` collector layer.
//!
//! The perf blocks on `BuildPerf`/`ExplorePerf` are billed through the
//! thread-scoped collector chain, not global before/after deltas, so a
//! run must report only its own traffic no matter what else the
//! process is doing. Two concurrent `explore_batch` calls each see
//! their solo counts; work stolen by a pool worker bills the scope
//! that submitted it, not whatever the stealing worker was doing.
//!
//! Tests here flip process-global knobs (thread override, cache mode),
//! so they serialize on one mutex and restore defaults on exit.

use mcpat::array::memo;
use mcpat::{
    explore_batch, register_alloc_probe, Budgets, ExplorePerf, MetricSet, ProcessorConfig,
};
use mcpat_mcore::config::CoreConfig;
use mcpat_tech::TechNode;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Counts each thread's allocations so the registered probe satisfies
/// the `mcpat-obs` contract ("the calling thread's allocation count").
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates to `System` unchanged; the const-initialized TLS
// counter neither allocates nor panics (`try_with` covers teardown).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn current_thread_allocs() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// Serializes every test that touches the global knobs.
fn knob_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the default knobs when a test exits (even by panic).
struct KnobReset;
impl Drop for KnobReset {
    fn drop(&mut self) {
        mcpat::par::set_thread_override(0);
        memo::set_auto();
        mcpat::obs::set_tracing(false);
    }
}

/// `n` distinct manycore candidates at `node`. Different tech nodes
/// give two sets fully disjoint solve-cache keys, so concurrent runs
/// cannot serve each other's arrays.
fn candidates(node: TechNode, n: u32) -> Vec<ProcessorConfig> {
    (0..n)
        .map(|i| {
            ProcessorConfig::manycore(
                &format!("{node}-c{i}"),
                node,
                CoreConfig::generic_inorder(),
                2 + (i % 4) * 2,
                1 + (i % 4),
                u64::from(1 + (i % 4)) * 1024 * 1024,
            )
        })
        .collect()
}

fn run_batch(cands: &[ProcessorConfig]) -> ExplorePerf {
    let (_ex, perf) = explore_batch(cands, Budgets::default(), |c| {
        MetricSet::from_power(10.0, 1.0, c.die_area())
    })
    .unwrap();
    perf
}

#[test]
fn concurrent_explore_batches_report_only_their_own_traffic() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    register_alloc_probe(current_thread_allocs);
    // Serial inside each call: the concurrency under test is the two
    // *outer* threads, and serial builds keep the miss counts exact.
    mcpat::par::set_thread_override(1);
    memo::set_enabled(true);

    let small = candidates(TechNode::N32, 2);
    let large = candidates(TechNode::N45, 6);

    memo::clear();
    let solo_small = run_batch(&small);
    memo::clear();
    let solo_large = run_batch(&large);
    assert!(solo_small.solve_cache_misses > 0);
    assert!(solo_large.solve_cache_misses > solo_small.solve_cache_misses);
    assert!(solo_small.allocs > 0, "the alloc probe must be live");

    memo::clear();
    let (perf_small, perf_large) = std::thread::scope(|s| {
        let a = s.spawn(|| run_batch(&small));
        let b = s.spawn(|| run_batch(&large));
        (a.join().unwrap(), b.join().unwrap())
    });

    for (what, solo, concurrent) in [
        ("small batch", &solo_small, &perf_small),
        ("large batch", &solo_large, &perf_large),
    ] {
        assert_eq!(
            concurrent.unique_builds, solo.unique_builds,
            "{what}: unique_builds must not absorb the other run's builds"
        );
        assert_eq!(
            concurrent.solve_cache_misses, solo.solve_cache_misses,
            "{what}: cache misses must not cross-bill between threads"
        );
        // Allocation counts jitter slightly (hash seeding, vector
        // growth), but cross-billing would multiply them: the small
        // batch would absorb the large batch's >3x traffic.
        assert!(
            concurrent.allocs >= solo.allocs / 2 && concurrent.allocs <= solo.allocs * 2,
            "{what}: allocs {} drifted past 2x from solo {}",
            concurrent.allocs,
            solo.allocs
        );
    }
}

#[test]
fn stolen_pool_tasks_bill_the_submitting_scope() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(4);

    let submitter = mcpat::obs::Collector::new();
    let mut outer_steals = 0u64;
    // Steals come from worker-local deques, which only nested fan-outs
    // fill: each outer task runs a join4 whose lead closure sleeps, so
    // idle workers steal the three queued siblings out of the busy
    // worker's deque. Whether a steal lands is still a scheduling
    // race; retry until one does. Every attempt asserts the negative
    // half: observer scopes entered *inside* the tasks (which submit
    // nothing themselves) never see a steal event.
    for _attempt in 0..50 {
        let steals_in_tasks = AtomicU64::new(0);
        {
            let _scope = submitter.enter();
            let items: Vec<u64> = (0..2).collect();
            let out = mcpat::par::par_map(&items, 2, |_, &x| {
                let executor = mcpat::obs::Collector::new();
                let observed = {
                    let _inner = executor.enter();
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    executor.snapshot().pool_steals
                };
                steals_in_tasks.fetch_add(observed, Ordering::Relaxed);
                // Nested fan-out outside the observer scope: its jobs
                // bill the chain active here — the outer submitter.
                let sleep_then = |us: u64, v: u64| {
                    move || -> u64 {
                        std::thread::sleep(std::time::Duration::from_micros(us));
                        v
                    }
                };
                let (a, b, c, d) = mcpat::par::join4(
                    sleep_then(1000, 1),
                    sleep_then(100, 1),
                    sleep_then(100, 1),
                    sleep_then(100, 1),
                )
                .unwrap();
                x + a + b + c + d
            })
            .unwrap();
            assert_eq!(out.len(), 2);
        }
        assert_eq!(
            steals_in_tasks.load(Ordering::Relaxed),
            0,
            "a steal must bill the scope that submitted the task, \
             never a scope opened on the stealing worker"
        );
        outer_steals = submitter.snapshot().pool_steals;
        if outer_steals > 0 {
            break;
        }
    }
    assert!(
        outer_steals > 0,
        "no steal observed in 50 attempts of a nested fan-out on a 4-thread pool"
    );
}
