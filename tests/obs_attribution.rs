#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Scoped-attribution guarantees of the `mcpat-obs` collector layer.
//!
//! The perf blocks on `BuildPerf`/`ExplorePerf` are billed through the
//! thread-scoped collector chain, not global before/after deltas, so a
//! run must report only its own traffic no matter what else the
//! process is doing. Two concurrent `explore_batch` calls each see
//! their solo counts; work stolen by a pool worker bills the scope
//! that submitted it, not whatever the stealing worker was doing.
//!
//! Tests here flip process-global knobs (thread override, cache mode),
//! so they serialize on one mutex and restore defaults on exit.

use mcpat::array::memo;
use mcpat::{
    explore_batch, register_alloc_probe, Budgets, ExplorePerf, MetricSet, ProcessorConfig,
};
use mcpat_mcore::config::CoreConfig;
use mcpat_tech::TechNode;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Counts each thread's allocations so the registered probe satisfies
/// the `mcpat-obs` contract ("the calling thread's allocation count").
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates to `System` unchanged; the const-initialized TLS
// counter neither allocates nor panics (`try_with` covers teardown).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn current_thread_allocs() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// Serializes every test that touches the global knobs.
fn knob_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the default knobs when a test exits (even by panic).
struct KnobReset;
impl Drop for KnobReset {
    fn drop(&mut self) {
        mcpat::par::set_thread_override(0);
        memo::set_auto();
        mcpat::obs::set_tracing(false);
    }
}

/// `n` distinct manycore candidates at `node`. Different tech nodes
/// give two sets fully disjoint solve-cache keys, so concurrent runs
/// cannot serve each other's arrays.
fn candidates(node: TechNode, n: u32) -> Vec<ProcessorConfig> {
    (0..n)
        .map(|i| {
            ProcessorConfig::manycore(
                &format!("{node}-c{i}"),
                node,
                CoreConfig::generic_inorder(),
                2 + (i % 4) * 2,
                1 + (i % 4),
                u64::from(1 + (i % 4)) * 1024 * 1024,
            )
        })
        .collect()
}

fn run_batch(cands: &[ProcessorConfig]) -> ExplorePerf {
    let (_ex, perf) = explore_batch(cands, Budgets::default(), |c| {
        MetricSet::from_power(10.0, 1.0, c.die_area())
    })
    .unwrap();
    perf
}

#[test]
fn concurrent_explore_batches_report_only_their_own_traffic() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    register_alloc_probe(current_thread_allocs);
    // Serial inside each call: the concurrency under test is the two
    // *outer* threads, and serial builds keep the miss counts exact.
    mcpat::par::set_thread_override(1);
    memo::set_enabled(true);

    let small = candidates(TechNode::N32, 2);
    let large = candidates(TechNode::N45, 6);

    memo::clear();
    let solo_small = run_batch(&small);
    memo::clear();
    let solo_large = run_batch(&large);
    assert!(solo_small.solve_cache_misses > 0);
    assert!(solo_large.solve_cache_misses > solo_small.solve_cache_misses);
    assert!(solo_small.allocs > 0, "the alloc probe must be live");

    memo::clear();
    let (perf_small, perf_large) = std::thread::scope(|s| {
        let a = s.spawn(|| run_batch(&small));
        let b = s.spawn(|| run_batch(&large));
        (a.join().unwrap(), b.join().unwrap())
    });

    for (what, solo, concurrent) in [
        ("small batch", &solo_small, &perf_small),
        ("large batch", &solo_large, &perf_large),
    ] {
        assert_eq!(
            concurrent.unique_builds, solo.unique_builds,
            "{what}: unique_builds must not absorb the other run's builds"
        );
        assert_eq!(
            concurrent.solve_cache_misses, solo.solve_cache_misses,
            "{what}: cache misses must not cross-bill between threads"
        );
        // Allocation counts jitter slightly (hash seeding, vector
        // growth), but cross-billing would multiply them: the small
        // batch would absorb the large batch's >3x traffic.
        assert!(
            concurrent.allocs >= solo.allocs / 2 && concurrent.allocs <= solo.allocs * 2,
            "{what}: allocs {} drifted past 2x from solo {}",
            concurrent.allocs,
            solo.allocs
        );
    }
}

// ---------------------------------------------------------------------------
// Over-the-wire attribution: the serve daemon wraps every request in
// its own scoped collector, so the same isolation guarantees must hold
// for concurrent TCP requests — including the coalesced case, where
// exactly one request pays for the shared build.
// ---------------------------------------------------------------------------

mod wire {
    use serde_json::Value;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    pub struct Client {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        pub fn connect(addr: std::net::SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let reader = BufReader::new(stream.try_clone().expect("clone stream"));
            Client { stream, reader }
        }

        pub fn send(&mut self, line: &str) {
            self.stream.write_all(line.as_bytes()).expect("send");
            self.stream.write_all(b"\n").expect("send newline");
        }

        pub fn recv(&mut self) -> Value {
            let mut line = String::new();
            assert!(self.reader.read_line(&mut line).expect("recv") > 0);
            serde_json::from_str(&line).expect("valid response JSON")
        }

        pub fn roundtrip(&mut self, line: &str) -> Value {
            self.send(line);
            self.recv()
        }
    }

    pub fn perf_u64(v: &Value, field: &str) -> u64 {
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"), "{v:?}");
        v.get("perf")
            .and_then(|p| p.get(field))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("perf.{field} missing: {v:?}"))
    }

    pub fn perf_bool(v: &Value, field: &str) -> bool {
        v.get("perf")
            .and_then(|p| p.get(field))
            .and_then(Value::as_bool)
            .unwrap_or_else(|| panic!("perf.{field} missing: {v:?}"))
    }

    pub fn evaluate_line(cfg: &mcpat::ProcessorConfig, id: u64) -> String {
        format!(
            "{{\"type\":\"evaluate\",\"id\":{id},\"config\":{}}}",
            serde_json::to_string(cfg).unwrap()
        )
    }
}

fn start_server() -> (mcpat_serve::ServerHandle, std::thread::JoinHandle<()>) {
    let server = mcpat_serve::Server::bind(
        "127.0.0.1:0",
        &mcpat_serve::ServeOptions { max_inflight: 8 },
    )
    .expect("bind loopback");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

#[test]
fn concurrent_serve_requests_bill_only_their_own_traffic() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    register_alloc_probe(current_thread_allocs);
    mcpat::par::set_thread_override(1);
    memo::set_enabled(true);

    let (handle, join) = start_server();
    let addr = handle.addr();

    // Different tech nodes -> fully disjoint solve-cache keys, so the
    // concurrent requests cannot serve each other's arrays.
    let cfg_small = &candidates(TechNode::N32, 1)[0];
    let cfg_large = {
        let mut c = candidates(TechNode::N45, 1)[0].clone();
        c.num_cores *= 4;
        c
    };

    // Solo baselines, each against an empty cache.
    memo::clear();
    let solo_small = wire::Client::connect(addr).roundtrip(&wire::evaluate_line(cfg_small, 1));
    memo::clear();
    let solo_large = wire::Client::connect(addr).roundtrip(&wire::evaluate_line(&cfg_large, 2));
    let solo_small_misses = wire::perf_u64(&solo_small, "solve_cache_misses");
    let solo_large_misses = wire::perf_u64(&solo_large, "solve_cache_misses");
    let solo_small_allocs = wire::perf_u64(&solo_small, "allocs");
    assert!(solo_small_misses > 0);
    assert!(solo_large_misses > 0);
    assert!(solo_small_allocs > 0, "the alloc probe must be live");

    // Concurrent requests over separate connections, empty cache again.
    memo::clear();
    let (resp_small, resp_large) = std::thread::scope(|s| {
        let a =
            s.spawn(|| wire::Client::connect(addr).roundtrip(&wire::evaluate_line(cfg_small, 3)));
        let b =
            s.spawn(|| wire::Client::connect(addr).roundtrip(&wire::evaluate_line(&cfg_large, 4)));
        (a.join().unwrap(), b.join().unwrap())
    });

    for (what, solo, concurrent) in [
        ("small config", &solo_small, &resp_small),
        ("large config", &solo_large, &resp_large),
    ] {
        assert_eq!(
            wire::perf_u64(concurrent, "solve_cache_misses"),
            wire::perf_u64(solo, "solve_cache_misses"),
            "{what}: wire perf must not cross-bill cache misses"
        );
        let solo_allocs = wire::perf_u64(solo, "allocs");
        let conc_allocs = wire::perf_u64(concurrent, "allocs");
        assert!(
            conc_allocs >= solo_allocs / 2 && conc_allocs <= solo_allocs * 2,
            "{what}: allocs {conc_allocs} drifted past 2x from solo {solo_allocs}"
        );
    }

    handle.request_drain();
    join.join().unwrap();
}

#[test]
fn coalesced_serve_pair_bills_the_shared_build_once() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    register_alloc_probe(current_thread_allocs);
    mcpat::par::set_thread_override(1);
    memo::set_enabled(true);

    struct HoldReset;
    impl Drop for HoldReset {
        fn drop(&mut self) {
            mcpat_serve::set_eval_hold_ms(0);
        }
    }
    let _hold = HoldReset;

    let (handle, join) = start_server();
    let addr = handle.addr();

    let cfg_a = &candidates(TechNode::N22, 1)[0];
    let mut cfg_b = cfg_a.clone();
    cfg_b.name = format!("{}-twin", cfg_a.name);

    // Solo baseline for this config against an empty cache.
    memo::clear();
    let solo = wire::Client::connect(addr).roundtrip(&wire::evaluate_line(cfg_a, 1));
    let solo_misses = wire::perf_u64(&solo, "solve_cache_misses");
    assert!(solo_misses > 0);

    // Identical-modulo-name pair: A claims the build and stalls on the
    // hold; B provably arrives while A is mid-build and coalesces.
    memo::clear();
    mcpat_serve::set_eval_hold_ms(300);
    let mut a = wire::Client::connect(addr);
    a.send(&wire::evaluate_line(cfg_a, 2));
    let mut probe = wire::Client::connect(addr);
    let t0 = std::time::Instant::now();
    loop {
        let stats = probe.roundtrip("{\"type\":\"stats\"}");
        let in_flight = stats
            .get("stats")
            .and_then(|s| s.get("server"))
            .and_then(|s| s.get("in_flight"))
            .and_then(serde_json::Value::as_u64)
            .unwrap();
        if in_flight >= 1 {
            break;
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "request A was never admitted"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let mut b = wire::Client::connect(addr);
    b.send(&wire::evaluate_line(&cfg_b, 3));
    let resp_a = a.recv();
    let resp_b = b.recv();
    mcpat_serve::set_eval_hold_ms(0);

    // The builder bills the full build exactly once; the coalesced
    // waiter bills zero misses of its own. The split is deterministic:
    // misses never double-count and never vanish.
    assert!(wire::perf_bool(&resp_a, "built"), "{resp_a:?}");
    assert!(wire::perf_bool(&resp_b, "coalesced"), "{resp_b:?}");
    assert_eq!(wire::perf_u64(&resp_a, "solve_cache_misses"), solo_misses);
    assert_eq!(wire::perf_u64(&resp_b, "solve_cache_misses"), 0);
    assert_eq!(
        wire::perf_u64(&resp_a, "solve_cache_misses")
            + wire::perf_u64(&resp_b, "solve_cache_misses"),
        solo_misses,
        "the coalesced pair must bill the shared build exactly once"
    );

    handle.request_drain();
    join.join().unwrap();
}

#[test]
fn stolen_pool_tasks_bill_the_submitting_scope() {
    let _guard = knob_lock();
    let _reset = KnobReset;
    mcpat::par::set_thread_override(4);

    let submitter = mcpat::obs::Collector::new();
    let mut outer_steals = 0u64;
    // Steals come from worker-local deques, which only nested fan-outs
    // fill: each outer task runs a join4 whose lead closure sleeps, so
    // idle workers steal the three queued siblings out of the busy
    // worker's deque. Whether a steal lands is still a scheduling
    // race; retry until one does. Every attempt asserts the negative
    // half: observer scopes entered *inside* the tasks (which submit
    // nothing themselves) never see a steal event.
    for _attempt in 0..50 {
        let steals_in_tasks = AtomicU64::new(0);
        {
            let _scope = submitter.enter();
            let items: Vec<u64> = (0..2).collect();
            let out = mcpat::par::par_map(&items, 2, |_, &x| {
                let executor = mcpat::obs::Collector::new();
                let observed = {
                    let _inner = executor.enter();
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    executor.snapshot().pool_steals
                };
                steals_in_tasks.fetch_add(observed, Ordering::Relaxed);
                // Nested fan-out outside the observer scope: its jobs
                // bill the chain active here — the outer submitter.
                let sleep_then = |us: u64, v: u64| {
                    move || -> u64 {
                        std::thread::sleep(std::time::Duration::from_micros(us));
                        v
                    }
                };
                let (a, b, c, d) = mcpat::par::join4(
                    sleep_then(1000, 1),
                    sleep_then(100, 1),
                    sleep_then(100, 1),
                    sleep_then(100, 1),
                )
                .unwrap();
                x + a + b + c + d
            })
            .unwrap();
            assert_eq!(out.len(), 2);
        }
        assert_eq!(
            steals_in_tasks.load(Ordering::Relaxed),
            0,
            "a steal must bill the scope that submitted the task, \
             never a scope opened on the stealing worker"
        );
        outer_steals = submitter.snapshot().pool_steals;
        if outer_steals > 0 {
            break;
        }
    }
    assert!(
        outer_steals > 0,
        "no steal observed in 50 attempts of a nested fan-out on a 4-thread pool"
    );
}
