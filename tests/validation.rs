#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Integration test: the four whole-chip validations of the McPAT paper.
//!
//! The paper reports component-level errors in the 10–25% range against
//! published data; these tests pin our models into comparable bands so
//! regressions in any layer (tech, circuit, array, core, uncore) surface
//! immediately.

use mcpat::{Processor, ProcessorConfig};

struct Target {
    cfg: ProcessorConfig,
    published_power_w: f64,
    published_area_mm2: f64,
}

fn targets() -> Vec<Target> {
    vec![
        Target {
            cfg: ProcessorConfig::niagara(),
            published_power_w: 63.0,
            published_area_mm2: 378.0,
        },
        Target {
            cfg: ProcessorConfig::niagara2(),
            published_power_w: 84.0,
            published_area_mm2: 342.0,
        },
        Target {
            cfg: ProcessorConfig::alpha21364(),
            published_power_w: 125.0,
            published_area_mm2: 397.0,
        },
        Target {
            cfg: ProcessorConfig::tulsa(),
            published_power_w: 150.0,
            published_area_mm2: 435.0,
        },
    ]
}

#[test]
fn chip_power_matches_published_within_30_percent() {
    for t in targets() {
        let chip = Processor::build(&t.cfg).unwrap();
        let power = chip.peak_power().total();
        let err = (power - t.published_power_w).abs() / t.published_power_w;
        assert!(
            err < 0.30,
            "{}: modeled {power:.1} W vs published {:.1} W ({:.0}% error)",
            t.cfg.name,
            t.published_power_w,
            err * 100.0
        );
    }
}

#[test]
fn chip_area_matches_published_within_30_percent() {
    for t in targets() {
        let chip = Processor::build(&t.cfg).unwrap();
        let area = chip.die_area_mm2();
        let err = (area - t.published_area_mm2).abs() / t.published_area_mm2;
        assert!(
            err < 0.30,
            "{}: modeled {area:.0} mm² vs published {:.0} mm² ({:.0}% error)",
            t.cfg.name,
            t.published_area_mm2,
            err * 100.0
        );
    }
}

#[test]
fn niagara_cores_and_clock_are_major_consumers() {
    let chip = Processor::build(&ProcessorConfig::niagara()).unwrap();
    let p = chip.peak_power();
    assert!(p.share("cores") > 0.15, "cores share {}", p.share("cores"));
    assert!(p.share("clock") > 0.10, "clock share {}", p.share("clock"));
    // 90 nm chip: leakage is a minority of total power.
    assert!(p.leakage().total() < 0.4 * p.total());
}

#[test]
fn tulsa_l3_dominates_leakage() {
    let chip = Processor::build(&ProcessorConfig::tulsa()).unwrap();
    let p = chip.peak_power();
    let l3 = p.component("l3").expect("tulsa has an L3");
    // A 16 MB 65 nm SRAM leaks heavily relative to its activity.
    assert!(l3.leakage.total() > l3.dynamic);
    assert!(l3.leakage.total() > 0.4 * p.leakage().total());
}

#[test]
fn alpha_clock_network_is_the_biggest_single_item() {
    // The 21364's gridded clock was famously ≈ a third of chip power.
    let chip = Processor::build(&ProcessorConfig::alpha21364()).unwrap();
    let p = chip.peak_power();
    let clock = p.component("clock").unwrap().total();
    assert!(
        clock > 0.25 * p.total(),
        "clock share {:.2}",
        clock / p.total()
    );
}

#[test]
fn validation_chips_meet_their_target_clocks() {
    for t in targets() {
        let chip = Processor::build(&t.cfg).unwrap();
        let timing = chip.timing();
        // Allow a small margin: Tulsa's 3.4 GHz NetBurst pushed arrays to
        // the limit (and pipelined its L1 access over two cycles).
        assert!(
            timing.core_max_clock_hz >= 0.9 * timing.target_clock_hz,
            "{}: max {:.2} GHz vs target {:.2} GHz",
            t.cfg.name,
            timing.core_max_clock_hz / 1e9,
            timing.target_clock_hz / 1e9
        );
    }
}

#[test]
fn per_core_unit_breakdown_is_complete_for_ooo_chips() {
    let chip = Processor::build(&ProcessorConfig::alpha21364()).unwrap();
    let p = chip.peak_power();
    let names: Vec<&str> = p
        .core_detail
        .items
        .iter()
        .map(|i| i.name.as_str())
        .collect();
    for unit in ["ifu", "rename", "window", "regfile", "exu", "lsu", "mmu"] {
        assert!(names.contains(&unit), "missing core unit {unit}");
    }
}
