#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Integration test: the full pipeline — configuration → chip build →
//! performance simulation → runtime power → metrics — across presets and
//! workloads, plus serde round-tripping of the configuration schema.

use mcpat::{MetricSet, Processor, ProcessorConfig};
use mcpat_sim::{SystemModel, WorkloadProfile};

fn all_configs() -> Vec<ProcessorConfig> {
    vec![
        ProcessorConfig::niagara(),
        ProcessorConfig::niagara2(),
        ProcessorConfig::alpha21364(),
        ProcessorConfig::tulsa(),
    ]
}

fn all_workloads() -> Vec<(&'static str, WorkloadProfile)> {
    vec![
        ("compute", WorkloadProfile::compute_bound()),
        ("memory", WorkloadProfile::memory_bound()),
        ("balanced", WorkloadProfile::balanced()),
        ("server", WorkloadProfile::server_transactional()),
        ("splash", WorkloadProfile::splash_like()),
    ]
}

#[test]
fn every_preset_runs_every_workload() {
    for cfg in all_configs() {
        let chip = Processor::build(&cfg).unwrap();
        let peak = chip.peak_power().total();
        let sim = SystemModel::new(&cfg);
        for (name, wl) in all_workloads() {
            let run = sim.simulate(&wl, 50_000_000);
            assert!(run.seconds > 0.0, "{}/{name}", cfg.name);
            assert!(
                run.ipc_per_core > 0.01,
                "{}/{name}: ipc {}",
                cfg.name,
                run.ipc_per_core
            );
            let p = chip.runtime_power(&run.stats);
            assert!(
                p.total() > 0.0 && p.total() < peak * 1.3,
                "{}/{name}: runtime {:.1} W vs peak {peak:.1} W",
                cfg.name,
                p.total()
            );
        }
    }
}

#[test]
fn runtime_power_is_at_least_leakage() {
    let cfg = ProcessorConfig::niagara2();
    let chip = Processor::build(&cfg).unwrap();
    let run = SystemModel::new(&cfg).simulate(&WorkloadProfile::compute_bound(), 10_000_000);
    let p = chip.runtime_power(&run.stats);
    assert!(p.total() >= p.leakage().total());
}

#[test]
fn memory_bound_work_uses_more_bandwidth_than_compute_bound() {
    let cfg = ProcessorConfig::niagara2();
    let sim = SystemModel::new(&cfg);
    let mem = sim.simulate(&WorkloadProfile::memory_bound(), 10_000_000);
    let cpu = sim.simulate(&WorkloadProfile::compute_bound(), 10_000_000);
    assert!(mem.mem_bw_utilization > cpu.mem_bw_utilization);
}

#[test]
fn metrics_pipeline_produces_finite_composites() {
    let cfg = ProcessorConfig::alpha21364();
    let chip = Processor::build(&cfg).unwrap();
    let run = SystemModel::new(&cfg).simulate(&WorkloadProfile::balanced(), 20_000_000);
    let p = chip.runtime_power(&run.stats);
    let m = MetricSet::from_power(p.total(), run.seconds, chip.die_area());
    for v in [m.edp(), m.ed2p(), m.edap(), m.eda2p()] {
        assert!(v.is_finite() && v > 0.0);
    }
}

#[test]
fn processor_config_round_trips_through_json() {
    for cfg in all_configs() {
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: ProcessorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back, "{} did not round-trip", cfg.name);
    }
}

#[test]
fn chip_stats_round_trip_through_json() {
    let cfg = ProcessorConfig::niagara();
    let run = SystemModel::new(&cfg).simulate(&WorkloadProfile::server_transactional(), 1_000_000);
    let json = serde_json::to_string(&run.stats).unwrap();
    let back: mcpat::ChipStats = serde_json::from_str(&json).unwrap();
    assert_eq!(run.stats, back);
}

#[test]
fn rebuilding_from_serialized_config_gives_identical_power() {
    let cfg = ProcessorConfig::niagara2();
    let chip1 = Processor::build(&cfg).unwrap();
    let json = serde_json::to_string(&cfg).unwrap();
    let cfg2: ProcessorConfig = serde_json::from_str(&json).unwrap();
    let chip2 = Processor::build(&cfg2).unwrap();
    let p1 = chip1.peak_power().total();
    let p2 = chip2.peak_power().total();
    assert!((p1 - p2).abs() < 1e-9, "{p1} vs {p2}");
}

#[test]
fn higher_clock_means_more_dynamic_power() {
    let mut cfg = ProcessorConfig::niagara2();
    let base = Processor::build(&cfg).unwrap().peak_power().dynamic();
    cfg.clock_hz *= 1.5;
    cfg.core.clock_hz = cfg.clock_hz;
    let fast = Processor::build(&cfg).unwrap().peak_power().dynamic();
    assert!(fast > 1.2 * base, "{fast} vs {base}");
}

#[test]
fn conservative_wires_cost_power() {
    let mut cfg = ProcessorConfig::niagara2();
    cfg.projection = mcpat::tech::WireProjection::Aggressive;
    let aggressive = Processor::build(&cfg).unwrap().peak_power().total();
    cfg.projection = mcpat::tech::WireProjection::Conservative;
    let conservative = Processor::build(&cfg).unwrap().peak_power().total();
    assert!(conservative > aggressive);
}
