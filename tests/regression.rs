#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Golden-value regression pins.
//!
//! These tests freeze the current calibration (±2% tolerance) so that
//! any future change to a lower layer that silently shifts whole-chip
//! numbers is caught immediately. When a calibration change is
//! *intentional*, update the pinned values here and record the change in
//! EXPERIMENTS.md.

use mcpat::array::{ArraySpec, OptTarget};
use mcpat::tech::{DeviceType, TechNode, TechParams};
use mcpat::{Processor, ProcessorConfig};

fn within(actual: f64, pinned: f64, tol: f64, what: &str) {
    let rel = (actual - pinned).abs() / pinned.abs().max(1e-30);
    assert!(
        rel < tol,
        "{what}: {actual:.6e} drifted from pinned {pinned:.6e} ({:.2}%)",
        rel * 100.0
    );
}

#[test]
fn technology_layer_pins() {
    for (node, flavor, pinned_fo4_ps) in [
        (TechNode::N90, DeviceType::Hp, 21.87),
        (TechNode::N45, DeviceType::Hp, 10.35),
        (TechNode::N22, DeviceType::Hp, 4.72),
        (TechNode::N32, DeviceType::Lstp, 20.48),
    ] {
        let t = TechParams::new(node, flavor, 360.0);
        within(
            t.fo4() * 1e12,
            pinned_fo4_ps,
            0.10,
            &format!("FO4 {node} {flavor}"),
        );
    }
}

#[test]
fn array_layer_pins() {
    let t = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
    let a = ArraySpec::ram(32 * 1024, 64)
        .named("pin-l1")
        .solve(&t, OptTarget::EnergyDelay)
        .unwrap();
    within(a.access_time * 1e9, 0.2498, 0.05, "32KB access ns");
    within(a.read_energy * 1e12, 61.08, 0.05, "32KB read pJ");
    within(a.area * 1e6, 0.4228, 0.05, "32KB area mm2");
}

#[test]
fn whole_chip_pins() {
    // Pinned from the calibration recorded in EXPERIMENTS.md.
    for (cfg, pinned_power_w, pinned_area_mm2) in [
        (ProcessorConfig::niagara(), 56.0, 295.0),
        (ProcessorConfig::niagara2(), 72.4, 292.0),
        (ProcessorConfig::alpha21364(), 102.1, 433.0),
        (ProcessorConfig::tulsa(), 166.2, 452.0),
    ] {
        let chip = Processor::build(&cfg).unwrap();
        within(
            chip.peak_power().total(),
            pinned_power_w,
            0.02,
            &format!("{} peak power", cfg.name),
        );
        within(
            chip.die_area_mm2(),
            pinned_area_mm2,
            0.02,
            &format!("{} die area", cfg.name),
        );
    }
}

#[test]
fn determinism_pin_same_build_twice() {
    let cfg = ProcessorConfig::niagara2();
    let a = Processor::build(&cfg).unwrap();
    let b = Processor::build(&cfg).unwrap();
    assert_eq!(a.peak_power().total(), b.peak_power().total());
    assert_eq!(a.die_area(), b.die_area());
}
