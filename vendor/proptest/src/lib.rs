//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * range, tuple, `Just`, `select`, `bool::ANY` strategies,
//! * `prop_map` / `prop_filter` / `prop_filter_map` combinators and
//!   [`prop_oneof!`],
//! * `prop_assert!` / `prop_assert_eq!`,
//! * replay of committed `*.proptest-regressions` seeds whose values
//!   parse via `FromStr` (numeric shrink seeds replay; seeds recorded as
//!   Debug-formatted structs are skipped but preserved on disk).
//!
//! No shrinking is performed: on failure the generated inputs are
//! printed verbatim.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generator driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically; tests derive the seed from their name so
    /// runs are reproducible.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derives a per-test seed from the test path, honouring a
    /// `PROPTEST_SEED` environment override.
    #[must_use]
    pub fn for_test(name: &str) -> TestRng {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return TestRng::seed_from_u64(seed);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }

    /// SplitMix64 step.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, n).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug + Clone;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Keeps only values for which `f` returns `true`.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }

    /// Maps values through `f`, resampling while it returns `None`.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        U: Debug + Clone,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            base: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug + Clone> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U: Debug + Clone, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// Attempts before a filter gives up (mirrors proptest's global rejects
/// cap in spirit).
const MAX_FILTER_TRIES: usize = 10_000;

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.base.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected every candidate", self.whence);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U: Debug + Clone, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_FILTER_TRIES {
            if let Some(v) = (self.f)(self.base.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map `{}` rejected every candidate", self.whence);
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug + Clone> Union<T> {
    /// Builds from a non-empty option list.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug + Clone> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Sub-modules mirroring `proptest::prop`.
pub mod prop_mods {
    /// `prop::sample`.
    pub mod sample {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Uniform choice from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Uniformly selects one of `items`.
        pub fn select<T: Debug + Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select() needs at least one item");
            Select { items }
        }

        impl<T: Debug + Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.items.len() as u64) as usize;
                self.items[i].clone()
            }
        }
    }

    /// `prop::bool`.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// The strategy generating both booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform boolean.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regression replay
// ---------------------------------------------------------------------------

/// Autoref-specialization tag: `(&RvTag<T>).rv_parse(s)` resolves to the
/// `FromStr` impl when `T: FromStr`, else the fallback returning `None`.
pub struct RvTag<T>(PhantomData<T>);

/// Builds the tag for a strategy's value type.
#[must_use]
pub fn rv_tag_for<S: Strategy>(_s: &S) -> RvTag<S::Value> {
    RvTag(PhantomData)
}

/// Replay parsing via `FromStr` (preferred by autoref specialization).
pub trait RvParseFromStr<T> {
    /// Parses a recorded shrink value.
    fn rv_parse(&self, s: &str) -> Option<T>;
}

impl<T: std::str::FromStr> RvParseFromStr<T> for &RvTag<T> {
    fn rv_parse(&self, s: &str) -> Option<T> {
        s.trim().parse().ok()
    }
}

/// Replay parsing fallback for non-`FromStr` types: skip.
pub trait RvParseFallback<T> {
    /// Always `None`.
    fn rv_parse(&self, s: &str) -> Option<T>;
}

impl<T> RvParseFallback<T> for RvTag<T> {
    fn rv_parse(&self, _s: &str) -> Option<T> {
        None
    }
}

/// Loads the committed regression seeds for `source_file` whose recorded
/// variable names exactly match `args`, returning for each seed the raw
/// value strings in `args` order.
#[must_use]
pub fn regression_cases(source_file: &str, args: &[&str]) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let Some(text) = read_regression_file(source_file) else {
        return out;
    };
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("cc ") {
            continue;
        }
        let Some((_, tail)) = line.split_once("# shrinks to ") else {
            continue;
        };
        if let Some(values) = split_shrink_values(tail.trim(), args) {
            out.push(values);
        }
    }
    out
}

/// Splits `name1 = v1, name2 = v2, ...` on the known `args` names, so
/// values may themselves contain commas (Debug-formatted structs).
fn split_shrink_values(tail: &str, args: &[&str]) -> Option<Vec<String>> {
    // Locate each `name = ` marker in order.
    let mut starts = Vec::with_capacity(args.len());
    let mut search_from = 0;
    for name in args {
        let marker = format!("{name} = ");
        let idx = tail[search_from..].find(&marker)? + search_from;
        starts.push((idx, idx + marker.len()));
        search_from = idx + marker.len();
    }
    let mut values = Vec::with_capacity(args.len());
    for (i, &(_, vstart)) in starts.iter().enumerate() {
        let vend = if i + 1 < starts.len() {
            // Trim back across the `, ` separator before the next name.
            let next_name_start = starts[i + 1].0;
            tail[..next_name_start]
                .trim_end()
                .trim_end_matches(',')
                .len()
        } else {
            tail.len()
        };
        if vend <= vstart {
            return None;
        }
        values.push(tail[vstart..vend].trim().trim_end_matches(',').to_string());
    }
    Some(values)
}

fn read_regression_file(source_file: &str) -> Option<String> {
    let base = source_file.strip_suffix(".rs")?;
    let rel = format!("{base}.proptest-regressions");
    // `file!()` paths are workspace-relative while tests run from the
    // package directory; probe upward a few levels.
    for prefix in ["", "../", "../../", "../../../"] {
        let candidate = format!("{prefix}{rel}");
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            return Some(text);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice among heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Defines property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            let __cfg: $crate::ProptestConfig = $cfg;
            // Bind each strategy under its argument name (shadowed by the
            // sampled values inside each case).
            let ($($arg,)+) = ($($strat,)+);

            // Replay committed regression seeds first, when parseable.
            let __replays = $crate::regression_cases(file!(), &[$(stringify!($arg)),+]);
            for __case in &__replays {
                let mut __fields = __case.iter();
                #[allow(unused_imports)]
                use $crate::{RvParseFallback as _, RvParseFromStr as _};
                let __parsed = (|| {
                    Some(($(
                        (&$crate::rv_tag_for(&$arg)).rv_parse(__fields.next()?.as_str())?,
                    )+))
                })();
                if let Some(__vals) = __parsed {
                    let __shown = format!("{:?}", __vals);
                    let __r = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        let ($($arg,)+) = __vals.clone();
                        $body
                    }));
                    if let Err(__e) = __r {
                        eprintln!(
                            "proptest regression seed failed: {} = {}",
                            stringify!(($($arg),+)),
                            __shown,
                        );
                        ::std::panic::resume_unwind(__e);
                    }
                }
            }

            // Fresh cases.
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case_index in 0..__cfg.cases {
                let __vals = ($($crate::Strategy::sample(&$arg, &mut __rng),)+);
                let __shown = format!("{:?}", __vals);
                let __r = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ($($arg,)+) = __vals.clone();
                    $body
                }));
                if let Err(__e) = __r {
                    eprintln!(
                        "proptest case {} failed: {} = {}",
                        __case_index,
                        stringify!(($($arg),+)),
                        __shown,
                    );
                    ::std::panic::resume_unwind(__e);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// The `proptest::prelude` equivalent.
pub mod prelude {
    pub use crate::prop_mods as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        let s = (1u32..5, 0.0..1.0f64);
        for _ in 0..200 {
            let (a, b) = s.sample(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn filter_map_and_oneof_work() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        let even = (0u32..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        for _ in 0..100 {
            assert_eq!(even.sample(&mut rng) % 2, 0);
        }
        let t = prop_oneof![Just(1u32), Just(2u32)];
        for _ in 0..50 {
            assert!(matches!(t.sample(&mut rng), 1 | 2));
        }
    }

    #[test]
    fn shrink_value_splitting_handles_commas_in_debug() {
        let vals =
            crate::split_shrink_values("cfg = Foo { a: 1, b: 2 }, x = 7", &["cfg", "x"]).unwrap();
        assert_eq!(vals[0], "Foo { a: 1, b: 2 }");
        assert_eq!(vals[1], "7");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(a in 1u32..10, b in 0.5..2.0f64) {
            prop_assert!(a >= 1 && a < 10);
            prop_assert!(b >= 0.5 && b < 2.0);
        }
    }
}
