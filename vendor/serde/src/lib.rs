//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the minimal serialization machinery it needs. Instead of serde's
//! visitor-based streaming model, everything round-trips through a small
//! tree ([`Content`]) — more than fast enough for configuration files and
//! reports, and much simpler to reason about.
//!
//! The public names (`Serialize`, `Deserialize`, `serde::derive`) mirror
//! the real crate closely enough that the workspace code is written
//! exactly as it would be against upstream serde.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model everything serializes through.
///
/// `serde_json::Value` is an alias of this type, so corrupting or
/// inspecting serialized configs (as the fault-injection harness does)
/// operates directly on `Content` trees.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number (may be non-finite in memory; non-finite
    /// values serialize to `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map (insertion order preserved so emitted JSON is
    /// stable).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable map entries, if this is a map.
    pub fn as_map_mut(&mut self) -> Option<&mut Vec<(String, Content)>> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable sequence elements, if this is a sequence.
    pub fn as_seq_mut(&mut self) -> Option<&mut Vec<Content>> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::U64(u) => Some(*u as f64),
            Content::I64(i) => Some(*i as f64),
            Content::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64` if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(u) => Some(*u),
            Content::I64(i) if *i >= 0 => Some(*i as u64),
            Content::F64(f)
                if f.is_finite() && *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64` if it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::U64(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Content::I64(i) => Some(*i),
            Content::F64(f)
                if f.is_finite()
                    && f.fract() == 0.0
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map().and_then(|m| content_find(m, key))
    }

    /// Mutable lookup of a key in a map value.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Content> {
        match self {
            Content::Map(m) => m.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Finds `key` in an ordered map body (first match).
pub fn content_find<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a message plus the reverse path of fields it
/// occurred under.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
    path: Vec<String>,
}

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError::custom(format!("missing field `{field}` for `{ty}`"))
    }

    /// The value had the wrong shape.
    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError::custom(format!("expected {what} for `{ty}`"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> DeError {
        DeError::custom(format!("unknown variant `{tag}` for enum `{ty}`"))
    }

    /// Wraps the error with the field it occurred in (outermost last).
    #[must_use]
    pub fn in_field(mut self, field: &str) -> DeError {
        self.path.push(field.to_string());
        self
    }

    /// The dotted field path from the root to the error site.
    pub fn path(&self) -> String {
        let mut parts: Vec<&str> = self.path.iter().map(String::as_str).collect();
        parts.reverse();
        parts.join(".")
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "{}: {}", self.path(), self.msg)
        }
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into the [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into a content tree.
    fn serialize_content(&self) -> Content;
}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses a value of `Self` out of a content tree.
    fn deserialize_content(c: &Content) -> Result<Self, DeError>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let u = c
                    .as_u64()
                    .ok_or_else(|| DeError::expected("a non-negative integer", stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| {
                    DeError::custom(format!(
                        "value {u} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        let u = c
            .as_u64()
            .ok_or_else(|| DeError::expected("a non-negative integer", "usize"))?;
        usize::try_from(u).map_err(|_| DeError::custom(format!("value {u} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let i = c
                    .as_i64()
                    .ok_or_else(|| DeError::expected("an integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::custom(format!(
                        "value {i} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        if c.is_null() {
            // JSON cannot represent non-finite floats; `null` is the
            // conventional encoding.
            return Ok(f64::NAN);
        }
        c.as_f64()
            .ok_or_else(|| DeError::expected("a number", "f64"))
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        if c.is_null() {
            return Ok(f32::NAN);
        }
        c.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("a number", "f32"))
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool()
            .ok_or_else(|| DeError::expected("a bool", "bool"))
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("a string", "String"))
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        if c.is_null() {
            return Ok(None);
        }
        T::deserialize_content(c).map(Some)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        let seq = c
            .as_seq()
            .ok_or_else(|| DeError::expected("a sequence", "Vec"))?;
        seq.iter()
            .enumerate()
            .map(|(i, v)| T::deserialize_content(v).map_err(|e| e.in_field(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (*self).serialize_content()
    }
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize_content(&42u32.serialize_content()), Ok(42));
        assert_eq!(
            f64::deserialize_content(&1.5f64.serialize_content()),
            Ok(1.5)
        );
        assert_eq!(
            i32::deserialize_content(&(-7i32).serialize_content()),
            Ok(-7)
        );
        assert_eq!(
            String::deserialize_content(&"hi".to_string().serialize_content()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<f64> = None;
        assert!(v.serialize_content().is_null());
        let xs = vec![1u32, 2, 3];
        assert_eq!(
            Vec::<u32>::deserialize_content(&xs.serialize_content()),
            Ok(xs)
        );
    }

    #[test]
    fn range_errors_carry_paths() {
        let c = Content::Map(vec![("big".to_string(), Content::U64(u64::MAX))]);
        let e = u32::deserialize_content(c.get("big").unwrap())
            .unwrap_err()
            .in_field("big");
        assert!(e.to_string().contains("big"));
    }
}
