//! Offline stand-in for `serde_json`.
//!
//! Provides the pieces of the real crate's API the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], and a [`Value`] tree (an alias of the vendored
//! [`serde::Content`]) that tooling — notably the fault-injection
//! harness — can traverse and mutate.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A parsed JSON document.
pub type Value = Content;

/// Parsing or conversion error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    /// 1-based line of the parse error, when known.
    line: Option<usize>,
    /// 1-based column of the parse error, when known.
    column: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error {
            msg: msg.into(),
            line: None,
            column: None,
        }
    }

    fn at(msg: impl Into<String>, line: usize, column: usize) -> Error {
        Error {
            msg: msg.into(),
            line: Some(line),
            column: Some(column),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (Some(l), Some(c)) => write!(f, "{} at line {l} column {c}", self.msg),
            _ => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails for the tree-based data model; the `Result` mirrors the
/// real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_content(), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
///
/// # Errors
///
/// Never fails for the tree-based data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_content(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails for the tree-based data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_content())
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] describing the first field that failed to
/// deserialize.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_content(&value).map_err(Error::from)
}

/// Parses a typed value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] if the text is not valid JSON or does not match
/// the target type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::deserialize_content(&value).map_err(Error::from)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(u) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
        }
        Content::I64(i) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Content::F64(f) => write_f64(out, *f),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            write_compound(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                write_value(out, &items[i], indent, lvl);
            })
        }
        Content::Map(entries) => write_compound(
            out,
            indent,
            level,
            '{',
            '}',
            entries.len(),
            |out, i, lvl| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, lvl);
            },
        ),
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (level + 1)));
        }
        write_item(out, i, level + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * level));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Inf tokens; `null` is the conventional stand-in.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Rust's shortest-round-trip formatting omits the decimal point for
    // whole numbers; keep it so the value re-parses as a float-looking
    // token (and matches real serde_json output).
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] with line/column context on malformed input.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::at(msg.to_string(), line, col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(entries)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs for astral-plane chars.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if self.eat_keyword("\\u") {
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(cp)
                        };
                        match ch {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid \\u escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = (start + len).min(self.bytes.len());
                        match std::str::from_utf8(&self.bytes[start..end]) {
                            Ok(s) => {
                                out.push_str(s);
                                self.pos = end;
                            }
                            Err(_) => return Err(self.err("invalid UTF-8 in string")),
                        }
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b) if b.is_ascii_hexdigit() => (b as char).to_digit(16).unwrap_or(0),
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "42", "-7", "1.5", "1e300", "\"hi\"",
        ] {
            let v = parse_value(text).unwrap();
            let back = parse_value(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a": [1, 2.5, {"b": null}], "c": "x\n\"y\""}"#;
        let v = parse_value(text).unwrap();
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn float_precision_round_trips() {
        for f in [1.2e9_f64, 6.4e9, 0.1 + 0.2, f64::MIN_POSITIVE, 1.7e308] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f, back, "{s}");
        }
    }

    #[test]
    fn parse_errors_have_location() {
        let e = parse_value("{ not json }").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
