//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde implementation (see `vendor/serde`). This
//! proc-macro crate provides `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the subset of shapes the workspace
//! actually uses:
//!
//! * structs with named fields (honouring `#[serde(default)]` and
//!   `#[serde(default = "path")]`),
//! * enums with unit variants, struct variants, and newtype variants.
//!
//! It deliberately avoids `syn`/`quote`: the input token stream is walked
//! by hand and the generated impls are assembled as strings, which is
//! entirely adequate for the plain data types modelled here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct (or struct variant).
struct Field {
    name: String,
    /// `None` = required, `Some(None)` = `#[serde(default)]`,
    /// `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Single unnamed payload (newtype variant).
    Newtype,
    /// Named fields.
    Struct(Vec<Field>),
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes / visibility until `struct` or `enum`.
    let mut is_enum = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                is_enum = true;
                break;
            }
            _ => i += 1,
        }
    }
    i += 1; // past the keyword
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other:?}"),
    };
    i += 1;
    // Find the brace-delimited body (no generics are used in this workspace).
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("serde_derive stub: `{name}` has no braced body (tuple structs and generics are unsupported)"),
        }
    };
    let shape = if is_enum {
        Shape::Enum(parse_variants(body))
    } else {
        Shape::Struct(parse_fields(body))
    };
    Input { name, shape }
}

/// Extracts a `default` spec from a `#[serde(...)]` attribute group body.
fn serde_default_of(attr_body: &str) -> Option<Option<String>> {
    // attr_body looks like `serde(default)` or `serde(default = "path")`.
    let inner = attr_body.strip_prefix("serde")?.trim();
    let inner = inner.strip_prefix('(')?.strip_suffix(')')?.trim();
    if inner == "default" {
        return Some(None);
    }
    let rest = inner
        .strip_prefix("default")?
        .trim()
        .strip_prefix('=')?
        .trim();
    let path = rest.trim_matches('"').to_string();
    Some(Some(path))
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut pending_default: Option<Option<String>> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: `#` followed by a bracket group.
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        if let Some(d) = serde_default_of(&g.stream().to_string()) {
                            pending_default = Some(d);
                        }
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // Skip a possible `(crate)` style visibility group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                // Field name followed by `:` then the type up to a
                // top-level comma.
                let fname = id.to_string();
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => panic!(
                        "serde_derive stub: expected `:` after field `{fname}`, found {other:?}"
                    ),
                }
                // Skip the type: consume until a comma at angle-bracket depth 0.
                let mut depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
                fields.push(Field {
                    name: fname,
                    default: pending_default.take(),
                });
            }
            _ => i += 1,
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip variant attributes (doc comments etc.).
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
            TokenTree::Ident(id) => {
                let vname = id.to_string();
                i += 1;
                let kind = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantKind::Struct(parse_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantKind::Newtype
                    }
                    _ => VariantKind::Unit,
                };
                // Skip a possible discriminant and the trailing comma.
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                variants.push(Variant { name: vname, kind });
            }
            _ => i += 1,
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let mut s =
                String::from("let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.push((\"{0}\".to_string(), ::serde::Serialize::serialize_content(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Content::Map(__m)\n");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{v}(__x) => ::serde::Content::Map(vec![(\"{v}\".to_string(), ::serde::Serialize::serialize_content(__x))]),\n",
                        v = v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let pats: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from(
                            "let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.push((\"{0}\".to_string(), ::serde::Serialize::serialize_content({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pats} }} => {{ {inner} ::serde::Content::Map(vec![(\"{v}\".to_string(), ::serde::Content::Map(__m))]) }}\n",
                            v = v.name,
                            pats = pats.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> ::serde::Content {{\n{body}}}\n}}\n"
    )
}

fn field_expr(owner: &str, f: &Field) -> String {
    let missing = match &f.default {
        Some(None) => "::core::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
        None => format!(
            "return Err(::serde::DeError::missing_field(\"{0}\", \"{owner}\"))",
            f.name
        ),
    };
    format!(
        "{0}: match ::serde::content_find(__map, \"{0}\") {{\n\
             Some(__v) => ::serde::Deserialize::deserialize_content(__v)\
                 .map_err(|e| e.in_field(\"{0}\"))?,\n\
             None => {missing},\n\
         }}",
        f.name
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_expr(name, f)).collect();
            format!(
                "let __map = __c.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                 Ok({name} {{\n{}\n}})\n",
                inits.join(",\n")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms
                            .push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n", v = v.name));
                        // Also accept the externally-tagged map form
                        // `{"Variant": null}`.
                        tagged_arms
                            .push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n", v = v.name));
                    }
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "\"{v}\" => return ::serde::Deserialize::deserialize_content(__payload)\
                             .map({name}::{v}).map_err(|e| e.in_field(\"{v}\")),\n",
                        v = v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> =
                            fields.iter().map(|f| field_expr(name, f)).collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                                 let __map = __payload.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{v}\"))?;\n\
                                 return Ok({name}::{v} {{\n{inits}\n}});\n\
                             }}\n",
                            v = v.name,
                            inits = inits.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "if let Some(__s) = __c.as_str() {{\n\
                     match __s {{\n{unit_arms}\
                         __other => return Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                     }}\n\
                 }}\n\
                 if let Some(__map) = __c.as_map() {{\n\
                     if __map.len() == 1 {{\n\
                         let (__tag, __payload) = &__map[0];\n\
                         match __tag.as_str() {{\n{tagged_arms}\
                             __other => return Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::expected(\"enum variant\", \"{name}\"))\n"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_content(__c: &::serde::Content) -> Result<{name}, ::serde::DeError> {{\n\
         #[allow(unused_variables)]\n{body}}}\n}}\n"
    )
}
