//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the API the workspace uses — `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], `gen::<f64>()`,
//! `gen_range(..)` over integer and float ranges, and `gen_bool` — on
//! top of xoshiro256** (seeded through SplitMix64, exactly as the real
//! `rand` seeds small-state generators).

use std::ops::{Range, RangeInclusive};

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the generator's native output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                debug_assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// The native 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard::sample(self);
        u < p.clamp(0.0, 1.0)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — the workhorse generator (the real `StdRng` is
    /// ChaCha12; for simulation workloads the statistical quality of
    /// xoshiro256** is ample and it is far smaller).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small-state seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.25..=0.25f64);
            assert!((-0.25..=0.25).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "{hits}");
    }
}
