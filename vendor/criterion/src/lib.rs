//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `bench_with_input`, `BenchmarkId`) with a simple
//! median-of-wall-clock measurement loop. It reports timing to stdout;
//! there is no statistical analysis, HTML report, or CLI filtering.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Iterations sampled per benchmark (kept deliberately small: these
/// benches double as reproduction scripts).
const DEFAULT_SAMPLES: usize = 10;

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` under `name` and prints the median iteration time.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub ignores sample-size hints.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Runs `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id carrying only a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new(function: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the closure; `iter` runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..DEFAULT_SAMPLES {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench {name:<48} median {median:>12.3?} ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group (compatible subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= DEFAULT_SAMPLES);
    }

    #[test]
    fn groups_and_ids_format() {
        assert_eq!(BenchmarkId::from_parameter("32KB").to_string(), "32KB");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
