//! Umbrella package hosting the workspace-level examples and integration tests.
//!
//! Re-exports the member crates for convenience in examples/tests.
pub use mcpat;
pub use mcpat_array as array;
pub use mcpat_circuit as circuit;
pub use mcpat_interconnect as interconnect;
pub use mcpat_mcore as mcore;
pub use mcpat_sim as sim;
pub use mcpat_tech as tech;
pub use mcpat_uncore as uncore;
