#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Quickstart: model a processor, print its power/area/timing report,
//! then evaluate runtime power under a simulated workload.
//!
//! Run with: `cargo run --example quickstart`

use mcpat::{Processor, ProcessorConfig};
use mcpat_sim::{SystemModel, WorkloadProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the chip. Presets exist for the paper's validation
    //    targets; here we take Niagara and tweak nothing.
    let config = ProcessorConfig::niagara();

    // 2. Build the internal chip representation. This runs the array
    //    partition optimizer for every cache/queue/register file on the
    //    chip and sizes wires, crossbars and the clock tree.
    let chip = Processor::build(&config)?;

    // 3. Static outputs: the classic McPAT report.
    println!("{}", chip.report());

    // 4. Runtime analysis: pair the power model with the bundled
    //    analytic performance simulator (the M5 stand-in).
    let workload = WorkloadProfile::server_transactional();
    let sim = SystemModel::new(&config);
    let run = sim.simulate(&workload, 1_000_000_000);
    let power = chip.runtime_power(&run.stats);

    println!(
        "server workload: {:.2} IPC/core, {:.1} W runtime ({:.1} W peak), {:.0}% DRAM bandwidth",
        run.ipc_per_core,
        power.total(),
        chip.peak_power().total(),
        100.0 * run.mem_bw_utilization,
    );

    // 5. Composite metrics for design comparison.
    let m = mcpat::MetricSet::from_power(power.total(), run.seconds, chip.die_area());
    println!(
        "energy {:.2} J, EDP {:.3e}, ED2P {:.3e}, EDAP {:.3e}, EDA2P {:.3e}",
        m.energy,
        m.edp(),
        m.ed2p(),
        m.edap(),
        m.eda2p()
    );
    Ok(())
}
