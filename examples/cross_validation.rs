#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Cross-validate the two performance models that can drive McPAT's
//! runtime power: the closed-form analytic CPI model and the
//! trace-driven scoreboard simulator. Both consume the same workload
//! profile; neither sees the other's internals.
//!
//! Run with: `cargo run --release --example cross_validation`

use mcpat_mcore::config::CoreConfig;
use mcpat_mcore::core::CoreModel;
use mcpat_sim::cpu::{CoreTiming, CpuModel};
use mcpat_sim::{run_trace, WorkloadProfile};
use mcpat_tech::{DeviceType, TechNode, TechParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
    let workloads = [
        ("compute", WorkloadProfile::compute_bound()),
        ("balanced", WorkloadProfile::balanced()),
        ("splash", WorkloadProfile::splash_like()),
        ("server", WorkloadProfile::server_transactional()),
        ("memory", WorkloadProfile::memory_bound()),
    ];

    for (machine, cfg) in [
        ("in-order", CoreConfig::generic_inorder()),
        ("out-of-order", CoreConfig::generic_ooo()),
    ] {
        let core = CoreModel::build(&tech, &cfg).map_err(std::io::Error::other)?;
        let cpu = CpuModel::new(&cfg);
        let timing = CoreTiming::default();
        println!("== {machine} core ==");
        println!(
            "{:<10} {:>12} {:>12} {:>8} {:>14}",
            "workload", "analytic IPC", "trace IPC", "ratio", "trace power W"
        );
        for (name, wl) in &workloads {
            let analytic = cpu.evaluate(wl, &timing, 0.3, false, 1).ipc;
            let (trace, stats) = run_trace(&cfg, wl, 200_000, 0xC0FFEE);
            let power = core.runtime_power(&stats);
            println!(
                "{:<10} {:>12.2} {:>12.2} {:>8.2} {:>14.2}",
                name,
                analytic,
                trace.ipc,
                analytic / trace.ipc,
                power.total(),
            );
        }
        println!();
    }
    println!("Both models must rank workloads identically; ratios near 1.0 mean");
    println!("the closed-form stall model matches the executed schedule.");
    Ok(())
}
