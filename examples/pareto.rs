#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Design-space exploration with budgets and a Pareto front: enumerate
//! manycore candidates at 32 nm, reject those over the area/power
//! budgets, simulate a workload on the rest, and print the
//! energy/delay/area Pareto front plus per-metric winners.
//!
//! Run with: `cargo run --release --example pareto`

use mcpat::explore::{explore, Budgets};
use mcpat::metrics::{Metric, MetricSet};
use mcpat::ProcessorConfig;
use mcpat_mcore::config::CoreConfig;
use mcpat_sim::{SystemModel, WorkloadProfile};
use mcpat_tech::TechNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node = TechNode::N32;
    let workload = WorkloadProfile::balanced();
    let total_insts: u64 = 1_600_000_000;

    let mut candidates = Vec::new();
    for (kind, core) in [
        ("io", CoreConfig::generic_inorder()),
        ("ooo", CoreConfig::generic_ooo()),
    ] {
        for cores in [4u32, 8, 16, 32] {
            for cluster in [2u32, 4] {
                if cores % cluster != 0 {
                    continue;
                }
                let cfg = ProcessorConfig::manycore(
                    &format!("{kind}-{cores}c-x{cluster}"),
                    node,
                    core.clone(),
                    cores,
                    cluster,
                    u64::from(cluster) * 512 * 1024,
                );
                candidates.push(cfg);
            }
        }
    }

    let budgets = Budgets {
        max_area: 150e-6,     // 150 mm²
        max_peak_power: 90.0, // 90 W
    };
    let exploration = explore(&candidates, budgets, |chip| {
        let run = SystemModel::new(&chip.config)
            .simulate(&workload, total_insts / u64::from(chip.config.num_cores));
        let power = chip.runtime_power(&run.stats);
        MetricSet::from_power(power.total(), run.seconds, chip.die_area())
    })?;

    println!(
        "{} candidates, {} feasible, {} rejected by budgets ({:?})",
        candidates.len(),
        exploration.feasible.len(),
        exploration.rejected.len(),
        exploration.rejected
    );
    println!();
    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>10} {:>7}",
        "candidate", "mm2", "peak W", "energy J", "delay s", "pareto"
    );
    for (i, c) in exploration.feasible.iter().enumerate() {
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>10.3} {:>10.4} {:>7}",
            c.name,
            c.area * 1e6,
            c.peak_power,
            c.metrics.energy,
            c.metrics.delay,
            if exploration.pareto.contains(&i) {
                "*"
            } else {
                ""
            },
        );
    }
    println!();
    for metric in Metric::ALL {
        if let Some(best) = exploration.best(metric) {
            println!("best under {:<6}: {}", metric.name(), best.name);
        }
    }
    Ok(())
}
