#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Reproduce the paper's validation: model Niagara, Niagara2, the Alpha
//! 21364 and Xeon Tulsa, and compare modeled power/area against the
//! published numbers.
//!
//! Run with: `cargo run --example validate_chips`

use mcpat::{Processor, ProcessorConfig};

struct Published {
    power_w: f64,
    area_mm2: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let targets = [
        (
            ProcessorConfig::niagara(),
            Published {
                power_w: 63.0,
                area_mm2: 378.0,
            },
        ),
        (
            ProcessorConfig::niagara2(),
            Published {
                power_w: 84.0,
                area_mm2: 342.0,
            },
        ),
        (
            ProcessorConfig::alpha21364(),
            Published {
                power_w: 125.0,
                area_mm2: 397.0,
            },
        ),
        (
            ProcessorConfig::tulsa(),
            Published {
                power_w: 150.0,
                area_mm2: 435.0,
            },
        ),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>7}   {:>10} {:>10} {:>7}",
        "chip", "pub W", "model W", "err%", "pub mm2", "model mm2", "err%"
    );
    for (cfg, published) in targets {
        let chip = Processor::build(&cfg)?;
        let power = chip.peak_power().total();
        let area = chip.die_area_mm2();
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>6.1}%   {:>10.0} {:>10.0} {:>6.1}%",
            cfg.name,
            published.power_w,
            power,
            100.0 * (power - published.power_w) / published.power_w,
            published.area_mm2,
            area,
            100.0 * (area - published.area_mm2) / published.area_mm2,
        );
        // Component shares, for the per-chip breakdown tables.
        let p = chip.peak_power();
        let shares: Vec<String> = p
            .items
            .iter()
            .map(|i| format!("{} {:.0}%", i.name, 100.0 * i.total() / p.total()))
            .collect();
        println!("             breakdown: {}", shares.join(", "));
    }
    Ok(())
}
