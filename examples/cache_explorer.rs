#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Explore the CACTI-style array solver directly: sweep cache capacity
//! and print the chosen partitioning, access time, energy, leakage and
//! area — including the effect of the optimization target.
//!
//! Run with: `cargo run --example cache_explorer`

use mcpat_array::cache::{AccessMode, CacheSpec};
use mcpat_array::OptTarget;
use mcpat_tech::{DeviceType, TechNode, TechParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);

    println!("-- capacity sweep (8-way, 64 B lines, sequential access, 32 nm HP) --");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "size", "t_hit (ns)", "E_read (pJ)", "leak (mW)", "area (mm2)"
    );
    for kb in [64u64, 256, 1024, 4096, 16384] {
        let cache = CacheSpec::new("l2", kb * 1024, 64, 8)
            .with_access_mode(AccessMode::Sequential)
            .solve(&tech, OptTarget::EnergyDelay)?;
        println!(
            "{:>6}KB {:>10.2} {:>12.1} {:>12.1} {:>10.2}",
            kb,
            cache.hit_latency * 1e9,
            cache.read_hit_energy * 1e12,
            cache.leakage.total() * 1e3,
            cache.area * 1e6,
        );
    }

    println!();
    println!("-- optimization-target ablation on a 2 MB data array --");
    let spec = mcpat_array::ArraySpec::ram(2 * 1024 * 1024, 64).named("l2-data");
    for target in [
        OptTarget::Delay,
        OptTarget::EnergyDelay,
        OptTarget::EnergyDelaySquared,
        OptTarget::Energy,
        OptTarget::Area,
    ] {
        let a = spec.solve(&tech, target)?;
        println!(
            "{:?}: Ndwl={} Ndbl={} Nspd={}  access {:.2} ns, read {:.1} pJ, area {:.2} mm2",
            target,
            a.ndwl,
            a.ndbl,
            a.nspd,
            a.access_time * 1e9,
            a.read_energy * 1e12,
            a.area * 1e6,
        );
    }

    println!();
    println!("-- SRAM vs eDRAM data array for an 8 MB L3 --");
    for (label, edram) in [("SRAM", false), ("eDRAM", true)] {
        let mut spec =
            CacheSpec::new("l3", 8 * 1024 * 1024, 64, 16).with_access_mode(AccessMode::Sequential);
        if edram {
            spec = spec.with_edram_data();
        }
        let c = spec.solve(&tech, OptTarget::EnergyDelay)?;
        println!(
            "{label:>6}: area {:.2} mm2, hit {:.2} ns, leak+refresh {:.1} mW",
            c.area * 1e6,
            c.hit_latency * 1e9,
            c.leakage.total() * 1e3,
        );
    }

    println!();
    println!("-- device-flavor tradeoff for the same 1 MB array --");
    for flavor in [DeviceType::Hp, DeviceType::Lop, DeviceType::Lstp] {
        let t = TechParams::new(TechNode::N32, flavor, 360.0);
        let a = mcpat_array::ArraySpec::ram(1024 * 1024, 64)
            .named("array")
            .solve(&t, OptTarget::EnergyDelay)?;
        println!(
            "{flavor}: access {:.2} ns, read {:.1} pJ, leakage {:.1} mW",
            a.access_time * 1e9,
            a.read_energy * 1e12,
            a.leakage.total() * 1e3,
        );
    }
    Ok(())
}
