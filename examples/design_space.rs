#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! The paper's case study in miniature: sweep manycore design points —
//! in-order vs out-of-order cores, clustering degree {1,2,4,8} cores per
//! shared L2 — at 22 nm, simulate a parallel workload, and rank the
//! points under EDP, ED²P, EDAP and EDA²P.
//!
//! The headline result to look for: the area-aware metrics (EDAP/EDA²P)
//! pick a different optimum than ED²P does.
//!
//! Run with: `cargo run --release --example design_space`

use mcpat::metrics::{best_index, Metric, MetricSet};
use mcpat::{Processor, ProcessorConfig};
use mcpat_mcore::config::CoreConfig;
use mcpat_sim::{SystemModel, WorkloadProfile};
use mcpat_tech::TechNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node = TechNode::N22;
    let num_cores = 16;
    let workload = WorkloadProfile::splash_like();
    let insts_per_core: u64 = 500_000_000;

    let mut labels = Vec::new();
    let mut points = Vec::new();

    for (kind, core) in [
        ("in-order", CoreConfig::niagara2_like()),
        ("ooo", CoreConfig::alpha21364_like()),
    ] {
        for cluster in [1u32, 2, 4, 8] {
            let cfg = ProcessorConfig::manycore(
                &format!("{kind}-x{cluster}"),
                node,
                core.clone(),
                num_cores,
                cluster,
                u64::from(cluster) * 1024 * 1024,
            );
            let chip = Processor::build(&cfg)?;
            let run = SystemModel::new(&cfg).simulate(&workload, insts_per_core);
            let power = chip.runtime_power(&run.stats);
            let m = MetricSet::from_power(power.total(), run.seconds, chip.die_area());
            println!(
                "{:<14} {:>6.1} W  {:>7.1} mm2  {:>6.3} s  ipc/core {:>5.2}  EDP {:.3e}  EDAP {:.3e}",
                cfg.name,
                power.total(),
                chip.die_area_mm2(),
                run.seconds,
                run.ipc_per_core,
                m.edp(),
                m.edap(),
            );
            labels.push(cfg.name.clone());
            points.push(m);
        }
    }

    println!();
    for metric in Metric::ALL {
        if let Some(i) = best_index(&points, metric) {
            println!("best under {:<6}: {}", metric.name(), labels[i]);
        }
    }
    Ok(())
}
