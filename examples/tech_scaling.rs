#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Technology scaling study: hold the architecture fixed (a Niagara2-like
//! 8-core chip) and sweep the process node from 90 nm to 22 nm, showing
//! the dynamic-vs-leakage crossover and area shrink the paper discusses.
//!
//! Run with: `cargo run --release --example tech_scaling`

use mcpat::{Processor, ProcessorConfig};
use mcpat_tech::TechNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "node", "total W", "dynamic W", "leak W", "leak %", "area mm2"
    );
    for node in TechNode::SCALING_STUDY {
        let mut cfg = ProcessorConfig::niagara2();
        cfg.name = format!("niagara2-at-{node}");
        cfg.node = node;
        let chip = Processor::build(&cfg)?;
        let p = chip.peak_power();
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>10.1} {:>9.1}% {:>10.1}",
            node.to_string(),
            p.total(),
            p.dynamic(),
            p.leakage().total(),
            100.0 * p.leakage().total() / p.total(),
            chip.die_area_mm2(),
        );
    }
    Ok(())
}
