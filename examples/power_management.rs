#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Power-management features end to end: DVFS ladder, per-core power
//! gating, clock gating, and the leakage–temperature convergence loop.
//!
//! Run with: `cargo run --release --example power_management`

use mcpat::thermal::{converge, ThermalSpec};
use mcpat::{ChipStats, DvfsPoint, Processor, ProcessorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = ProcessorConfig::niagara2();
    cfg.power_gating = true;
    let chip = Processor::build(&cfg)?;

    // A half-idle interval: four of eight cores parked.
    let mut stats = ChipStats::peak(1e-3, 8, cfg.clock_hz, 2, 1);
    let busy = stats.cores[0];
    let mut idle = busy;
    idle.idle_cycles = idle.cycles;
    idle.issues = 0;
    idle.int_ops = 0;
    idle.loads = 0;
    idle.stores = 0;
    idle.fetches = 0;
    idle.decodes = 0;
    stats.cores = vec![busy, busy, busy, busy, idle, idle, idle, idle];

    println!("-- DVFS ladder (half-idle Niagara2-like chip, power gating on) --");
    println!(
        "{:>6} {:>10} {:>12} {:>14}",
        "Vdd", "power W", "rel. perf", "rel. J/op"
    );
    let nominal = chip.runtime_power(&stats).total();
    for r in chip.dvfs_sweep(&stats, 5) {
        println!(
            "{:>5.2}x {:>10.1} {:>12.2} {:>14.2}",
            r.point.vdd_scale,
            r.power.total(),
            r.relative_performance,
            r.relative_energy_per_op(nominal),
        );
    }

    println!();
    println!("-- power gating on parked cores --");
    let gated = chip.runtime_power(&stats);
    cfg.power_gating = false;
    let ungated_chip = Processor::build(&cfg)?;
    let ungated = ungated_chip.runtime_power(&stats);
    println!(
        "gated {:.1} W vs ungated {:.1} W (core leakage {:.2} vs {:.2} W)",
        gated.total(),
        ungated.total(),
        gated.component("cores").unwrap().leakage.total(),
        ungated.component("cores").unwrap().leakage.total(),
    );

    println!();
    println!("-- leakage-temperature convergence --");
    for theta in [0.2, 0.35, 0.5] {
        let r = converge(
            &cfg,
            &stats,
            ThermalSpec {
                theta_ja: theta,
                ..ThermalSpec::default()
            },
        )?;
        println!(
            "theta_JA {theta:.2} K/W: junction {:.1} K, power {:.1} W, leakage {:.1} W ({} iters, converged={})",
            r.junction_k,
            r.power.total(),
            r.power.leakage().total(),
            r.iterations,
            r.converged,
        );
    }

    // DVFS point validation demo.
    assert!(chip
        .runtime_power_at(&stats, DvfsPoint::ladder(0.5))
        .is_none());
    println!();
    println!("(points below the 0.6x retention floor are rejected)");
    Ok(())
}
