#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Runtime power trace: run a phased workload (compute → memory-bound →
//! idle-ish server load) and print per-phase power as a text chart — the
//! kind of power-over-time view architects pair McPAT with.
//!
//! Run with: `cargo run --release --example power_trace`

use mcpat::{Processor, ProcessorConfig};
use mcpat_sim::{SystemModel, WorkloadProfile};

fn bar(width: usize, frac: f64) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(n), ".".repeat(width - n))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ProcessorConfig::niagara2();
    let chip = Processor::build(&cfg)?;
    let peak = chip.peak_power().total();
    let sys = SystemModel::new(&cfg);

    let phases = [
        (
            "hpc-stencil",
            WorkloadProfile::hpc_stencil(),
            400_000_000u64,
        ),
        ("analytics", WorkloadProfile::analytics_scan(), 200_000_000),
        ("web", WorkloadProfile::web_serving(), 400_000_000),
        ("compute", WorkloadProfile::compute_bound(), 600_000_000),
        (
            "server",
            WorkloadProfile::server_transactional(),
            300_000_000,
        ),
    ];

    println!("phase         t(ms)    W     of peak {peak:.1} W");
    let mut t = 0.0;
    for (name, wl, insts) in phases {
        let run = sys.simulate(&wl, insts);
        let p = chip.runtime_power(&run.stats).total();
        t += run.seconds * 1e3;
        println!("{name:<12} {t:>6.1} {p:>6.1}  |{}|", bar(40, p / peak));
    }
    Ok(())
}
