//! Miscellaneous core control logic.
//!
//! Beyond the regular, analytically modeled structures (arrays, CAMs,
//! ALUs, wires), a real core carries millions of transistors of random
//! control logic: pipeline control, thread pick/scheduling, exception
//! handling, debug/test (DFT), fuses, and local clock buffering. McPAT
//! accounts for these empirically from calibrated transistor budgets;
//! this module does the same, scaled by machine width, thread count, and
//! machine type.

use crate::config::CoreConfig;
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// Control/random-logic transistor density at 90 nm, transistors per m²
/// (roughly half datapath density: control logic routes poorly).
const CONTROL_DENSITY_90NM_PER_M2: f64 = 0.75e12;

/// Fraction of control capacitance switched per active cycle.
const CONTROL_ACTIVITY: f64 = 0.15;

/// Average control transistor width in feature sizes.
const AVG_WIDTH_F: f64 = 3.0;

/// Empirical random-logic model for one core.
#[derive(Debug, Clone, Copy)]
pub struct MiscLogic {
    /// Estimated transistor count.
    pub transistors: f64,
    /// Area, m².
    pub area: f64,
    /// Dynamic energy per active cycle, J.
    pub energy_per_cycle: f64,
    /// Leakage, W.
    pub leakage: StaticPower,
}

impl MiscLogic {
    /// Transistor budget for a configuration:
    /// a base pipeline-control allocation plus per-issue-slot and
    /// per-thread adders, with an extra allocation for out-of-order
    /// sequencing.
    #[must_use]
    pub fn transistor_budget(cfg: &CoreConfig) -> f64 {
        if let Some(n) = cfg.misc_logic_transistors {
            return n;
        }
        let base = 3.0e6;
        let per_issue = 0.8e6 * f64::from(cfg.issue_width);
        let per_thread = 0.5e6 * f64::from(cfg.threads.saturating_sub(1));
        let ooo_extra = if cfg.is_ooo() { 4.0e6 } else { 0.0 };
        base + per_issue + per_thread + ooo_extra
    }

    /// Builds the model.
    #[must_use]
    pub fn build(tech: &TechParams, cfg: &CoreConfig) -> MiscLogic {
        let n = Self::transistor_budget(cfg);
        let scale = tech.node.scale_from_90nm();
        let f = tech.node.feature_m();

        let density = CONTROL_DENSITY_90NM_PER_M2 / (scale * scale);
        let area = n / density;

        let w_avg = AVG_WIDTH_F * f;
        let c_per_tx = (tech.device.c_g + tech.device.c_d) * w_avg;
        let energy_per_cycle = CONTROL_ACTIVITY * n * c_per_tx * tech.device.vdd * tech.device.vdd;

        let total_width = n * w_avg / 2.0;
        let leakage = StaticPower {
            subthreshold: tech.subthreshold_leakage(total_width / 2.0, total_width / 2.0),
            gate: tech.gate_leakage(total_width / 2.0, total_width / 2.0),
        };
        MiscLogic {
            transistors: n,
            area,
            energy_per_cycle,
            leakage,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N90, DeviceType::Hp, 360.0)
    }

    #[test]
    fn ooo_budget_exceeds_inorder() {
        let ooo = MiscLogic::transistor_budget(&CoreConfig::generic_ooo());
        let io = MiscLogic::transistor_budget(&CoreConfig::generic_inorder());
        assert!(ooo > io);
    }

    #[test]
    fn threads_add_control() {
        let one = MiscLogic::transistor_budget(&CoreConfig::generic_inorder());
        let mut cfg = CoreConfig::generic_inorder();
        cfg.threads = 8;
        let eight = MiscLogic::transistor_budget(&cfg);
        assert!(eight > one + 3.0e6);
    }

    #[test]
    fn area_is_square_millimeters_scale() {
        let m = MiscLogic::build(&tech(), &CoreConfig::generic_ooo());
        let mm2 = m.area * 1e6;
        assert!(mm2 > 2.0 && mm2 < 40.0, "{mm2} mm²");
    }

    #[test]
    fn energy_per_cycle_is_sub_nanojoule() {
        let m = MiscLogic::build(&tech(), &CoreConfig::generic_inorder());
        assert!(m.energy_per_cycle > 1e-12 && m.energy_per_cycle < 5e-9);
    }
}
