//! Load-store unit: load queue, store queue (both CAMs for address
//! disambiguation) and the L1 data cache.

use crate::config::CoreConfig;
use mcpat_array::cache::CacheArray;
use mcpat_array::{ArrayError, ArraySpec, OptTarget, Ports, SolvedArray};
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// The assembled load-store unit.
#[derive(Debug, Clone)]
pub struct Lsu {
    /// L1 data cache.
    pub dcache: CacheArray,
    /// Load queue (CAM on addresses for store-to-load forwarding checks).
    pub load_queue: SolvedArray,
    /// Store queue (CAM searched by every load).
    pub store_queue: SolvedArray,
}

impl Lsu {
    /// Builds the LSU.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`].
    pub fn build(tech: &TechParams, cfg: &CoreConfig) -> Result<Lsu, ArrayError> {
        let mut dcache_spec = cfg.dcache.clone();
        if cfg.enforce_timing {
            dcache_spec = dcache_spec.with_max_cycle_time(cfg.cycle_time());
        }
        let dcache = dcache_spec.solve(tech, OptTarget::EnergyDelay)?;

        // Queue entries hold address + data + status; they match on the
        // block-aligned physical address.
        let addr_match_bits = cfg.paddr_bits.saturating_sub(3).max(8);
        let entry_bits = cfg
            .paddr_bits
            .saturating_add(cfg.word_bits)
            .saturating_add(8);
        let q_ports = Ports {
            rw: 0,
            read: 1,
            write: 1,
            search: 1,
        };
        let load_queue = ArraySpec::cam(
            u64::from(cfg.load_queue_size.max(1)),
            entry_bits,
            addr_match_bits,
        )
        .with_ports(q_ports)
        .named("load-queue")
        .solve(tech, OptTarget::EnergyDelay)?;
        let store_queue = ArraySpec::cam(
            u64::from(cfg.store_queue_size.max(1)),
            entry_bits,
            addr_match_bits,
        )
        .with_ports(q_ports)
        .named("store-queue")
        .solve(tech, OptTarget::EnergyDelay)?;

        Ok(Lsu {
            dcache,
            load_queue,
            store_queue,
        })
    }

    /// Energy of executing one load: store-queue search + LQ insert +
    /// D-cache read hit, J.
    #[must_use]
    pub fn load_energy(&self) -> f64 {
        self.store_queue.search_energy + self.load_queue.write_energy + self.dcache.read_hit_energy
    }

    /// Energy of executing one store: load-queue search (ordering check)
    /// + SQ insert + eventual D-cache write, J.
    #[must_use]
    pub fn store_energy(&self) -> f64 {
        self.load_queue.search_energy + self.store_queue.write_energy + self.dcache.write_hit_energy
    }

    /// Total LSU area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.dcache.area + self.load_queue.area + self.store_queue.area
    }

    /// Total LSU leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        self.dcache.leakage + self.load_queue.leakage + self.store_queue.leakage
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N90, DeviceType::Hp, 360.0)
    }

    #[test]
    fn lsu_builds_for_presets() {
        for cfg in [CoreConfig::generic_ooo(), CoreConfig::niagara_like()] {
            let lsu = Lsu::build(&tech(), &cfg).unwrap();
            assert!(lsu.load_energy() > 0.0);
            assert!(lsu.store_energy() > 0.0);
            assert!(lsu.area() > 0.0);
        }
    }

    #[test]
    fn dcache_dominates_lsu_area() {
        let lsu = Lsu::build(&tech(), &CoreConfig::generic_ooo()).unwrap();
        assert!(lsu.dcache.area > 0.5 * lsu.area());
    }

    #[test]
    fn bigger_queues_leak_more() {
        let t = tech();
        let mut small = CoreConfig::generic_ooo();
        small.load_queue_size = 8;
        small.store_queue_size = 8;
        let mut big = CoreConfig::generic_ooo();
        big.load_queue_size = 64;
        big.store_queue_size = 64;
        let ls = Lsu::build(&t, &small).unwrap();
        let lb = Lsu::build(&t, &big).unwrap();
        assert!(
            lb.load_queue.leakage.total() + lb.store_queue.leakage.total()
                > ls.load_queue.leakage.total() + ls.store_queue.leakage.total()
        );
    }
}
