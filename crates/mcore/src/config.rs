//! Core architecture configuration and validation-target presets.

use mcpat_array::cache::CacheSpec;
use mcpat_diag::Diagnostics;

/// Execution paradigm of the core.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum MachineType {
    /// In-order pipeline (no rename, no issue window, no ROB).
    InOrder,
    /// Out-of-order pipeline with register renaming.
    #[default]
    OutOfOrder,
}

/// Branch predictor configuration (a tournament predictor: global +
/// local histories with a chooser, plus a return-address stack).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PredictorConfig {
    /// Global predictor entries (2-bit counters).
    pub global_entries: u32,
    /// Local predictor level-1 history entries.
    pub local_l1_entries: u32,
    /// Local predictor level-2 counter entries.
    pub local_l2_entries: u32,
    /// Chooser entries.
    pub chooser_entries: u32,
    /// Return-address stack depth.
    pub ras_entries: u32,
}

impl Default for PredictorConfig {
    fn default() -> PredictorConfig {
        PredictorConfig {
            global_entries: 4096,
            local_l1_entries: 1024,
            local_l2_entries: 1024,
            chooser_entries: 4096,
            ras_entries: 32,
        }
    }
}

impl PredictorConfig {
    /// Reports suspicious predictor geometries into `diags`, with field
    /// paths rooted under `path`.
    ///
    /// Zero entries disable a table (Niagara-style), so only nonzero,
    /// non-power-of-two sizes are flagged: history-indexed tables are
    /// power-of-two by construction, and anything else silently wastes
    /// index bits.
    pub fn validate_into(&self, path: &str, diags: &mut mcpat_diag::Diagnostics) {
        for (field, v) in [
            ("global_entries", self.global_entries),
            ("local_l1_entries", self.local_l1_entries),
            ("local_l2_entries", self.local_l2_entries),
            ("chooser_entries", self.chooser_entries),
            ("ras_entries", self.ras_entries),
        ] {
            if v != 0 && !v.is_power_of_two() {
                diags.warning(
                    mcpat_diag::join_path(path, field),
                    format!("{v} entries is not a power of two; index bits are wasted"),
                );
            }
        }
    }
}

/// Full architectural description of one core.
///
/// The defaults describe a generic 4-wide out-of-order core; use the
/// presets ([`CoreConfig::niagara_like`] etc.) to reproduce the paper's
/// validation targets, and the builder-style `with_*` methods for
/// design-space exploration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoreConfig {
    /// Human-readable name.
    pub name: String,
    /// In-order or out-of-order.
    pub machine_type: MachineType,
    /// Target clock, Hz.
    pub clock_hz: f64,
    /// Hardware thread contexts.
    pub threads: u32,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions decoded per cycle.
    pub decode_width: u32,
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Peak FP issue per cycle.
    pub fp_issue_width: u32,
    /// Integer pipeline depth (stages).
    pub pipeline_depth: u32,
    /// Architectural integer registers (per thread).
    pub arch_int_regs: u32,
    /// Architectural FP registers (per thread).
    pub arch_fp_regs: u32,
    /// Physical integer registers (OoO only).
    pub phys_int_regs: u32,
    /// Physical FP registers (OoO only).
    pub phys_fp_regs: u32,
    /// Instruction buffer entries per thread.
    pub instruction_buffer_size: u32,
    /// Integer issue-queue / instruction-window entries.
    pub instruction_window_size: u32,
    /// FP issue-queue entries.
    pub fp_instruction_window_size: u32,
    /// Reorder buffer entries (OoO only).
    pub rob_size: u32,
    /// Load queue entries.
    pub load_queue_size: u32,
    /// Store queue entries.
    pub store_queue_size: u32,
    /// Integer ALUs.
    pub num_alus: u32,
    /// FP units.
    pub num_fpus: u32,
    /// Complex units (integer multiply/divide).
    pub num_muls: u32,
    /// Machine word width, bits.
    pub word_bits: u32,
    /// Virtual address width, bits.
    pub vaddr_bits: u32,
    /// Physical address width, bits.
    pub paddr_bits: u32,
    /// Instruction length, bits.
    pub instruction_bits: u32,
    /// Micro-opcode width after decode, bits.
    pub opcode_bits: u32,
    /// Branch target buffer entries.
    pub btb_entries: u32,
    /// Branch predictor tables.
    pub predictor: PredictorConfig,
    /// ITLB entries.
    pub itlb_entries: u32,
    /// DTLB entries.
    pub dtlb_entries: u32,
    /// L1 instruction cache.
    pub icache: CacheSpec,
    /// L1 data cache.
    pub dcache: CacheSpec,
    /// True if idle units are clock-gated (reduces their clock dynamic
    /// power to 10%).
    // lint: allow(L004, pure modeling switch — both boolean values are valid)
    pub clock_gating: bool,
    /// Explicit random-control-logic transistor budget; `None` derives it
    /// from the machine width/threads (see `MiscLogic`). Presets with
    /// unusually heavy control (x86 front-ends) set this.
    pub misc_logic_transistors: Option<f64>,
    /// When true, the latency-critical arrays (L1 caches, integer
    /// register file, issue window) are solved under this core's
    /// cycle-time constraint — McPAT's EIO behavior. If no partitioning
    /// meets the clock, the solver degrades along its relaxation ladder
    /// and records the shortfall (see
    /// [`CoreModel::relaxation_warnings`](crate::core::CoreModel::relaxation_warnings)).
    #[serde(default)]
    // lint: allow(L004, pure modeling switch — both boolean values are valid)
    pub enforce_timing: bool,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::generic_ooo()
    }
}

impl CoreConfig {
    /// A generic 4-wide out-of-order core (Alpha 21264 class).
    #[must_use]
    pub fn generic_ooo() -> CoreConfig {
        CoreConfig {
            name: "generic-ooo".into(),
            machine_type: MachineType::OutOfOrder,
            clock_hz: 2.0e9,
            threads: 1,
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            fp_issue_width: 2,
            pipeline_depth: 12,
            arch_int_regs: 32,
            arch_fp_regs: 32,
            phys_int_regs: 128,
            phys_fp_regs: 128,
            instruction_buffer_size: 32,
            instruction_window_size: 32,
            fp_instruction_window_size: 16,
            rob_size: 96,
            load_queue_size: 32,
            store_queue_size: 32,
            num_alus: 4,
            num_fpus: 2,
            num_muls: 1,
            word_bits: 64,
            vaddr_bits: 64,
            paddr_bits: 44,
            instruction_bits: 32,
            opcode_bits: 9,
            btb_entries: 2048,
            predictor: PredictorConfig::default(),
            itlb_entries: 64,
            dtlb_entries: 64,
            icache: CacheSpec::new("icache", 64 * 1024, 64, 2),
            dcache: CacheSpec::new("dcache", 64 * 1024, 64, 2),
            clock_gating: true,
            misc_logic_transistors: None,
            enforce_timing: false,
        }
    }

    /// A generic dual-issue in-order core (Niagara2 class, single thread
    /// group).
    #[must_use]
    pub fn generic_inorder() -> CoreConfig {
        CoreConfig {
            name: "generic-inorder".into(),
            machine_type: MachineType::InOrder,
            clock_hz: 1.4e9,
            threads: 1,
            fetch_width: 2,
            decode_width: 2,
            issue_width: 2,
            commit_width: 2,
            fp_issue_width: 1,
            pipeline_depth: 8,
            arch_int_regs: 32,
            arch_fp_regs: 32,
            phys_int_regs: 32,
            phys_fp_regs: 32,
            instruction_buffer_size: 16,
            instruction_window_size: 0,
            fp_instruction_window_size: 0,
            rob_size: 0,
            load_queue_size: 8,
            store_queue_size: 8,
            num_alus: 2,
            num_fpus: 1,
            num_muls: 1,
            word_bits: 64,
            vaddr_bits: 64,
            paddr_bits: 40,
            instruction_bits: 32,
            opcode_bits: 8,
            btb_entries: 512,
            predictor: PredictorConfig {
                global_entries: 1024,
                local_l1_entries: 256,
                local_l2_entries: 256,
                chooser_entries: 1024,
                ras_entries: 8,
            },
            itlb_entries: 64,
            dtlb_entries: 64,
            icache: CacheSpec::new("icache", 16 * 1024, 32, 4),
            dcache: CacheSpec::new("dcache", 8 * 1024, 16, 4),
            clock_gating: true,
            misc_logic_transistors: None,
            enforce_timing: false,
        }
    }

    /// Sun Niagara (UltraSPARC T1) core: in-order, 4 threads, 1.2 GHz,
    /// 16 KB I$ / 8 KB D$, shared FPU (modeled fractionally per core).
    #[must_use]
    pub fn niagara_like() -> CoreConfig {
        let mut c = CoreConfig::generic_inorder();
        c.name = "niagara".into();
        c.clock_hz = 1.2e9;
        c.threads = 4;
        c.arch_int_regs = 160; // 8 SPARC register windows
        c.fetch_width = 1;
        c.decode_width = 1;
        c.issue_width = 1;
        c.commit_width = 1;
        c.pipeline_depth = 6;
        c.num_alus = 1;
        c.num_fpus = 0; // one FPU shared by 8 cores lives at chip level
        c.num_muls = 1;
        c.btb_entries = 0; // Niagara has no BTB
        c.predictor = PredictorConfig {
            global_entries: 0,
            local_l1_entries: 0,
            local_l2_entries: 0,
            chooser_entries: 0,
            ras_entries: 4,
        };
        c.icache = CacheSpec::new("icache", 16 * 1024, 32, 4);
        c.dcache = CacheSpec::new("dcache", 8 * 1024, 16, 4);
        // Thread select/pick, store buffers per thread, test logic.
        c.misc_logic_transistors = Some(7.0e6);
        c
    }

    /// Sun Niagara2 (UltraSPARC T2) core: in-order, 8 threads in two
    /// groups, 1.4 GHz, per-core FPU.
    #[must_use]
    pub fn niagara2_like() -> CoreConfig {
        let mut c = CoreConfig::generic_inorder();
        c.name = "niagara2".into();
        c.clock_hz = 1.4e9;
        c.threads = 8;
        c.arch_int_regs = 160; // 8 SPARC register windows
        c.fetch_width = 2;
        c.decode_width = 2;
        c.issue_width = 2;
        c.commit_width = 2;
        c.pipeline_depth = 8;
        c.num_alus = 2;
        c.num_fpus = 1;
        c.num_muls = 1;
        c.icache = CacheSpec::new("icache", 16 * 1024, 32, 8);
        c.dcache = CacheSpec::new("dcache", 8 * 1024, 16, 4);
        // Eight thread contexts: pick logic, per-thread store buffers,
        // cryptographic unit, test/debug.
        c.misc_logic_transistors = Some(13.0e6);
        c
    }

    /// Alpha 21364 core (EV68-class OoO core): 4-wide, 1.2 GHz,
    /// 64 KB I$/D$, 80+72 physical registers.
    #[must_use]
    pub fn alpha21364_like() -> CoreConfig {
        let mut c = CoreConfig::generic_ooo();
        c.name = "alpha21364".into();
        c.clock_hz = 1.2e9;
        c.fetch_width = 4;
        c.decode_width = 4;
        c.issue_width = 6; // 4 int + 2 fp issue slots
        c.commit_width = 4;
        c.pipeline_depth = 7;
        c.phys_int_regs = 80;
        c.phys_fp_regs = 72;
        c.instruction_window_size = 20;
        c.fp_instruction_window_size = 15;
        c.rob_size = 80;
        c.load_queue_size = 32;
        c.store_queue_size = 32;
        c.num_alus = 4;
        c.num_fpus = 2;
        c.num_muls = 1;
        c.vaddr_bits = 48;
        c.paddr_bits = 44;
        c.btb_entries = 0; // line predictor folded into I-cache
        c.predictor = PredictorConfig {
            global_entries: 4096,
            local_l1_entries: 1024,
            local_l2_entries: 1024,
            chooser_entries: 4096,
            ras_entries: 32,
        };
        c.itlb_entries = 128;
        c.dtlb_entries = 128;
        c.icache = CacheSpec::new("icache", 64 * 1024, 64, 2);
        c.dcache = CacheSpec::new("dcache", 64 * 1024, 64, 2);
        c.clock_gating = false; // 2001-era design, conditional clocking only
                                // Full-custom Alpha control (issue/retire sequencing, replay
                                // traps, the victim-buffer machinery).
        c.misc_logic_transistors = Some(10.0e6);
        c
    }

    /// Intel Xeon Tulsa core (NetBurst-class): ~3.4 GHz, deep pipeline,
    /// 2 threads, modeled as a wide OoO core with a 16 KB-equivalent L1D.
    #[must_use]
    pub fn tulsa_like() -> CoreConfig {
        let mut c = CoreConfig::generic_ooo();
        c.name = "xeon-tulsa".into();
        c.clock_hz = 3.4e9;
        c.threads = 2;
        c.fetch_width = 3;
        c.decode_width = 3;
        c.issue_width = 6;
        c.commit_width = 3;
        c.pipeline_depth = 31;
        c.phys_int_regs = 128;
        c.phys_fp_regs = 128;
        c.instruction_window_size = 64;
        c.fp_instruction_window_size = 32;
        c.rob_size = 126;
        c.load_queue_size = 48;
        c.store_queue_size = 32;
        c.num_alus = 3;
        c.num_fpus = 2;
        c.num_muls = 1;
        c.paddr_bits = 40;
        c.btb_entries = 4096;
        c.itlb_entries = 128;
        c.dtlb_entries = 64;
        c.icache = CacheSpec::new("trace-cache", 32 * 1024, 64, 8);
        c.dcache = CacheSpec::new("dcache", 16 * 1024, 64, 8);
        c.clock_gating = true;
        // NetBurst carries an x86 decode front-end, microcode ROM, trace
        // cache fill machinery and double-pumped ALU control.
        c.misc_logic_transistors = Some(45.0e6);
        c
    }

    /// Sets the clock rate, Hz.
    #[must_use]
    pub fn with_clock_hz(mut self, hz: f64) -> CoreConfig {
        self.clock_hz = hz;
        self
    }

    /// Scales the cycle-time constraint implied by the clock, s.
    #[must_use]
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Physical register tag width, bits.
    #[must_use]
    pub fn phys_tag_bits(&self) -> u32 {
        (f64::from(self.phys_int_regs.max(self.phys_fp_regs).max(2)))
            .log2()
            .ceil() as u32
    }

    /// True for out-of-order machines.
    #[must_use]
    pub fn is_ooo(&self) -> bool {
        self.machine_type == MachineType::OutOfOrder
    }

    /// Peak integer operations per cycle (issue bound).
    #[must_use]
    pub fn peak_ops_per_cycle(&self) -> f64 {
        f64::from(self.issue_width)
    }

    /// Full sanity validation of the configuration.
    ///
    /// Collects **every** violated invariant (and softer warnings) into
    /// a [`Diagnostics`] pass instead of stopping at the first. Paths are
    /// relative to the core (`clock_hz`, `icache.capacity`, ...); callers
    /// embedding the core in a larger config re-root them with
    /// [`Diagnostics::merge_under`].
    #[must_use]
    pub fn validate(&self) -> Diagnostics {
        let mut d = Diagnostics::new();
        if self.name.is_empty() {
            d.warning("name", "unnamed core configuration");
        }
        d.require_positive("clock_hz", "core clock", self.clock_hz);
        for (field, v) in [
            ("fetch_width", self.fetch_width),
            ("decode_width", self.decode_width),
            ("issue_width", self.issue_width),
            ("commit_width", self.commit_width),
        ] {
            if v == 0 {
                d.error(field, "pipeline width must be positive");
            }
        }
        if self.pipeline_depth == 0 {
            d.error("pipeline_depth", "pipeline needs at least one stage");
        }
        if self.fp_issue_width > self.issue_width {
            d.warning(
                "fp_issue_width",
                format!(
                    "FP issue width {} exceeds the total issue width {}",
                    self.fp_issue_width, self.issue_width
                ),
            );
        }
        if self.instruction_buffer_size == 0 {
            d.error(
                "instruction_buffer_size",
                "front end needs at least one instruction-buffer entry",
            );
        }
        if self.machine_type == MachineType::InOrder && self.phys_int_regs > self.arch_int_regs {
            d.warning(
                "phys_int_regs",
                "in-order cores do not rename; physical registers beyond the architectural set are ignored",
            );
        }
        if self.is_ooo() {
            if self.rob_size == 0 {
                d.error("rob_size", "out-of-order cores need a reorder buffer");
            }
            if self.instruction_window_size == 0 {
                d.error(
                    "instruction_window_size",
                    "out-of-order cores need an instruction window",
                );
            }
            if self.fp_issue_width > 0 && self.fp_instruction_window_size == 0 {
                d.error(
                    "fp_instruction_window_size",
                    "out-of-order cores issuing FP need an FP instruction window",
                );
            }
            if self.phys_int_regs < self.arch_int_regs {
                d.error(
                    "phys_int_regs",
                    format!(
                        "{} physical integer registers cannot cover {} architectural",
                        self.phys_int_regs, self.arch_int_regs
                    ),
                );
            }
            if self.phys_fp_regs < self.arch_fp_regs {
                d.error(
                    "phys_fp_regs",
                    format!(
                        "{} physical FP registers cannot cover {} architectural",
                        self.phys_fp_regs, self.arch_fp_regs
                    ),
                );
            }
        }
        if self.threads == 0 {
            d.error("threads", "at least one thread context");
        }
        if self.load_queue_size == 0 {
            d.error("load_queue_size", "need at least one load-queue entry");
        }
        if self.store_queue_size == 0 {
            d.error("store_queue_size", "need at least one store-queue entry");
        }
        if self.num_alus == 0 {
            d.error("num_alus", "integer pipeline needs at least one ALU");
        }
        if self.num_fpus > self.issue_width {
            d.warning(
                "num_fpus",
                format!(
                    "{} FP units exceed what issue width {} can feed",
                    self.num_fpus, self.issue_width
                ),
            );
        }
        if self.num_muls == 0 {
            d.warning(
                "num_muls",
                "no complex unit; multiply/divide power is unmodeled",
            );
        }
        if self.word_bits == 0 || self.word_bits > 128 {
            d.error(
                "word_bits",
                format!("word width {} must be in 1..=128", self.word_bits),
            );
        }
        if self.vaddr_bits == 0 || self.vaddr_bits > 64 {
            d.error(
                "vaddr_bits",
                format!(
                    "virtual address width {} must be in 1..=64",
                    self.vaddr_bits
                ),
            );
        }
        if self.paddr_bits == 0 || self.paddr_bits > 64 {
            d.error(
                "paddr_bits",
                format!(
                    "physical address width {} must be in 1..=64",
                    self.paddr_bits
                ),
            );
        }
        if self.instruction_bits == 0 || self.instruction_bits > 128 {
            d.error(
                "instruction_bits",
                format!(
                    "instruction width {} must be in 1..=128",
                    self.instruction_bits
                ),
            );
        }
        if self.opcode_bits == 0 {
            d.error("opcode_bits", "decoded opcode must be at least one bit");
        } else if self.opcode_bits > self.instruction_bits {
            d.warning(
                "opcode_bits",
                format!(
                    "opcode width {} exceeds the instruction width {}",
                    self.opcode_bits, self.instruction_bits
                ),
            );
        }
        if self.btb_entries != 0 && !self.btb_entries.is_power_of_two() {
            d.warning(
                "btb_entries",
                format!(
                    "{} BTB entries is not a power of two; index bits are wasted",
                    self.btb_entries
                ),
            );
        }
        if self.itlb_entries == 0 {
            d.error("itlb_entries", "ITLB needs at least one entry");
        }
        if self.dtlb_entries == 0 {
            d.error("dtlb_entries", "DTLB needs at least one entry");
        }
        self.predictor.validate_into("predictor", &mut d);
        if let Some(t) = self.misc_logic_transistors {
            d.require_nonnegative("misc_logic_transistors", "transistor budget", t);
        }
        if u64::from(self.issue_width) > u64::from(self.fetch_width.max(1)) * 2 {
            d.warning(
                "issue_width",
                format!(
                    "issue width {} is more than twice the fetch width {}; the front end cannot sustain it",
                    self.issue_width, self.fetch_width
                ),
            );
        }
        if self.clock_hz.is_finite() && self.clock_hz > 1.0e10 {
            d.warning(
                "clock_hz",
                format!(
                    "{:.1} GHz is outside the model's calibrated range",
                    self.clock_hz / 1e9
                ),
            );
        }
        self.icache.validate_into("icache", &mut d);
        self.dcache.validate_into("dcache", &mut d);
        d
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_array::cache::AccessMode as _AM;

    #[test]
    fn presets_validate() {
        for cfg in [
            CoreConfig::generic_ooo(),
            CoreConfig::generic_inorder(),
            CoreConfig::niagara_like(),
            CoreConfig::niagara2_like(),
            CoreConfig::alpha21364_like(),
            CoreConfig::tulsa_like(),
        ] {
            let d = cfg.validate();
            assert!(!d.has_errors(), "{}: {d}", cfg.name);
        }
    }

    #[test]
    fn ooo_without_rob_is_invalid() {
        let mut c = CoreConfig::generic_ooo();
        c.rob_size = 0;
        assert!(c.validate().has_errors());
    }

    #[test]
    fn validation_collects_every_finding() {
        let mut c = CoreConfig::generic_ooo();
        c.rob_size = 0;
        c.threads = 0;
        c.clock_hz = f64::NAN;
        c.icache.block_bytes = 0;
        let d = c.validate();
        assert!(d.error_count() >= 4, "expected all findings, got: {d}");
        let paths: Vec<&str> = d.iter().map(|f| f.path.as_str()).collect();
        assert!(paths.contains(&"rob_size"));
        assert!(paths.contains(&"threads"));
        assert!(paths.contains(&"clock_hz"));
        assert!(paths.contains(&"icache.block_bytes"));
    }

    #[test]
    fn phys_tag_bits_covers_register_space() {
        let c = CoreConfig::alpha21364_like();
        assert_eq!(c.phys_tag_bits(), 7); // 80 regs -> 7 bits
    }

    #[test]
    fn niagara_has_no_branch_predictor_tables() {
        let c = CoreConfig::niagara_like();
        assert_eq!(c.predictor.global_entries, 0);
        assert_eq!(c.btb_entries, 0);
    }

    #[test]
    fn default_is_generic_ooo() {
        assert_eq!(CoreConfig::default().name, "generic-ooo");
        let _ = _AM::Parallel; // keep the import exercised
    }
}
