//! # mcpat-mcore — CPU core models for mcpat-rs
//!
//! McPAT decomposes a core into the units below; each is built from the
//! `mcpat-array` and `mcpat-circuit` substrates and reports area, timing,
//! per-event energies, and leakage. The [`core::CoreModel`] assembles
//! them, computes peak (TDP-style) power, and evaluates runtime power
//! from performance-simulator statistics ([`stats::CoreStats`]).
//!
//! * [`ifu`] — instruction fetch: I-cache, branch predictor, BTB, RAS,
//!   instruction buffer, decoders;
//! * [`rename`] — renaming unit: RAT, free list, dependency check;
//! * [`window`] — out-of-order machinery: issue queue (CAM wakeup), ROB;
//! * [`regfile`] — integer/FP register files;
//! * [`exu`] — ALUs, FPUs, multipliers, result bypass network;
//! * [`lsu`] — load/store queues and the D-cache;
//! * [`mmu`] — instruction and data TLBs;
//! * [`pipeline`] — pipeline latches and core-private clock load;
//! * [`core`] — the assembled core;
//! * [`config`] — architecture knobs plus presets for the four
//!   validation targets (Niagara, Niagara2, Alpha 21364, Xeon Tulsa).
//!
//! ```
//! use mcpat_mcore::config::CoreConfig;
//! use mcpat_mcore::core::CoreModel;
//! use mcpat_tech::{TechNode, DeviceType, TechParams};
//!
//! let tech = TechParams::new(TechNode::N90, DeviceType::Hp, 360.0);
//! let cfg = CoreConfig::niagara_like();
//! let core = CoreModel::build(&tech, &cfg)?;
//! assert!(core.area() > 0.0);
//! assert!(core.leakage().total() > 0.0);
//! # Ok::<(), mcpat_mcore::core::CoreBuildError>(())
//! ```

pub mod config;
pub mod core;
pub mod exu;
pub mod ifu;
pub mod lsu;
pub mod misc;
pub mod mmu;
pub mod pipeline;
pub mod regfile;
pub mod rename;
pub mod stats;
pub mod window;

pub use config::{CoreConfig, MachineType};
pub use core::{CoreModel, CorePower};
pub use stats::CoreStats;
