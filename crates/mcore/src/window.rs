//! Out-of-order machinery: issue queues (instruction windows) with CAM
//! wakeup, and the reorder buffer.

use crate::config::CoreConfig;
use mcpat_array::{ArrayError, ArraySpec, OptTarget, Ports, SolvedArray};
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// Issue queues + ROB (absent on in-order machines).
#[derive(Debug, Clone)]
pub struct WindowUnit {
    /// Integer issue queue: CAM for tag wakeup + payload RAM.
    pub int_window: SolvedArray,
    /// FP issue queue.
    pub fp_window: Option<SolvedArray>,
    /// Reorder buffer.
    pub rob: SolvedArray,
}

impl WindowUnit {
    /// Builds the window unit if the machine is out-of-order.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`] from any internal array.
    pub fn build(tech: &TechParams, cfg: &CoreConfig) -> Result<Option<WindowUnit>, ArrayError> {
        if !cfg.is_ooo() {
            return Ok(None);
        }
        let tag_bits = cfg.phys_tag_bits();
        // Window entry payload: opcode + two source tags + dest tag +
        // immediate/control (~2× word fragments).
        let payload_bits = cfg
            .opcode_bits
            .saturating_add(3 * tag_bits)
            .saturating_add(16);

        // Wakeup broadcasts one tag per issued instruction; the CAM has
        // one search port per issue slot and RAM ports for insert/issue.
        let window_ports = Ports {
            rw: 0,
            read: cfg.issue_width,
            write: cfg.decode_width,
            search: cfg.issue_width,
        };
        let mut int_window_spec = ArraySpec::cam(
            u64::from(cfg.instruction_window_size),
            payload_bits,
            2 * tag_bits,
        )
        .with_ports(window_ports)
        .named("int-issue-queue");
        if cfg.enforce_timing {
            int_window_spec = int_window_spec.with_max_cycle_time(cfg.cycle_time());
        }
        let int_window = int_window_spec.solve(tech, OptTarget::Delay)?;

        let fp_window = if cfg.fp_instruction_window_size > 0 {
            Some(
                ArraySpec::cam(
                    u64::from(cfg.fp_instruction_window_size),
                    payload_bits,
                    2 * tag_bits,
                )
                .with_ports(Ports {
                    rw: 0,
                    read: cfg.fp_issue_width.max(1),
                    write: cfg.decode_width,
                    search: cfg.fp_issue_width.max(1),
                })
                .named("fp-issue-queue")
                .solve(tech, OptTarget::Delay)?,
            )
        } else {
            None
        };

        // ROB entry: PC + dest arch/phys tags + exception/state bits.
        let rob_bits = cfg
            .vaddr_bits
            .saturating_add(2 * tag_bits)
            .saturating_add(8);
        let rob = ArraySpec::table(u64::from(cfg.rob_size), rob_bits)
            .with_ports(Ports::reg_file(cfg.commit_width, cfg.decode_width))
            .named("rob")
            .solve(tech, OptTarget::EnergyDelay)?;

        Ok(Some(WindowUnit {
            int_window,
            fp_window,
            rob,
        }))
    }

    /// Energy of one window event (insert + wakeup search + issue read),
    /// amortized per issued instruction, J.
    #[must_use]
    pub fn window_energy_per_access(&self, is_fp: bool) -> f64 {
        let w = if is_fp {
            self.fp_window.as_ref().unwrap_or(&self.int_window)
        } else {
            &self.int_window
        };
        (w.write_energy + w.search_energy + w.read_energy) / 3.0
    }

    /// Energy of one ROB access (dispatch write or commit read), J.
    #[must_use]
    pub fn rob_energy_per_access(&self) -> f64 {
        0.5 * (self.rob.read_energy + self.rob.write_energy)
    }

    /// Total area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.int_window.area + self.fp_window.as_ref().map_or(0.0, |w| w.area) + self.rob.area
    }

    /// Total leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        let mut l = self.int_window.leakage + self.rob.leakage;
        if let Some(w) = &self.fp_window {
            l += w.leakage;
        }
        l
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N90, DeviceType::Hp, 360.0)
    }

    #[test]
    fn inorder_has_no_window() {
        assert!(WindowUnit::build(&tech(), &CoreConfig::generic_inorder())
            .unwrap()
            .is_none());
    }

    #[test]
    fn ooo_window_builds_with_search_energy() {
        let w = WindowUnit::build(&tech(), &CoreConfig::generic_ooo())
            .unwrap()
            .unwrap();
        assert!(w.int_window.search_energy > 0.0, "wakeup is a CAM search");
        assert!(w.window_energy_per_access(false) > 0.0);
        assert!(w.rob_energy_per_access() > 0.0);
    }

    #[test]
    fn bigger_windows_cost_more() {
        let t = tech();
        let small_cfg = CoreConfig::alpha21364_like(); // 20-entry window
        let big_cfg = CoreConfig::tulsa_like(); // 64-entry window
        let small = WindowUnit::build(&t, &small_cfg).unwrap().unwrap();
        let big = WindowUnit::build(&t, &big_cfg).unwrap().unwrap();
        assert!(big.int_window.search_energy > small.int_window.search_energy);
    }
}
