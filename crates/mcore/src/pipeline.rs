//! Pipeline registers and the core-local clock load.
//!
//! McPAT charges every pipeline stage a rank of flip-flops wide enough
//! for the in-flight instruction state; together with the latch clock
//! pins this forms the bulk of the core's clock-network load.

use crate::config::CoreConfig;
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// Pipeline latch model for one core.
#[derive(Debug, Clone, Copy)]
pub struct PipelineRegs {
    /// Total latch bits in the pipeline.
    pub total_bits: f64,
    /// Area, m².
    pub area: f64,
    /// Energy per cycle from data toggles (≈30% activity), J.
    pub data_energy_per_cycle: f64,
    /// Energy per cycle from clocking every latch, J.
    pub clock_energy_per_cycle: f64,
    /// Leakage, W.
    pub leakage: StaticPower,
}

/// Fraction of latch bits that toggle in a typical cycle.
const LATCH_ACTIVITY: f64 = 0.3;

/// Overhead factor for clock wiring/buffers inside the core on top of
/// raw latch clock-pin load.
const LOCAL_CLOCK_OVERHEAD: f64 = 1.3;

impl PipelineRegs {
    /// Builds the pipeline-register model.
    #[must_use]
    pub fn build(tech: &TechParams, cfg: &CoreConfig) -> PipelineRegs {
        // Per-lane per-stage state: instruction word + two operands +
        // control (~1.5 words total beyond the instruction).
        let bits_per_lane_stage =
            f64::from(cfg.instruction_bits) + 2.5 * f64::from(cfg.word_bits) + 16.0;
        let lanes = f64::from(cfg.issue_width);
        let stages = f64::from(cfg.pipeline_depth);
        let threads_factor = 1.0 + 0.1 * f64::from(cfg.threads.saturating_sub(1));
        let total_bits = bits_per_lane_stage * lanes * stages * threads_factor;

        let dff = tech.dff();
        let vdd = tech.device.vdd;
        PipelineRegs {
            total_bits,
            area: dff.area_per_bit * total_bits,
            data_energy_per_cycle: LATCH_ACTIVITY * total_bits * dff.write_energy(vdd),
            clock_energy_per_cycle: LOCAL_CLOCK_OVERHEAD * total_bits * dff.clock_energy(vdd),
            leakage: StaticPower {
                subthreshold: total_bits * dff.leakage_power(&tech.device, tech.temperature) * 0.8,
                gate: total_bits * dff.leakage_power(&tech.device, tech.temperature) * 0.2,
            },
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N90, DeviceType::Hp, 360.0)
    }

    #[test]
    fn deeper_pipelines_have_more_latch_bits() {
        let t = tech();
        let shallow = PipelineRegs::build(&t, &CoreConfig::alpha21364_like()); // 7 stages
        let deep = PipelineRegs::build(&t, &CoreConfig::tulsa_like()); // 31 stages
        assert!(deep.total_bits > 2.0 * shallow.total_bits);
        assert!(deep.clock_energy_per_cycle > shallow.clock_energy_per_cycle);
    }

    #[test]
    fn clock_energy_is_comparable_to_data_energy() {
        let p = PipelineRegs::build(&tech(), &CoreConfig::generic_ooo());
        let ratio = p.clock_energy_per_cycle / p.data_energy_per_cycle;
        assert!(ratio > 0.5 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn magnitudes_are_plausible() {
        // A 4-wide 12-deep pipeline: ~10k latch bits, pJ-scale per cycle.
        let p = PipelineRegs::build(&tech(), &CoreConfig::generic_ooo());
        assert!(p.total_bits > 5e3 && p.total_bits < 5e4, "{}", p.total_bits);
        let e = p.clock_energy_per_cycle + p.data_energy_per_cycle;
        assert!(e > 1e-13 && e < 1e-9, "{e:e}");
    }
}
