//! Memory management unit: instruction and data TLBs (fully associative
//! CAMs storing VPN→PPN mappings).

use crate::config::CoreConfig;
use mcpat_array::{ArrayError, ArraySpec, OptTarget, Ports, SolvedArray};
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// Page offset bits assumed for TLB tag sizing (4 KB pages).
const PAGE_OFFSET_BITS: u32 = 12;

/// The MMU: I-TLB + D-TLB.
#[derive(Debug, Clone)]
pub struct Mmu {
    /// Instruction TLB.
    pub itlb: SolvedArray,
    /// Data TLB.
    pub dtlb: SolvedArray,
}

impl Mmu {
    /// Builds the MMU.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`].
    pub fn build(tech: &TechParams, cfg: &CoreConfig) -> Result<Mmu, ArrayError> {
        let vpn_bits = cfg.vaddr_bits.saturating_sub(PAGE_OFFSET_BITS).max(8);
        let ppn_bits = cfg.paddr_bits.saturating_sub(PAGE_OFFSET_BITS).max(8);
        let entry_bits = vpn_bits + ppn_bits + 8; // mapping + permission bits

        let build_tlb = |entries: u32, ports: Ports, name: &str| {
            ArraySpec::cam(u64::from(entries.max(1)), entry_bits, vpn_bits)
                .with_ports(ports)
                .named(name)
                .solve(tech, OptTarget::Delay)
        };
        let itlb = build_tlb(
            cfg.itlb_entries,
            Ports {
                rw: 1,
                read: 0,
                write: 0,
                search: 1,
            },
            "itlb",
        )?;
        // The D-TLB is probed by every memory port.
        let mem_ports = 2u32.min(cfg.issue_width);
        let dtlb = build_tlb(
            cfg.dtlb_entries,
            Ports {
                rw: 1,
                read: 0,
                write: 0,
                search: mem_ports,
            },
            "dtlb",
        )?;
        Ok(Mmu { itlb, dtlb })
    }

    /// Energy of one I-TLB translation, J.
    #[must_use]
    pub fn itlb_energy(&self) -> f64 {
        self.itlb.search_energy + self.itlb.read_energy
    }

    /// Energy of one D-TLB translation, J.
    #[must_use]
    pub fn dtlb_energy(&self) -> f64 {
        self.dtlb.search_energy + self.dtlb.read_energy
    }

    /// Total MMU area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.itlb.area + self.dtlb.area
    }

    /// Total MMU leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        self.itlb.leakage + self.dtlb.leakage
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    #[test]
    fn mmu_builds_and_translations_cost_energy() {
        let t = TechParams::new(TechNode::N90, DeviceType::Hp, 360.0);
        let mmu = Mmu::build(&t, &CoreConfig::generic_ooo()).unwrap();
        assert!(mmu.itlb_energy() > 0.0);
        assert!(mmu.dtlb_energy() > 0.0);
        assert!(mmu.area() > 0.0);
        assert!(mmu.leakage().total() > 0.0);
    }

    #[test]
    fn bigger_tlbs_cost_more_per_search() {
        let t = TechParams::new(TechNode::N90, DeviceType::Hp, 360.0);
        let mut small = CoreConfig::generic_ooo();
        small.dtlb_entries = 16;
        let mut big = CoreConfig::generic_ooo();
        big.dtlb_entries = 256;
        let ms = Mmu::build(&t, &small).unwrap();
        let mb = Mmu::build(&t, &big).unwrap();
        assert!(mb.dtlb.search_energy > ms.dtlb.search_energy);
    }
}
