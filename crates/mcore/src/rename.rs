//! Register renaming unit: register alias tables, free list, and the
//! intra-group dependency-check logic.
//!
//! McPAT models the RAT either as a RAM indexed by architectural register
//! (one entry per architectural register holding a physical tag) or as a
//! CAM; we use the RAM form, which matches the MIPS-R10000-style design
//! the paper validates against. Dependency checking between the
//! instructions renamed in the same cycle is quadratic comparator logic.

use crate::config::CoreConfig;
use mcpat_array::{ArrayError, ArraySpec, OptTarget, Ports, SolvedArray};
use mcpat_circuit::comparator::TagComparator;
use mcpat_circuit::metrics::{CircuitMetrics, StaticPower};
use mcpat_tech::TechParams;

/// The renaming unit (absent entirely on in-order machines).
#[derive(Debug, Clone)]
pub struct RenameUnit {
    /// Integer RAT.
    pub int_rat: SolvedArray,
    /// FP RAT.
    pub fp_rat: SolvedArray,
    /// Integer free list.
    pub int_free_list: SolvedArray,
    /// FP free list.
    pub fp_free_list: SolvedArray,
    /// Dependency-check comparator metrics (whole rename group).
    dep_check: CircuitMetrics,
    decode_width: u32,
}

impl RenameUnit {
    /// Builds the renaming unit if the machine is out-of-order.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`] from any internal array.
    pub fn build(tech: &TechParams, cfg: &CoreConfig) -> Result<Option<RenameUnit>, ArrayError> {
        if !cfg.is_ooo() {
            return Ok(None);
        }
        let tag_bits = cfg.phys_tag_bits();
        let w = cfg.decode_width;
        // Each renamed instruction reads two source mappings and writes one.
        let rat_ports = Ports::reg_file(w.saturating_mul(2), w);
        let int_rat = ArraySpec::table(
            u64::from(cfg.arch_int_regs) * u64::from(cfg.threads),
            tag_bits,
        )
        .with_ports(rat_ports)
        .named("int-rat")
        .solve(tech, OptTarget::Delay)?;
        let fp_rat = ArraySpec::table(
            u64::from(cfg.arch_fp_regs) * u64::from(cfg.threads),
            tag_bits,
        )
        .with_ports(rat_ports)
        .named("fp-rat")
        .solve(tech, OptTarget::Delay)?;

        let fl_ports = Ports::reg_file(w, w);
        let int_free_list = ArraySpec::table(u64::from(cfg.phys_int_regs), tag_bits)
            .with_ports(fl_ports)
            .named("int-free-list")
            .solve(tech, OptTarget::EnergyDelay)?;
        let fp_free_list = ArraySpec::table(u64::from(cfg.phys_fp_regs), tag_bits)
            .with_ports(fl_ports)
            .named("fp-free-list")
            .solve(tech, OptTarget::EnergyDelay)?;

        // Dependency check: each of the w instructions compares its two
        // sources against every older instruction's destination in the
        // group: 2·w·(w−1)/2 comparators of arch-register width.
        let arch_bits = (f64::from(cfg.arch_int_regs.max(2))).log2().ceil() as u32;
        let cmp = TagComparator::new(tech, arch_bits).metrics();
        let n_cmp = f64::from(w) * f64::from(w.saturating_sub(1));
        let dep_check = CircuitMetrics {
            area: cmp.area * n_cmp,
            delay: cmp.delay,
            energy_per_op: cmp.energy_per_op * n_cmp,
            leakage: cmp.leakage.scaled(n_cmp),
        };

        Ok(Some(RenameUnit {
            int_rat,
            fp_rat,
            int_free_list,
            fp_free_list,
            dep_check,
            decode_width: w,
        }))
    }

    /// Energy of renaming one instruction (RAT reads + write + free-list
    /// pop + its share of dependency checking), J.
    #[must_use]
    pub fn rename_energy_per_inst(&self, is_fp: bool) -> f64 {
        let (rat, fl) = if is_fp {
            (&self.fp_rat, &self.fp_free_list)
        } else {
            (&self.int_rat, &self.int_free_list)
        };
        2.0 * rat.read_energy
            + rat.write_energy
            + fl.read_energy
            + self.dep_check.energy_per_op / f64::from(self.decode_width.max(1))
    }

    /// Total rename-unit area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.int_rat.area
            + self.fp_rat.area
            + self.int_free_list.area
            + self.fp_free_list.area
            + self.dep_check.area
    }

    /// Total rename-unit leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        self.int_rat.leakage
            + self.fp_rat.leakage
            + self.int_free_list.leakage
            + self.fp_free_list.leakage
            + self.dep_check.leakage
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N90, DeviceType::Hp, 360.0)
    }

    #[test]
    fn inorder_machines_have_no_rename_unit() {
        let r = RenameUnit::build(&tech(), &CoreConfig::generic_inorder()).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn ooo_rename_unit_builds() {
        let r = RenameUnit::build(&tech(), &CoreConfig::generic_ooo())
            .unwrap()
            .unwrap();
        assert!(r.area() > 0.0);
        assert!(r.rename_energy_per_inst(false) > 0.0);
        assert!(r.rename_energy_per_inst(true) > 0.0);
    }

    #[test]
    fn wider_machines_pay_quadratic_dep_check() {
        let t = tech();
        let mut narrow = CoreConfig::generic_ooo();
        narrow.decode_width = 2;
        let mut wide = CoreConfig::generic_ooo();
        wide.decode_width = 8;
        let rn = RenameUnit::build(&t, &narrow).unwrap().unwrap();
        let rw = RenameUnit::build(&t, &wide).unwrap().unwrap();
        // 8-wide has 8·7 = 56 comparators vs 2·1 = 2: >10× dep-check area.
        assert!(rw.dep_check.area > 10.0 * rn.dep_check.area);
    }
}
