//! Runtime activity statistics consumed by the core power model.
//!
//! These are the counters any performance simulator (gem5/M5 in the
//! paper; `mcpat-sim` in this repository) produces for one simulation
//! interval. All counts are absolute event counts over the interval;
//! `cycles` anchors them to time via the core clock.

/// Per-core activity counters for one simulated interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct CoreStats {
    /// Elapsed core cycles in the interval.
    pub cycles: u64,
    /// Cycles in which the core was halted/power-gated.
    pub idle_cycles: u64,
    /// Instructions fetched.
    pub fetches: u64,
    /// Instructions decoded.
    pub decodes: u64,
    /// Instructions renamed (OoO only).
    pub renames: u64,
    /// Instructions issued.
    pub issues: u64,
    /// Instructions committed.
    pub commits: u64,
    /// Integer ALU operations executed.
    pub int_ops: u64,
    /// FP operations executed.
    pub fp_ops: u64,
    /// Complex (mul/div) operations executed.
    pub mul_ops: u64,
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed.
    pub stores: u64,
    /// Branch instructions executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// I-cache accesses.
    pub icache_accesses: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache read accesses.
    pub dcache_reads: u64,
    /// D-cache write accesses.
    pub dcache_writes: u64,
    /// D-cache misses (reads + writes).
    pub dcache_misses: u64,
    /// ITLB lookups.
    pub itlb_accesses: u64,
    /// DTLB lookups.
    pub dtlb_accesses: u64,
    /// Instruction-window wakeups/selects (OoO).
    pub window_accesses: u64,
    /// ROB reads+writes (OoO).
    pub rob_accesses: u64,
    /// Integer register file reads.
    pub int_regfile_reads: u64,
    /// Integer register file writes.
    pub int_regfile_writes: u64,
    /// FP register file reads.
    pub fp_regfile_reads: u64,
    /// FP register file writes.
    pub fp_regfile_writes: u64,
}

impl CoreStats {
    /// A TDP-style worst-case interval: every unit busy every cycle for
    /// `cycles` cycles on a machine with the given widths.
    ///
    /// McPAT's "peak power" numbers assume sustained maximum activity
    /// with a 50% data toggle; this constructor encodes the event rates,
    /// the energy models encode the toggle.
    #[must_use]
    pub fn peak(cycles: u64, issue_width: u32, fp_issue_width: u32) -> CoreStats {
        let w = u64::from(issue_width);
        let fw = u64::from(fp_issue_width);
        let n = cycles.saturating_mul(w);
        CoreStats {
            cycles,
            idle_cycles: 0,
            fetches: n,
            decodes: n,
            renames: n,
            issues: n,
            commits: n,
            int_ops: n,
            fp_ops: cycles.saturating_mul(fw),
            mul_ops: cycles / 4,
            loads: n / 4,
            stores: n / 8,
            branches: n / 5,
            branch_mispredicts: n / 100,
            icache_accesses: cycles,
            icache_misses: cycles / 100,
            dcache_reads: n / 4,
            dcache_writes: n / 8,
            dcache_misses: n / 50,
            itlb_accesses: cycles,
            dtlb_accesses: n / 4 + n / 8,
            window_accesses: n.saturating_mul(2),
            rob_accesses: n.saturating_mul(2),
            int_regfile_reads: n.saturating_mul(2),
            int_regfile_writes: n,
            fp_regfile_reads: cycles.saturating_mul(fw).saturating_mul(2),
            fp_regfile_writes: cycles.saturating_mul(fw),
        }
    }

    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.commits as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles the core was active.
    #[must_use]
    pub fn duty(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            1.0 - self.idle_cycles as f64 / self.cycles as f64
        }
    }

    /// Element-wise sum of two intervals.
    #[must_use]
    pub fn merged(&self, other: &CoreStats) -> CoreStats {
        CoreStats {
            cycles: self.cycles + other.cycles,
            idle_cycles: self.idle_cycles + other.idle_cycles,
            fetches: self.fetches + other.fetches,
            decodes: self.decodes + other.decodes,
            renames: self.renames + other.renames,
            issues: self.issues + other.issues,
            commits: self.commits + other.commits,
            int_ops: self.int_ops + other.int_ops,
            fp_ops: self.fp_ops + other.fp_ops,
            mul_ops: self.mul_ops + other.mul_ops,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            branches: self.branches + other.branches,
            branch_mispredicts: self.branch_mispredicts + other.branch_mispredicts,
            icache_accesses: self.icache_accesses + other.icache_accesses,
            icache_misses: self.icache_misses + other.icache_misses,
            dcache_reads: self.dcache_reads + other.dcache_reads,
            dcache_writes: self.dcache_writes + other.dcache_writes,
            dcache_misses: self.dcache_misses + other.dcache_misses,
            itlb_accesses: self.itlb_accesses + other.itlb_accesses,
            dtlb_accesses: self.dtlb_accesses + other.dtlb_accesses,
            window_accesses: self.window_accesses + other.window_accesses,
            rob_accesses: self.rob_accesses + other.rob_accesses,
            int_regfile_reads: self.int_regfile_reads + other.int_regfile_reads,
            int_regfile_writes: self.int_regfile_writes + other.int_regfile_writes,
            fp_regfile_reads: self.fp_regfile_reads + other.fp_regfile_reads,
            fp_regfile_writes: self.fp_regfile_writes + other.fp_regfile_writes,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn peak_stats_are_fully_busy() {
        let s = CoreStats::peak(1000, 4, 2);
        assert_eq!(s.issues, 4000);
        assert_eq!(s.fp_ops, 2000);
        assert!((s.duty() - 1.0).abs() < 1e-12);
        assert!((s.ipc() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.duty(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let a = CoreStats::peak(100, 2, 1);
        let b = CoreStats::peak(300, 2, 1);
        let m = a.merged(&b);
        assert_eq!(m.cycles, 400);
        assert_eq!(m.issues, 800);
    }
}
