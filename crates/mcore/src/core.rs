//! The assembled core model: every unit built, aggregated, and evaluated
//! for peak and runtime power.

use crate::config::CoreConfig;
use crate::exu::Exu;
use crate::ifu::Ifu;
use crate::lsu::Lsu;
use crate::misc::MiscLogic;
use crate::mmu::Mmu;
use crate::pipeline::PipelineRegs;
use crate::regfile::RegFiles;
use crate::rename::RenameUnit;
use crate::stats::CoreStats;
use crate::window::WindowUnit;
use mcpat_array::{ArrayError, SolvedArray};
use mcpat_circuit::metrics::StaticPower;
use mcpat_diag::{AtPath, Diagnostics, ResultExt};
use mcpat_tech::TechParams;
use std::fmt;

/// Why a core could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreBuildError {
    /// The configuration failed validation; carries every finding.
    Invalid(Diagnostics),
    /// A storage array (located by its component path) failed to solve.
    Array(AtPath<ArrayError>),
}

impl fmt::Display for CoreBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreBuildError::Invalid(d) => {
                write!(f, "invalid core configuration ({} errors)", d.error_count())
            }
            CoreBuildError::Array(e) => write!(f, "array solver: {e}"),
        }
    }
}

impl std::error::Error for CoreBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreBuildError::Invalid(_) => None,
            CoreBuildError::Array(e) => Some(e),
        }
    }
}

impl From<AtPath<ArrayError>> for CoreBuildError {
    fn from(e: AtPath<ArrayError>) -> CoreBuildError {
        CoreBuildError::Array(e)
    }
}

/// Dynamic + static power of one named component, W.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerItem {
    /// Component name.
    pub name: String,
    /// Dynamic power over the evaluated interval, W.
    pub dynamic: f64,
    /// Static power, W.
    pub leakage: StaticPower,
}

impl PowerItem {
    /// Total power of the component, W.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage.total()
    }
}

/// A full power breakdown of one core.
#[derive(Debug, Clone, PartialEq)]
pub struct CorePower {
    /// Per-component entries.
    pub items: Vec<PowerItem>,
}

impl CorePower {
    /// Sum of dynamic power, W.
    #[must_use]
    pub fn dynamic(&self) -> f64 {
        self.items.iter().map(|i| i.dynamic).sum()
    }

    /// Sum of leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        self.items.iter().map(|i| i.leakage).sum()
    }

    /// Total core power, W.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dynamic() + self.leakage().total()
    }

    /// Looks up a component's power by name.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<&PowerItem> {
        self.items.iter().find(|i| i.name == name)
    }
}

/// A fully built core.
#[derive(Debug, Clone)]
pub struct CoreModel {
    /// The architecture this core was built from.
    pub config: CoreConfig,
    /// Instruction fetch unit.
    pub ifu: Ifu,
    /// Renaming unit (OoO only).
    pub rename: Option<RenameUnit>,
    /// Issue window + ROB (OoO only).
    pub window: Option<WindowUnit>,
    /// Register files.
    pub regs: RegFiles,
    /// Execution units.
    pub exu: Exu,
    /// Load-store unit.
    pub lsu: Lsu,
    /// MMU.
    pub mmu: Mmu,
    /// Pipeline latches + local clock.
    pub pipeline: PipelineRegs,
    /// Random control logic (empirical).
    pub misc: MiscLogic,
}

impl CoreModel {
    /// Builds every unit of the core.
    ///
    /// # Errors
    ///
    /// [`CoreBuildError::Invalid`] with the complete validation findings
    /// if the configuration is broken (standalone callers see warnings
    /// dropped; [`CoreConfig::validate`] exposes them directly), or
    /// [`CoreBuildError::Array`] locating the first array that failed to
    /// solve.
    pub fn build(tech: &TechParams, cfg: &CoreConfig) -> Result<CoreModel, CoreBuildError> {
        let diags = cfg.validate();
        if diags.has_errors() {
            return Err(CoreBuildError::Invalid(diags));
        }
        // One arena mark per core build: solver scratch allocated on
        // this thread (the pool inlines unit builds when it has no
        // spare workers) rolls back here, so the thread-local chunk is
        // reused across every unit and across repeated builds instead
        // of round-tripping the global allocator. Pool workers keep
        // their own retained arenas.
        mcpat_arena::scratch(|_scratch| Self::build_units(tech, cfg))
    }

    fn build_units(tech: &TechParams, cfg: &CoreConfig) -> Result<CoreModel, CoreBuildError> {
        // The array-solving units are independent of each other; build
        // them concurrently when threads are available. Exu, pipeline
        // and misc are closed-form (no solver) and stay inline.
        let (ifu, rename, window, regs, lsu, mmu) = mcpat_par::join6(
            || Ifu::build(tech, cfg).at("ifu"),
            || RenameUnit::build(tech, cfg).at("rename"),
            || WindowUnit::build(tech, cfg).at("window"),
            || RegFiles::build(tech, cfg).at("regs"),
            || Lsu::build(tech, cfg).at("lsu"),
            || Mmu::build(tech, cfg).at("mmu"),
        )
        .map_err(|e| {
            CoreBuildError::Array(AtPath::new(
                "core",
                ArrayError::Worker {
                    name: String::from("core"),
                    detail: e.to_string(),
                },
            ))
        })?;
        Ok(CoreModel {
            config: cfg.clone(),
            ifu: ifu?,
            rename: rename?,
            window: window?,
            regs: regs?,
            exu: Exu::build(tech, cfg),
            lsu: lsu?,
            mmu: mmu?,
            pipeline: PipelineRegs::build(tech, cfg),
            misc: MiscLogic::build(tech, cfg),
        })
    }

    /// Warning diagnostics from every storage array the solver could
    /// only place by degrading along its relaxation ladder (see
    /// [`mcpat_array::Relaxation`]). Empty when every array met its
    /// constraints exactly. Each diagnostic's path is the array name
    /// (e.g. `icache-data`); callers nest it under the core's own path.
    #[must_use]
    pub fn relaxation_warnings(&self) -> Diagnostics {
        let ifu = &self.ifu;
        let mut arrays: Vec<&SolvedArray> = vec![
            &ifu.icache.data,
            &ifu.icache.tag,
            &ifu.instruction_buffer,
            &self.regs.int_rf,
            &self.regs.fp_rf,
            &self.lsu.dcache.data,
            &self.lsu.dcache.tag,
            &self.lsu.load_queue,
            &self.lsu.store_queue,
            &self.mmu.itlb,
            &self.mmu.dtlb,
        ];
        arrays.extend(
            [
                &ifu.btb,
                &ifu.global_predictor,
                &ifu.local_l1,
                &ifu.local_l2,
                &ifu.chooser,
                &ifu.ras,
            ]
            .into_iter()
            .flatten(),
        );
        if let Some(r) = &self.rename {
            arrays.extend([&r.int_rat, &r.fp_rat, &r.int_free_list, &r.fp_free_list]);
        }
        if let Some(w) = &self.window {
            arrays.extend([&w.int_window, &w.rob]);
            arrays.extend(&w.fp_window);
        }
        arrays
            .iter()
            .filter_map(|a| a.relaxation_warning())
            .collect()
    }

    /// Total core area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.ifu.area()
            + self.rename.as_ref().map_or(0.0, RenameUnit::area)
            + self.window.as_ref().map_or(0.0, WindowUnit::area)
            + self.regs.area()
            + self.exu.area()
            + self.lsu.area()
            + self.mmu.area()
            + self.pipeline.area
            + self.misc.area
    }

    /// Total core leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        let mut l = self.ifu.leakage()
            + self.regs.leakage()
            + self.exu.leakage()
            + self.lsu.leakage()
            + self.mmu.leakage()
            + self.pipeline.leakage
            + self.misc.leakage;
        if let Some(r) = &self.rename {
            l += r.leakage();
        }
        if let Some(w) = &self.window {
            l += w.leakage();
        }
        l
    }

    /// The highest clock this core's latency-critical arrays support, Hz
    /// (the register file, issue window, and L1 cycle times bound it).
    #[must_use]
    pub fn max_clock_hz(&self) -> f64 {
        let mut worst = self
            .regs
            .int_rf
            .cycle_time
            .max(self.ifu.icache.cycle_time)
            .max(self.lsu.dcache.cycle_time);
        if let Some(w) = &self.window {
            worst = worst.max(w.int_window.cycle_time);
        }
        1.0 / worst
    }

    /// Evaluates runtime power from simulator statistics.
    ///
    /// The interval length is `stats.cycles / config.clock_hz`; event
    /// energies are divided by it to obtain average power.
    #[must_use]
    pub fn runtime_power(&self, stats: &CoreStats) -> CorePower {
        let cycles = stats.cycles.max(1) as f64;
        let interval = cycles / self.config.clock_hz;
        let per = |energy: f64| energy / interval;
        let n = |count: u64| count as f64;

        let mut items = Vec::with_capacity(9);

        // --- IFU ---------------------------------------------------------
        let icache_e = n(stats.icache_accesses) * self.ifu.icache.read_hit_energy
            + n(stats.icache_misses) * (self.ifu.icache.miss_energy + self.ifu.icache.fill_energy);
        let bpred_e = n(stats.branches)
            * (self.ifu.predictor_lookup_energy() + self.ifu.btb_energy())
            + n(stats.branches) * self.ifu.predictor_update_energy()
            + n(stats.branch_mispredicts) * self.ifu.predictor_update_energy();
        let ib_e = n(stats.decodes) * self.ifu.buffer_energy_per_inst();
        let dec_e = n(stats.decodes) * self.ifu.decode_energy_per_inst;
        items.push(PowerItem {
            name: "ifu".into(),
            dynamic: per(icache_e + bpred_e + ib_e + dec_e),
            leakage: self.ifu.leakage(),
        });

        // --- Rename ------------------------------------------------------
        if let Some(r) = &self.rename {
            let fp_frac = if stats.renames > 0 {
                (n(stats.fp_ops) / n(stats.renames).max(1.0)).min(1.0)
            } else {
                0.0
            };
            let e = n(stats.renames)
                * ((1.0 - fp_frac) * r.rename_energy_per_inst(false)
                    + fp_frac * r.rename_energy_per_inst(true));
            items.push(PowerItem {
                name: "rename".into(),
                dynamic: per(e),
                leakage: r.leakage(),
            });
        }

        // --- Window + ROB --------------------------------------------------
        if let Some(w) = &self.window {
            let e = n(stats.window_accesses) * w.window_energy_per_access(false)
                + n(stats.rob_accesses) * w.rob_energy_per_access();
            items.push(PowerItem {
                name: "window".into(),
                dynamic: per(e),
                leakage: w.leakage(),
            });
        }

        // --- Register files -------------------------------------------------
        let rf_e = n(stats.int_regfile_reads) * self.regs.int_rf.read_energy
            + n(stats.int_regfile_writes) * self.regs.int_rf.write_energy
            + n(stats.fp_regfile_reads) * self.regs.fp_rf.read_energy
            + n(stats.fp_regfile_writes) * self.regs.fp_rf.write_energy;
        items.push(PowerItem {
            name: "regfile".into(),
            dynamic: per(rf_e),
            leakage: self.regs.leakage(),
        });

        // --- EXU -------------------------------------------------------------
        let exu_e = n(stats.int_ops) * self.exu.alu.energy_per_op
            + n(stats.fp_ops) * self.exu.fpu.energy_per_op
            + n(stats.mul_ops) * self.exu.mul.energy_per_op
            + n(stats
                .int_ops
                .saturating_add(stats.fp_ops)
                .saturating_add(stats.mul_ops))
                * self.exu.bypass_energy_per_transfer;
        items.push(PowerItem {
            name: "exu".into(),
            dynamic: per(exu_e),
            leakage: self.exu.leakage(),
        });

        // --- LSU ----------------------------------------------------------------
        let lsu_e = n(stats.loads) * self.lsu.load_energy()
            + n(stats.stores) * self.lsu.store_energy()
            + n(stats.dcache_misses) * (self.lsu.dcache.miss_energy + self.lsu.dcache.fill_energy);
        items.push(PowerItem {
            name: "lsu".into(),
            dynamic: per(lsu_e),
            leakage: self.lsu.leakage(),
        });

        // --- MMU -----------------------------------------------------------------
        let mmu_e = n(stats.itlb_accesses) * self.mmu.itlb_energy()
            + n(stats.dtlb_accesses) * self.mmu.dtlb_energy();
        items.push(PowerItem {
            name: "mmu".into(),
            dynamic: per(mmu_e),
            leakage: self.mmu.leakage(),
        });

        // --- Pipeline latches + local clock ----------------------------------------
        let duty = stats.duty();
        let gated_fraction = if self.config.clock_gating { 0.10 } else { 1.0 };
        let clock_scale = duty + (1.0 - duty) * gated_fraction;
        let pipe_e = cycles
            * (self.pipeline.data_energy_per_cycle * duty
                + self.pipeline.clock_energy_per_cycle * clock_scale);
        items.push(PowerItem {
            name: "pipeline+clock".into(),
            dynamic: per(pipe_e),
            leakage: self.pipeline.leakage,
        });

        // --- Random control logic ---------------------------------------------------
        let misc_e = cycles * duty * self.misc.energy_per_cycle;
        items.push(PowerItem {
            name: "misc-logic".into(),
            dynamic: per(misc_e),
            leakage: self.misc.leakage,
        });

        CorePower { items }
    }

    /// TDP-style peak power: one second of maximum sustained activity, W.
    #[must_use]
    pub fn peak_power(&self) -> CorePower {
        let cycles = self.config.clock_hz as u64;
        let stats = CoreStats::peak(cycles, self.config.issue_width, self.config.fp_issue_width);
        self.runtime_power(&stats)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech90() -> TechParams {
        TechParams::new(TechNode::N90, DeviceType::Hp, 360.0)
    }

    #[test]
    fn inorder_core_builds_and_reports() {
        let core = CoreModel::build(&tech90(), &CoreConfig::niagara_like()).unwrap();
        let peak = core.peak_power();
        assert!(peak.total() > 0.5, "total = {}", peak.total());
        assert!(peak.total() < 50.0, "total = {}", peak.total());
        assert!(core.area() > 1e-6, "area = {}", core.area()); // > 1 mm²
    }

    #[test]
    fn ooo_core_is_bigger_and_hungrier_than_inorder() {
        let t = tech90();
        let io = CoreModel::build(&t, &CoreConfig::generic_inorder()).unwrap();
        let ooo = CoreModel::build(&t, &CoreConfig::generic_ooo()).unwrap();
        assert!(
            ooo.area() > 1.5 * io.area(),
            "{} vs {}",
            ooo.area(),
            io.area()
        );
        assert!(ooo.peak_power().total() > io.peak_power().total());
    }

    #[test]
    fn runtime_power_scales_with_activity() {
        let t = tech90();
        let core = CoreModel::build(&t, &CoreConfig::generic_ooo()).unwrap();
        let busy = CoreStats::peak(1_000_000, 4, 2);
        let mut idle = CoreStats::peak(1_000_000, 4, 2);
        // Quarter the activity.
        idle.issues /= 4;
        idle.int_ops /= 4;
        idle.fp_ops /= 4;
        idle.loads /= 4;
        idle.stores /= 4;
        idle.fetches /= 4;
        idle.decodes /= 4;
        idle.renames /= 4;
        idle.commits /= 4;
        idle.window_accesses /= 4;
        idle.rob_accesses /= 4;
        idle.int_regfile_reads /= 4;
        idle.int_regfile_writes /= 4;
        idle.dcache_reads /= 4;
        idle.dcache_writes /= 4;
        let p_busy = core.runtime_power(&busy);
        let p_idle = core.runtime_power(&idle);
        assert!(p_busy.dynamic() > 1.5 * p_idle.dynamic());
        // Leakage is activity-independent.
        assert!((p_busy.leakage().total() - p_idle.leakage().total()).abs() < 1e-9);
    }

    #[test]
    fn clock_gating_cuts_idle_clock_power() {
        let t = tech90();
        let mut cfg = CoreConfig::generic_ooo();
        cfg.clock_gating = true;
        let gated = CoreModel::build(&t, &cfg).unwrap();
        cfg.clock_gating = false;
        let ungated = CoreModel::build(&t, &cfg).unwrap();
        let mut stats = CoreStats::peak(1_000_000, 4, 2);
        stats.idle_cycles = 900_000; // mostly idle
        let pg = gated.runtime_power(&stats);
        let pu = ungated.runtime_power(&stats);
        let cg = pg.component("pipeline+clock").unwrap().dynamic;
        let cu = pu.component("pipeline+clock").unwrap().dynamic;
        assert!(cg < cu, "gated {cg} vs ungated {cu}");
    }

    #[test]
    fn component_breakdown_is_complete() {
        let core = CoreModel::build(&tech90(), &CoreConfig::generic_ooo()).unwrap();
        let p = core.peak_power();
        for name in [
            "ifu",
            "rename",
            "window",
            "regfile",
            "exu",
            "lsu",
            "mmu",
            "pipeline+clock",
            "misc-logic",
        ] {
            assert!(p.component(name).is_some(), "missing {name}");
        }
        let sum: f64 = p.items.iter().map(PowerItem::total).sum();
        assert!((sum - p.total()).abs() < 1e-9);
    }

    #[test]
    fn max_clock_is_achievable_ballpark() {
        let core = CoreModel::build(&tech90(), &CoreConfig::niagara_like()).unwrap();
        let f = core.max_clock_hz();
        assert!(f > 0.5e9, "max clock {f:e}");
    }
}
