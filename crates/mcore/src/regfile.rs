//! Integer and floating-point register files.

use crate::config::CoreConfig;
use mcpat_array::{ArrayError, ArraySpec, OptTarget, Ports, SolvedArray};
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// The core's register files.
#[derive(Debug, Clone)]
pub struct RegFiles {
    /// Integer register file.
    pub int_rf: SolvedArray,
    /// FP register file.
    pub fp_rf: SolvedArray,
}

impl RegFiles {
    /// Builds the register files.
    ///
    /// In-order machines hold one architectural copy per thread;
    /// out-of-order machines hold the physical register file.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`].
    pub fn build(tech: &TechParams, cfg: &CoreConfig) -> Result<RegFiles, ArrayError> {
        let (int_regs, fp_regs) = if cfg.is_ooo() {
            (cfg.phys_int_regs, cfg.phys_fp_regs)
        } else {
            (
                cfg.arch_int_regs.saturating_mul(cfg.threads),
                cfg.arch_fp_regs.saturating_mul(cfg.threads),
            )
        };
        // 2 reads + 1 write per issue slot is the classic sizing.
        let int_ports = Ports::reg_file(cfg.issue_width.saturating_mul(2), cfg.issue_width);
        let fp_ports = Ports::reg_file(
            cfg.fp_issue_width.max(1).saturating_mul(2),
            cfg.fp_issue_width.max(1),
        );

        let mut int_spec = ArraySpec::table(u64::from(int_regs.max(1)), cfg.word_bits)
            .with_ports(int_ports)
            .named("int-regfile");
        let mut fp_spec = ArraySpec::table(u64::from(fp_regs.max(1)), cfg.word_bits)
            .with_ports(fp_ports)
            .named("fp-regfile");
        if cfg.enforce_timing {
            int_spec = int_spec.with_max_cycle_time(cfg.cycle_time());
            fp_spec = fp_spec.with_max_cycle_time(cfg.cycle_time());
        }
        let int_rf = int_spec.solve(tech, OptTarget::Delay)?;
        let fp_rf = fp_spec.solve(tech, OptTarget::Delay)?;
        Ok(RegFiles { int_rf, fp_rf })
    }

    /// Total register file area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.int_rf.area + self.fp_rf.area
    }

    /// Total register file leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        self.int_rf.leakage + self.fp_rf.leakage
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N90, DeviceType::Hp, 360.0)
    }

    #[test]
    fn regfiles_build_for_both_machine_types() {
        for cfg in [CoreConfig::generic_ooo(), CoreConfig::generic_inorder()] {
            let rf = RegFiles::build(&tech(), &cfg).unwrap();
            assert!(rf.area() > 0.0);
            assert!(rf.int_rf.read_energy > 0.0);
        }
    }

    #[test]
    fn threaded_inorder_core_has_bigger_arch_rf() {
        let t = tech();
        let mut one = CoreConfig::generic_inorder();
        one.threads = 1;
        let mut eight = CoreConfig::generic_inorder();
        eight.threads = 8;
        let rf1 = RegFiles::build(&t, &one).unwrap();
        let rf8 = RegFiles::build(&t, &eight).unwrap();
        assert!(rf8.int_rf.area > 2.0 * rf1.int_rf.area);
    }

    #[test]
    fn wide_issue_multiplies_ports_and_energy() {
        let t = tech();
        let mut narrow = CoreConfig::generic_ooo();
        narrow.issue_width = 2;
        let mut wide = CoreConfig::generic_ooo();
        wide.issue_width = 8;
        let rn = RegFiles::build(&t, &narrow).unwrap();
        let rw = RegFiles::build(&t, &wide).unwrap();
        assert!(rw.int_rf.area > 2.0 * rn.int_rf.area);
    }
}
