//! Execution units: integer ALUs, FP units, complex (multiply/divide)
//! units, and the result bypass network.
//!
//! Functional-unit datapaths have custom layouts that defeat purely
//! analytical treatment, so McPAT models them **empirically**: transistor
//! counts calibrated at 90 nm, scaled by feature size and supply voltage.
//! The bypass network is analytical (repeated wires spanning the EXU).

use crate::config::CoreConfig;
use mcpat_circuit::metrics::StaticPower;
use mcpat_circuit::repeater::RepeatedWire;
use mcpat_tech::{TechParams, WireType};

/// Kinds of functional units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU (add/sub/logic/shift).
    IntAlu,
    /// Floating-point unit (add/mul, pipelined).
    Fpu,
    /// Complex integer unit (multiply/divide).
    MulDiv,
}

impl FuKind {
    /// Equivalent transistor count of the unit (90 nm calibration).
    #[must_use]
    pub fn transistor_count(self) -> f64 {
        match self {
            FuKind::IntAlu => 100_000.0,
            FuKind::Fpu => 1_000_000.0,
            FuKind::MulDiv => 300_000.0,
        }
    }

    /// Fraction of the unit's capacitance switched by a typical operation.
    #[must_use]
    pub fn activity_factor(self) -> f64 {
        match self {
            FuKind::IntAlu => 0.2,
            FuKind::Fpu => 0.3,
            FuKind::MulDiv => 0.3,
        }
    }
}

/// An empirical functional-unit model.
#[derive(Debug, Clone, Copy)]
pub struct FunctionalUnit {
    /// Unit kind.
    pub kind: FuKind,
    /// Area of one instance, m².
    pub area: f64,
    /// Dynamic energy of one operation, J.
    pub energy_per_op: f64,
    /// Leakage of one instance, W.
    pub leakage: StaticPower,
}

/// Logic transistor density at 90 nm, transistors per m².
const DENSITY_90NM_PER_M2: f64 = 1.5e12;

/// Average transistor width in the datapath, in feature sizes.
const AVG_WIDTH_F: f64 = 4.0;

impl FunctionalUnit {
    /// Builds the empirical model of one unit at a process corner.
    #[must_use]
    pub fn new(tech: &TechParams, kind: FuKind) -> FunctionalUnit {
        let n = kind.transistor_count();
        let f = tech.node.feature_m();
        let scale = tech.node.scale_from_90nm();

        let density = DENSITY_90NM_PER_M2 / (scale * scale);
        let area = n / density;

        let w_avg = AVG_WIDTH_F * f;
        let c_per_tx = (tech.device.c_g + tech.device.c_d) * w_avg;
        let energy_per_op =
            kind.activity_factor() * n * c_per_tx * tech.device.vdd * tech.device.vdd;

        let total_width = n * w_avg / 2.0;
        let leakage = StaticPower {
            subthreshold: tech.subthreshold_leakage(total_width / 2.0, total_width / 2.0),
            gate: tech.gate_leakage(total_width / 2.0, total_width / 2.0),
        };
        FunctionalUnit {
            kind,
            area,
            energy_per_op,
            leakage,
        }
    }
}

/// The assembled execution unit: FUs + bypass network.
#[derive(Debug, Clone)]
pub struct Exu {
    /// Integer ALU instance model.
    pub alu: FunctionalUnit,
    /// FPU instance model.
    pub fpu: FunctionalUnit,
    /// Mul/div instance model.
    pub mul: FunctionalUnit,
    /// ALU count.
    pub num_alus: u32,
    /// FPU count.
    pub num_fpus: u32,
    /// Mul/div count.
    pub num_muls: u32,
    /// Energy of forwarding one result over the bypass network, J.
    pub bypass_energy_per_transfer: f64,
    /// Bypass network area, m².
    pub bypass_area: f64,
    /// Bypass network leakage, W.
    pub bypass_leakage: StaticPower,
}

impl Exu {
    /// Builds the execution unit for a configuration.
    #[must_use]
    pub fn build(tech: &TechParams, cfg: &CoreConfig) -> Exu {
        let alu = FunctionalUnit::new(tech, FuKind::IntAlu);
        let fpu = FunctionalUnit::new(tech, FuKind::Fpu);
        let mul = FunctionalUnit::new(tech, FuKind::MulDiv);

        let fu_area = alu.area * f64::from(cfg.num_alus)
            + fpu.area * f64::from(cfg.num_fpus)
            + mul.area * f64::from(cfg.num_muls);
        // Bypass buses span the EXU datapath twice (operand + result side).
        let span = 2.0 * fu_area.max(1e-12).sqrt();
        let bus_bits = f64::from(cfg.word_bits.saturating_add(cfg.phys_tag_bits()));
        let lanes = f64::from(cfg.issue_width);
        let wire = RepeatedWire::energy_derated(tech, WireType::Intermediate, span, 1.10);

        let bypass_energy_per_transfer = 0.5 * bus_bits * wire.metrics.energy_per_op;
        let bypass_area = wire.metrics.area * bus_bits * lanes
            + span * tech.wire(WireType::Intermediate).pitch * bus_bits * lanes;
        let bypass_leakage = wire.metrics.leakage.scaled(bus_bits * lanes);

        Exu {
            alu,
            fpu,
            mul,
            num_alus: cfg.num_alus,
            num_fpus: cfg.num_fpus,
            num_muls: cfg.num_muls,
            bypass_energy_per_transfer,
            bypass_area,
            bypass_leakage,
        }
    }

    /// Total EXU area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.alu.area * f64::from(self.num_alus)
            + self.fpu.area * f64::from(self.num_fpus)
            + self.mul.area * f64::from(self.num_muls)
            + self.bypass_area
    }

    /// Total EXU leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        self.alu.leakage.scaled(f64::from(self.num_alus))
            + self.fpu.leakage.scaled(f64::from(self.num_fpus))
            + self.mul.leakage.scaled(f64::from(self.num_muls))
            + self.bypass_leakage
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N90, DeviceType::Hp, 360.0)
    }

    #[test]
    fn fpu_costs_much_more_than_alu() {
        let t = tech();
        let alu = FunctionalUnit::new(&t, FuKind::IntAlu);
        let fpu = FunctionalUnit::new(&t, FuKind::Fpu);
        assert!(fpu.area > 5.0 * alu.area);
        assert!(fpu.energy_per_op > 5.0 * alu.energy_per_op);
    }

    #[test]
    fn alu_energy_is_picojoule_scale_at_90nm() {
        let alu = FunctionalUnit::new(&tech(), FuKind::IntAlu);
        let pj = alu.energy_per_op * 1e12;
        assert!(pj > 1.0 && pj < 30.0, "{pj} pJ");
    }

    #[test]
    fn units_shrink_with_technology() {
        let a90 = FunctionalUnit::new(&tech(), FuKind::IntAlu);
        let t32 = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);
        let a32 = FunctionalUnit::new(&t32, FuKind::IntAlu);
        assert!(a32.area < a90.area / 4.0);
        assert!(a32.energy_per_op < a90.energy_per_op);
    }

    #[test]
    fn exu_assembles_and_bypass_costs_energy() {
        let exu = Exu::build(&tech(), &CoreConfig::generic_ooo());
        assert!(exu.area() > 0.0);
        assert!(exu.bypass_energy_per_transfer > 0.0);
        assert!(exu.leakage().total() > 0.0);
    }
}
