//! Instruction fetch unit: L1 I-cache, branch prediction (tournament
//! predictor + BTB + RAS), instruction buffer, and instruction decoders.

use crate::config::CoreConfig;
use mcpat_array::cache::CacheArray;
use mcpat_array::{ArrayError, ArraySpec, OptTarget, Ports, SolvedArray};
use mcpat_circuit::decoder::RowDecoder;
use mcpat_circuit::metrics::StaticPower;
use mcpat_tech::TechParams;

/// The assembled fetch unit.
#[derive(Debug, Clone)]
pub struct Ifu {
    /// L1 instruction cache.
    pub icache: CacheArray,
    /// Branch target buffer (absent on BTB-less designs like Niagara).
    pub btb: Option<SolvedArray>,
    /// Global predictor table.
    pub global_predictor: Option<SolvedArray>,
    /// Local predictor level 1 (history) table.
    pub local_l1: Option<SolvedArray>,
    /// Local predictor level 2 (counter) table.
    pub local_l2: Option<SolvedArray>,
    /// Chooser table.
    pub chooser: Option<SolvedArray>,
    /// Return address stack (one per hardware thread).
    pub ras: Option<SolvedArray>,
    /// Instruction buffer.
    pub instruction_buffer: SolvedArray,
    /// Energy of decoding one instruction, J.
    pub decode_energy_per_inst: f64,
    /// Decoder area for all lanes, m².
    pub decoder_area: f64,
    /// Decoder leakage for all lanes, W.
    pub decoder_leakage: StaticPower,
    /// Number of hardware threads (for RAS replication).
    threads: u32,
}

impl Ifu {
    /// Builds the fetch unit for a core configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`ArrayError`] from any internal array.
    pub fn build(tech: &TechParams, cfg: &CoreConfig) -> Result<Ifu, ArrayError> {
        let mut icache_spec = cfg.icache.clone();
        if cfg.enforce_timing {
            icache_spec = icache_spec.with_max_cycle_time(cfg.cycle_time());
        }
        let icache = icache_spec.solve(tech, OptTarget::EnergyDelay)?;

        let opt = OptTarget::EnergyDelay;
        let table =
            |entries: u32, bits: u32, name: &str| -> Result<Option<SolvedArray>, ArrayError> {
                if entries == 0 || bits == 0 {
                    Ok(None)
                } else {
                    Ok(Some(
                        ArraySpec::table(u64::from(entries), bits)
                            .named(name)
                            .solve(tech, opt)?,
                    ))
                }
            };

        let p = &cfg.predictor;
        let btb = table(cfg.btb_entries, cfg.vaddr_bits.saturating_add(20), "btb")?;
        let global_predictor = table(p.global_entries, 2, "bpred-global")?;
        let local_l1 = table(p.local_l1_entries, 10, "bpred-local-l1")?;
        let local_l2 = table(p.local_l2_entries, 2, "bpred-local-l2")?;
        let chooser = table(p.chooser_entries, 2, "bpred-chooser")?;
        let ras = table(p.ras_entries, cfg.vaddr_bits, "ras")?;

        let ib_entries = u64::from(cfg.instruction_buffer_size.max(1)) * u64::from(cfg.threads);
        let instruction_buffer = ArraySpec::table(ib_entries, cfg.instruction_bits)
            .with_ports(Ports::reg_file(cfg.decode_width, cfg.fetch_width))
            .named("instruction-buffer")
            .solve(tech, opt)?;

        // One opcode decoder per decode lane: an 8-bit (≤256-row) decode
        // structure plus control random logic approximated as 4× its
        // energy.
        let rows = 1usize << cfg.opcode_bits.min(8);
        let lane = RowDecoder::new(tech, rows, 5e-15).metrics();
        let lanes = f64::from(cfg.decode_width);
        let random_logic_factor = 4.0;
        let decode_energy_per_inst = lane.energy_per_op * random_logic_factor;
        let decoder_area = lane.area * random_logic_factor * lanes;
        let decoder_leakage = lane.leakage.scaled(random_logic_factor * lanes);

        Ok(Ifu {
            icache,
            btb,
            global_predictor,
            local_l1,
            local_l2,
            chooser,
            ras,
            instruction_buffer,
            decode_energy_per_inst,
            decoder_area,
            decoder_leakage,
            threads: cfg.threads,
        })
    }

    fn predictor_arrays(&self) -> impl Iterator<Item = &SolvedArray> {
        [
            self.global_predictor.as_ref(),
            self.local_l1.as_ref(),
            self.local_l2.as_ref(),
            self.chooser.as_ref(),
        ]
        .into_iter()
        .flatten()
    }

    /// Energy of one branch-direction lookup (all tournament tables), J.
    #[must_use]
    pub fn predictor_lookup_energy(&self) -> f64 {
        self.predictor_arrays().map(|a| a.read_energy).sum()
    }

    /// Energy of one predictor update after resolution, J.
    #[must_use]
    pub fn predictor_update_energy(&self) -> f64 {
        self.predictor_arrays().map(|a| a.write_energy).sum()
    }

    /// Energy of one BTB probe, J.
    #[must_use]
    pub fn btb_energy(&self) -> f64 {
        self.btb.as_ref().map_or(0.0, |b| b.read_energy)
    }

    /// Energy of pushing an instruction through the buffer (write+read), J.
    #[must_use]
    pub fn buffer_energy_per_inst(&self) -> f64 {
        self.instruction_buffer.read_energy + self.instruction_buffer.write_energy
    }

    /// Total fetch-unit area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        let ras_area = self.ras.as_ref().map_or(0.0, |r| r.area) * f64::from(self.threads);
        self.icache.area
            + self.btb.as_ref().map_or(0.0, |b| b.area)
            + self.predictor_arrays().map(|a| a.area).sum::<f64>()
            + ras_area
            + self.instruction_buffer.area
            + self.decoder_area
    }

    /// Total fetch-unit leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        let mut leak = self.icache.leakage + self.instruction_buffer.leakage + self.decoder_leakage;
        if let Some(b) = &self.btb {
            leak += b.leakage;
        }
        for a in self.predictor_arrays() {
            leak += a.leakage;
        }
        if let Some(r) = &self.ras {
            leak += r.leakage.scaled(f64::from(self.threads));
        }
        leak
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N90, DeviceType::Hp, 360.0)
    }

    #[test]
    fn ooo_ifu_builds_with_all_tables() {
        let ifu = Ifu::build(&tech(), &CoreConfig::generic_ooo()).unwrap();
        assert!(ifu.btb.is_some());
        assert!(ifu.global_predictor.is_some());
        assert!(ifu.predictor_lookup_energy() > 0.0);
        assert!(ifu.area() > 0.0);
    }

    #[test]
    fn niagara_ifu_skips_predictor_and_btb() {
        let ifu = Ifu::build(&tech(), &CoreConfig::niagara_like()).unwrap();
        assert!(ifu.btb.is_none());
        assert!(ifu.global_predictor.is_none());
        assert_eq!(ifu.predictor_lookup_energy(), 0.0);
    }

    #[test]
    fn icache_dominates_ifu_area() {
        let ifu = Ifu::build(&tech(), &CoreConfig::generic_ooo()).unwrap();
        assert!(ifu.icache.area > 0.3 * ifu.area());
    }

    #[test]
    fn decode_energy_is_positive_and_small() {
        let ifu = Ifu::build(&tech(), &CoreConfig::generic_inorder()).unwrap();
        assert!(ifu.decode_energy_per_inst > 1e-15);
        assert!(ifu.decode_energy_per_inst < 1e-10);
    }
}
