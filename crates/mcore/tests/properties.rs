#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Property-based tests for the core models.

use mcpat_mcore::config::CoreConfig;
use mcpat_mcore::core::CoreModel;
use mcpat_mcore::stats::CoreStats;
use mcpat_tech::{DeviceType, TechNode, TechParams};
use proptest::prelude::*;

fn tech() -> TechParams {
    TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
}

fn arb_inorder() -> impl Strategy<Value = CoreConfig> {
    (1u32..=4, 1u32..=8, 3u32..=16).prop_map(|(width, threads, depth)| {
        let mut c = CoreConfig::generic_inorder();
        c.fetch_width = width;
        c.decode_width = width;
        c.issue_width = width;
        c.commit_width = width;
        c.threads = threads;
        c.pipeline_depth = depth;
        c
    })
}

fn arb_ooo() -> impl Strategy<Value = CoreConfig> {
    (2u32..=8, 16u32..=128, 32u32..=256, 64u32..=256).prop_map(|(width, window, rob, regs)| {
        let mut c = CoreConfig::generic_ooo();
        c.fetch_width = width;
        c.decode_width = width;
        c.issue_width = width;
        c.commit_width = width;
        c.instruction_window_size = window;
        c.rob_size = rob;
        c.phys_int_regs = regs;
        c.phys_fp_regs = regs;
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_inorder_config_builds_with_positive_outputs(cfg in arb_inorder()) {
        let core = CoreModel::build(&tech(), &cfg).unwrap();
        prop_assert!(core.area() > 0.0 && core.area().is_finite());
        prop_assert!(core.leakage().total() > 0.0);
        let p = core.peak_power();
        prop_assert!(p.total() > 0.0 && p.total().is_finite());
        prop_assert!(core.max_clock_hz() > 1e8);
    }

    #[test]
    fn every_ooo_config_builds_with_positive_outputs(cfg in arb_ooo()) {
        let core = CoreModel::build(&tech(), &cfg).unwrap();
        prop_assert!(core.area() > 0.0 && core.area().is_finite());
        let p = core.peak_power();
        prop_assert!(p.total() > 0.0 && p.total().is_finite());
        // OoO cores must have window and rename entries in the breakdown.
        prop_assert!(p.component("window").is_some());
        prop_assert!(p.component("rename").is_some());
    }

    #[test]
    fn runtime_power_never_exceeds_event_linear_bound(
        cfg in arb_inorder(),
        scale in 1u64..8,
    ) {
        // Doubling every event count (at fixed cycles) must at most
        // double dynamic power (it is a linear model).
        let core = CoreModel::build(&tech(), &cfg).unwrap();
        let base = CoreStats::peak(1_000_000, cfg.issue_width, cfg.fp_issue_width);
        let mut scaled = base;
        let k = scale;
        scaled.int_ops *= k;
        scaled.loads *= k;
        scaled.stores *= k;
        scaled.fetches *= k;
        scaled.decodes *= k;
        scaled.issues *= k;
        let p0 = core.runtime_power(&base).dynamic();
        let p1 = core.runtime_power(&scaled).dynamic();
        prop_assert!(p1 <= p0 * k as f64 + 1e-9);
        prop_assert!(p1 >= p0 * 0.99);
    }

    #[test]
    fn leakage_is_independent_of_activity(cfg in arb_inorder(), busy in 0.0..1.0f64) {
        let core = CoreModel::build(&tech(), &cfg).unwrap();
        let mut stats = CoreStats::peak(1_000_000, cfg.issue_width, cfg.fp_issue_width);
        stats.idle_cycles = ((1.0 - busy) * 1_000_000.0) as u64;
        let p = core.runtime_power(&stats);
        let peak = core.peak_power();
        prop_assert!((p.leakage().total() - peak.leakage().total()).abs() < 1e-9);
    }

    #[test]
    fn wider_machines_are_never_smaller(cfg in arb_inorder()) {
        let t = tech();
        let base = CoreModel::build(&t, &cfg).unwrap();
        let mut wider = cfg.clone();
        wider.issue_width += 2;
        wider.fetch_width += 2;
        wider.decode_width += 2;
        wider.commit_width += 2;
        let big = CoreModel::build(&t, &wider).unwrap();
        prop_assert!(big.area() >= base.area() * 0.99);
    }
}
