#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Cross-unit integration tests of the core component models.

use mcpat_mcore::config::{CoreConfig, PredictorConfig};
use mcpat_mcore::core::CoreModel;
use mcpat_mcore::exu::{Exu, FuKind, FunctionalUnit};
use mcpat_mcore::ifu::Ifu;
use mcpat_mcore::lsu::Lsu;
use mcpat_mcore::rename::RenameUnit;
use mcpat_mcore::window::WindowUnit;
use mcpat_tech::{DeviceType, TechNode, TechParams};

fn tech() -> TechParams {
    TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
}

#[test]
fn predictor_tables_scale_lookup_energy() {
    let t = tech();
    let mut small = CoreConfig::generic_ooo();
    small.predictor = PredictorConfig {
        global_entries: 512,
        local_l1_entries: 128,
        local_l2_entries: 128,
        chooser_entries: 512,
        ras_entries: 8,
    };
    let big = CoreConfig::generic_ooo(); // 4K tables
    let ifu_small = Ifu::build(&t, &small).unwrap();
    let ifu_big = Ifu::build(&t, &big).unwrap();
    assert!(ifu_big.predictor_lookup_energy() > ifu_small.predictor_lookup_energy());
    assert!(ifu_big.area() > ifu_small.area());
}

#[test]
fn wider_decode_costs_more_decode_energy_total() {
    let t = tech();
    let mut narrow = CoreConfig::generic_ooo();
    narrow.decode_width = 2;
    let mut wide = CoreConfig::generic_ooo();
    wide.decode_width = 8;
    let n = Ifu::build(&t, &narrow).unwrap();
    let w = Ifu::build(&t, &wide).unwrap();
    // Per-instruction decode energy is constant; total decoder area grows.
    assert!((n.decode_energy_per_inst - w.decode_energy_per_inst).abs() < 1e-18);
    assert!(w.decoder_area > 3.0 * n.decoder_area);
}

#[test]
fn store_queue_search_dominates_lsu_queue_energy() {
    let t = tech();
    let lsu = Lsu::build(&t, &CoreConfig::generic_ooo()).unwrap();
    // A load must search the store queue — an associative op that costs
    // more than the FIFO insert.
    assert!(lsu.store_queue.search_energy > lsu.load_queue.write_energy * 0.2);
}

#[test]
fn rename_energy_grows_with_physical_registers() {
    let t = tech();
    let mut small = CoreConfig::generic_ooo();
    small.phys_int_regs = 64;
    small.phys_fp_regs = 64;
    let mut big = CoreConfig::generic_ooo();
    big.phys_int_regs = 512;
    big.phys_fp_regs = 512;
    let rs = RenameUnit::build(&t, &small).unwrap().unwrap();
    let rb = RenameUnit::build(&t, &big).unwrap().unwrap();
    // Wider tags and a bigger free list make renaming dearer.
    assert!(rb.rename_energy_per_inst(false) > rs.rename_energy_per_inst(false));
}

#[test]
fn fp_window_is_cheaper_than_int_window_when_smaller() {
    let t = tech();
    let cfg = CoreConfig::generic_ooo(); // fp window 16 < int window 32
    let w = WindowUnit::build(&t, &cfg).unwrap().unwrap();
    let fp = w.fp_window.as_ref().unwrap();
    assert!(fp.area < w.int_window.area);
}

#[test]
fn exu_bypass_grows_with_datapath_width() {
    let t = tech();
    let mut narrow = CoreConfig::generic_ooo();
    narrow.word_bits = 32;
    let mut wide = CoreConfig::generic_ooo();
    wide.word_bits = 128;
    let en = Exu::build(&t, &narrow);
    let ew = Exu::build(&t, &wide);
    assert!(ew.bypass_energy_per_transfer > 1.5 * en.bypass_energy_per_transfer);
}

#[test]
fn functional_unit_leakage_tracks_temperature() {
    let hot = TechParams::new(TechNode::N65, DeviceType::Hp, 390.0);
    let cold = TechParams::new(TechNode::N65, DeviceType::Hp, 320.0);
    let fu_hot = FunctionalUnit::new(&hot, FuKind::Fpu);
    let fu_cold = FunctionalUnit::new(&cold, FuKind::Fpu);
    assert!(fu_hot.leakage.total() > 3.0 * fu_cold.leakage.total());
    // Dynamic energy is temperature-independent.
    assert!((fu_hot.energy_per_op - fu_cold.energy_per_op).abs() < 1e-18);
}

#[test]
fn zero_fpu_cores_have_zero_fpu_power_items() {
    let t = tech();
    let mut cfg = CoreConfig::niagara_like();
    cfg.num_fpus = 0;
    let core = CoreModel::build(&t, &cfg).unwrap();
    // FP ops would still be charged per-op if they occurred, but the
    // idle FPU contributes no leakage.
    let leak_no_fpu = core.exu.leakage().total();
    cfg.num_fpus = 2;
    let with = CoreModel::build(&t, &cfg).unwrap();
    assert!(with.exu.leakage().total() > leak_no_fpu);
}

#[test]
fn smt_threads_grow_fetch_state_not_alus() {
    let t = tech();
    let mut one = CoreConfig::generic_inorder();
    one.threads = 1;
    let mut eight = CoreConfig::generic_inorder();
    eight.threads = 8;
    let c1 = CoreModel::build(&t, &one).unwrap();
    let c8 = CoreModel::build(&t, &eight).unwrap();
    // Thread state multiplies the IFU buffers and register files...
    assert!(c8.ifu.area() > c1.ifu.area());
    assert!(c8.regs.area() > 4.0 * c1.regs.area());
    // ...but the execution units are shared.
    assert!((c8.exu.area() - c1.exu.area()).abs() < c1.exu.area() * 1e-9);
}

#[test]
fn relaxation_warnings_name_the_degraded_arrays() {
    let t = tech();
    let mut cfg = CoreConfig::generic_ooo();
    cfg.clock_hz = 500e9; // 2 ps cycle: nothing meets it
    cfg.enforce_timing = true;
    let core = CoreModel::build(&t, &cfg).expect("infeasible clocks degrade, not fail");
    let warnings = core.relaxation_warnings();
    assert!(!warnings.is_empty());
    for w in &warnings {
        assert!(!w.path.is_empty(), "every warning must name its array: {w}");
    }
    // The latency-critical register file is among the degraded arrays.
    assert!(
        warnings.iter().any(|w| w.path.contains("regfile")),
        "expected a register-file relaxation:\n{warnings}"
    );
}
