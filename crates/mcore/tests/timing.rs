#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Integration tests of the EIO timing-constraint enforcement: when
//! `enforce_timing` is set, the latency-critical arrays must meet the
//! clock, or the solver degrades along its relaxation ladder and the
//! build carries warnings saying so.

use mcpat_mcore::config::CoreConfig;
use mcpat_mcore::core::CoreModel;
use mcpat_tech::{DeviceType, TechNode, TechParams};

fn tech(node: TechNode) -> TechParams {
    TechParams::new(node, DeviceType::Hp, 360.0)
}

#[test]
fn feasible_clock_builds_and_meets_the_cycle() {
    let mut cfg = CoreConfig::generic_inorder();
    cfg.clock_hz = 2.0e9;
    cfg.enforce_timing = true;
    let core = CoreModel::build(&tech(TechNode::N45), &cfg).unwrap();
    let cycle = 1.0 / cfg.clock_hz;
    assert!(core.regs.int_rf.cycle_time <= cycle + 1e-15);
    assert!(core.ifu.icache.cycle_time <= cycle + 1e-15);
    assert!(core.lsu.dcache.cycle_time <= cycle + 1e-15);
    assert!(core.max_clock_hz() >= cfg.clock_hz);
}

#[test]
fn absurd_clock_degrades_gracefully_with_warnings() {
    let mut cfg = CoreConfig::generic_inorder();
    cfg.clock_hz = 200.0e9; // 5 ps cycle: impossible
    cfg.enforce_timing = true;
    let core = CoreModel::build(&tech(TechNode::N45), &cfg)
        .expect("an infeasible clock must degrade, not fail");
    let warnings = core.relaxation_warnings();
    assert!(
        !warnings.is_empty(),
        "a relaxed build must warn about every degraded array"
    );
    let text = warnings.to_string();
    assert!(
        text.contains("cycle-time constraint"),
        "warnings should name the relaxed constraint:\n{text}"
    );
    // The reported cycle times are honest: they exceed the impossible
    // 5 ps target rather than pretending to meet it.
    assert!(core.max_clock_hz() < cfg.clock_hz);
}

#[test]
fn feasible_enforced_builds_carry_no_relaxation_warnings() {
    let mut cfg = CoreConfig::generic_inorder();
    cfg.clock_hz = 1.0e9;
    cfg.enforce_timing = true;
    let core = CoreModel::build(&tech(TechNode::N45), &cfg).unwrap();
    let w = core.relaxation_warnings();
    assert!(w.is_empty(), "unexpected relaxations: {w}");
}

#[test]
fn enforcement_changes_the_chosen_partitions() {
    // At a tight clock the optimizer must pick a faster (usually more
    // banked, more energetic) organization than the unconstrained
    // energy-delay optimum.
    let mut relaxed = CoreConfig::generic_ooo();
    relaxed.clock_hz = 3.5e9;
    relaxed.enforce_timing = false;
    let mut tight = relaxed.clone();
    tight.enforce_timing = true;

    let t = tech(TechNode::N32);
    let core_relaxed = CoreModel::build(&t, &relaxed).unwrap();
    let core_tight = CoreModel::build(&t, &tight).unwrap();
    assert!(
        core_tight.lsu.dcache.cycle_time <= 1.0 / 3.5e9 + 1e-15,
        "tight build must meet the clock"
    );
    // The unconstrained build is allowed to be slower (and usually is).
    assert!(core_relaxed.lsu.dcache.cycle_time >= core_tight.lsu.dcache.cycle_time * 0.99);
}

#[test]
fn unconstrained_build_is_unchanged_by_default() {
    let cfg = CoreConfig::generic_inorder();
    assert!(!cfg.enforce_timing, "enforcement must be opt-in");
    let core = CoreModel::build(&tech(TechNode::N90), &cfg).unwrap();
    assert!(core.area() > 0.0);
}

#[test]
fn validation_presets_meet_their_clocks_when_enforced() {
    // The four validation chips shipped at their published clocks, so
    // enforcement must succeed for them (Tulsa pipelines its L1 over two
    // cycles, so it is exempted here).
    for (cfg, node) in [
        (CoreConfig::niagara_like(), TechNode::N90),
        (CoreConfig::niagara2_like(), TechNode::N65),
        (CoreConfig::alpha21364_like(), TechNode::N180),
    ] {
        let mut cfg = cfg;
        cfg.enforce_timing = true;
        CoreModel::build(&tech(node), &cfg)
            .unwrap_or_else(|e| panic!("{} must meet its clock: {e}", cfg.name));
    }
}
