//! Optimally repeated wires.
//!
//! Long on-chip wires are broken into segments driven by inverter
//! repeaters. The delay-optimal segment length and repeater size have the
//! classical closed forms; McPAT's optimizer additionally *derates* the
//! repeaters (smaller, sparser) to trade a bounded delay penalty for large
//! energy savings — the "10% delay for 30%+ power" knob the paper
//! describes. Both modes are exposed here.

use crate::gate::{GateKind, LogicGate};
use crate::metrics::{CircuitMetrics, StaticPower};
use mcpat_tech::{TechParams, WireType};

/// A wire of a given class and length driven through sized repeaters.
///
/// # Examples
///
/// ```
/// use mcpat_circuit::repeater::RepeatedWire;
/// use mcpat_tech::{TechNode, DeviceType, TechParams, WireType};
///
/// let tech = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
/// let fast = RepeatedWire::delay_optimal(&tech, WireType::Global, 5e-3);
/// let frugal = RepeatedWire::energy_derated(&tech, WireType::Global, 5e-3, 1.10);
/// assert!(frugal.metrics.delay <= fast.metrics.delay * 1.11);
/// assert!(frugal.metrics.energy_per_op < fast.metrics.energy_per_op);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatedWire {
    /// Wire class used.
    pub wire_type: WireType,
    /// Total length, m.
    pub length: f64,
    /// Number of repeater stages.
    pub num_repeaters: usize,
    /// Repeater drive strength (minimum-inverter multiples).
    pub repeater_size: f64,
    /// Resulting metrics for one bit-transition end to end.
    pub metrics: CircuitMetrics,
}

/// Repeater size derating factors swept by `energy_derated`; index 0 is
/// the delay-optimal sizing.
const SIZE_DERATES: [f64; 6] = [1.0, 0.8, 0.6, 0.5, 0.4, 0.3];

/// Segment-spacing derating factors swept by `energy_derated`.
const SPACING_DERATES: [f64; 5] = [1.0, 1.25, 1.5, 2.0, 2.5];

impl RepeatedWire {
    /// Sizes repeaters for minimum delay.
    #[must_use]
    pub fn delay_optimal(tech: &TechParams, wire_type: WireType, length: f64) -> RepeatedWire {
        Self::build(tech, wire_type, length, 1.0, 1.0)
    }

    /// Derates repeaters for energy: repeater size and density are reduced
    /// until the delay reaches `delay_tolerance` × the optimal delay
    /// (e.g. `1.10` allows 10% slower).
    ///
    /// A tolerance below 1.0 (or non-finite) is clamped to 1.0 — the
    /// delay-optimal design always satisfies its own delay.
    #[must_use]
    pub fn energy_derated(
        tech: &TechParams,
        wire_type: WireType,
        length: f64,
        delay_tolerance: f64,
    ) -> RepeatedWire {
        let delay_tolerance = if delay_tolerance.is_finite() {
            delay_tolerance.max(1.0)
        } else {
            1.0
        };
        let optimal = Self::delay_optimal(tech, wire_type, length);
        let budget = optimal.metrics.delay * delay_tolerance;
        let mut best = optimal;
        // Sweep size/spacing derating factors; keep the lowest-energy
        // solution inside the delay budget.
        // lint: allow(L012, RepeatedWire::build is closed-form arithmetic — 30 combinations run in microseconds, no solver)
        for size_derate in SIZE_DERATES {
            // lint: allow(L012, RepeatedWire::build is closed-form arithmetic — 30 combinations run in microseconds, no solver)
            for spacing_derate in SPACING_DERATES {
                let cand = Self::build(tech, wire_type, length, size_derate, spacing_derate);
                if cand.metrics.delay <= budget
                    && cand.metrics.energy_per_op < best.metrics.energy_per_op
                {
                    best = cand;
                }
            }
        }
        best
    }

    /// Builds a repeated wire with explicit derating factors applied to the
    /// closed-form optimal repeater size (`size_derate ≤ 1`) and segment
    /// length (`spacing_derate ≥ 1`).
    #[must_use]
    pub fn build(
        tech: &TechParams,
        wire_type: WireType,
        length: f64,
        size_derate: f64,
        spacing_derate: f64,
    ) -> RepeatedWire {
        let wire = tech.wire(wire_type);
        let min_inv = LogicGate::new(tech, GateKind::Inverter, 1.0);
        let c0 = min_inv.input_cap() + min_inv.self_cap();
        let r0 = tech.r_eq_n(tech.min_w_nmos());

        // Classical optima for a repeated RC line.
        let l_opt = (2.0 * r0 * c0 / (0.38 * wire.r_per_m * wire.c_per_m)).sqrt();
        let s_opt = ((r0 * wire.c_per_m) / (wire.r_per_m * min_inv.input_cap())).sqrt();

        let seg_len = (l_opt * spacing_derate).min(length.max(1e-9));
        let size = (s_opt * size_derate).max(1.0);
        let num_repeaters = (length / seg_len).ceil().max(1.0) as usize;
        let seg_len = length / num_repeaters as f64;

        let repeater = LogicGate::new(tech, GateKind::Inverter, size);
        let c_wire_seg = wire.c_per_m * seg_len;
        let r_wire_seg = wire.r_per_m * seg_len;
        let c_next = repeater.input_cap();

        // Per-segment Elmore delay: driver through its own R, then the
        // distributed wire, into the next repeater's gate.
        let r_drv = tech.r_eq_n(tech.min_w_nmos()) / size;
        let seg_delay = 0.69 * r_drv * (repeater.self_cap() + c_wire_seg + c_next)
            + 0.38 * r_wire_seg * c_wire_seg
            + 0.69 * r_wire_seg * c_next;
        let seg_energy = tech.switch_energy(repeater.self_cap() + c_wire_seg + c_next);

        let k = num_repeaters as f64;
        let metrics = CircuitMetrics {
            area: repeater.area() * k,
            delay: seg_delay * k,
            energy_per_op: seg_energy * k,
            leakage: StaticPower {
                subthreshold: repeater.leakage().subthreshold * k,
                gate: repeater.leakage().gate * k,
            },
        };
        RepeatedWire {
            wire_type,
            length,
            num_repeaters,
            repeater_size: size,
            metrics,
        }
    }

    /// Delay per unit length, s/m (the figure of merit plotted in the
    /// interconnect-projection figure).
    #[must_use]
    pub fn delay_per_m(&self) -> f64 {
        self.metrics.delay / self.length
    }

    /// Energy per unit length per transition, J/m.
    #[must_use]
    pub fn energy_per_m(&self) -> f64 {
        self.metrics.energy_per_op / self.length
    }
}

/// One precomputed repeater prototype of the derating sweep.
#[derive(Debug, Clone, Copy)]
struct RepeaterGate {
    size: f64,
    input_cap: f64,
    self_cap: f64,
    area: f64,
    leak: StaticPower,
}

/// Everything in [`RepeatedWire::build`] that does not depend on the wire
/// *length*: wire RC per metre, the min-inverter constants, the classical
/// `l_opt`/`s_opt` optima (one `sqrt` each), and one sized repeater gate
/// per entry of the derating sweep. Hoisted once per `(corner, wire
/// class)` so a partition sweep evaluating thousands of H-trees pays only
/// the per-length Elmore arithmetic.
///
/// Every cached value is the result of the identical expression the
/// uncached path evaluates, so [`RepeaterInvariants::energy_derated`] is
/// bit-identical to [`RepeatedWire::energy_derated`]
/// (`invariants_match_reference_bit_for_bit` below enforces this).
#[derive(Debug, Clone, Copy)]
pub struct RepeaterInvariants {
    wire_type: WireType,
    r_per_m: f64,
    c_per_m: f64,
    r0: f64,
    l_opt: f64,
    vdd: f64,
    gates: [RepeaterGate; 6],
}

impl RepeaterInvariants {
    /// Hoists the length-independent parts of a repeated-wire build.
    #[must_use]
    pub fn new(tech: &TechParams, wire_type: WireType) -> RepeaterInvariants {
        let wire = tech.wire(wire_type);
        let min_inv = LogicGate::new(tech, GateKind::Inverter, 1.0);
        let c0 = min_inv.input_cap() + min_inv.self_cap();
        let r0 = tech.r_eq_n(tech.min_w_nmos());
        let l_opt = (2.0 * r0 * c0 / (0.38 * wire.r_per_m * wire.c_per_m)).sqrt();
        let s_opt = ((r0 * wire.c_per_m) / (wire.r_per_m * min_inv.input_cap())).sqrt();
        let gates = SIZE_DERATES.map(|size_derate| {
            let size = (s_opt * size_derate).max(1.0);
            let g = LogicGate::new(tech, GateKind::Inverter, size);
            RepeaterGate {
                size,
                input_cap: g.input_cap(),
                self_cap: g.self_cap(),
                area: g.area(),
                leak: g.leakage(),
            }
        });
        RepeaterInvariants {
            wire_type,
            r_per_m: wire.r_per_m,
            c_per_m: wire.c_per_m,
            r0,
            l_opt,
            vdd: tech.device.vdd,
            gates,
        }
    }

    /// The fast equivalent of [`RepeatedWire::build`] for one sweep entry.
    fn build(&self, length: f64, gate_idx: usize, spacing_derate: f64) -> RepeatedWire {
        let seg_len = (self.l_opt * spacing_derate).min(length.max(1e-9));
        // lint: allow(L001, index is reduced modulo the array length so it is always in bounds)
        let gate = self.gates[gate_idx % self.gates.len()];
        let num_repeaters = (length / seg_len).ceil().max(1.0) as usize;
        let seg_len = length / num_repeaters as f64;

        let c_wire_seg = self.c_per_m * seg_len;
        let r_wire_seg = self.r_per_m * seg_len;
        let c_next = gate.input_cap;

        let r_drv = self.r0 / gate.size;
        let seg_delay = 0.69 * r_drv * (gate.self_cap + c_wire_seg + c_next)
            + 0.38 * r_wire_seg * c_wire_seg
            + 0.69 * r_wire_seg * c_next;
        // Same operation sequence as `TechParams::switch_energy`.
        let seg_energy = 0.5 * (gate.self_cap + c_wire_seg + c_next) * self.vdd * self.vdd;

        let k = num_repeaters as f64;
        let metrics = CircuitMetrics {
            area: gate.area * k,
            delay: seg_delay * k,
            energy_per_op: seg_energy * k,
            leakage: StaticPower {
                subthreshold: gate.leak.subthreshold * k,
                gate: gate.leak.gate * k,
            },
        };
        RepeatedWire {
            wire_type: self.wire_type,
            length,
            num_repeaters,
            repeater_size: gate.size,
            metrics,
        }
    }

    /// The fast equivalent of [`RepeatedWire::energy_derated`]:
    /// bit-identical output, no per-call `sqrt`/`exp`/gate sizing.
    #[must_use]
    pub fn energy_derated(&self, length: f64, delay_tolerance: f64) -> RepeatedWire {
        let delay_tolerance = if delay_tolerance.is_finite() {
            delay_tolerance.max(1.0)
        } else {
            1.0
        };
        let optimal = self.build(length, 0, 1.0);
        let budget = optimal.metrics.delay * delay_tolerance;
        let mut best = optimal;
        // lint: allow(L012, closed-form arithmetic over 30 precomputed combinations — no solver)
        for gate_idx in 0..SIZE_DERATES.len() {
            // lint: allow(L012, closed-form arithmetic over 30 precomputed combinations — no solver)
            for spacing_derate in SPACING_DERATES {
                let cand = self.build(length, gate_idx, spacing_derate);
                if cand.metrics.delay <= budget
                    && cand.metrics.energy_per_op < best.metrics.energy_per_op
                {
                    best = cand;
                }
            }
        }
        best
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode, WireProjection};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
    }

    #[test]
    fn repeated_beats_unrepeated_on_long_wires() {
        let t = tech();
        let len = 5e-3;
        let rep = RepeatedWire::delay_optimal(&t, WireType::Global, len);
        let raw = t.wire(WireType::Global).unrepeated_delay(len);
        assert!(rep.metrics.delay < raw);
    }

    #[test]
    fn delay_is_linear_in_length_once_repeated() {
        let t = tech();
        let d1 = RepeatedWire::delay_optimal(&t, WireType::Global, 2e-3)
            .metrics
            .delay;
        let d2 = RepeatedWire::delay_optimal(&t, WireType::Global, 4e-3)
            .metrics
            .delay;
        let ratio = d2 / d1;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio = {ratio}");
    }

    #[test]
    fn derating_saves_energy_within_budget() {
        let t = tech();
        let opt = RepeatedWire::delay_optimal(&t, WireType::Global, 10e-3);
        let der = RepeatedWire::energy_derated(&t, WireType::Global, 10e-3, 1.2);
        assert!(der.metrics.energy_per_op < opt.metrics.energy_per_op);
        assert!(der.metrics.delay <= opt.metrics.delay * 1.2 * (1.0 + 1e-9));
    }

    #[test]
    fn conservative_wires_are_slower() {
        let t = tech();
        let tc = t.with_projection(WireProjection::Conservative);
        let a = RepeatedWire::delay_optimal(&t, WireType::Global, 5e-3);
        let c = RepeatedWire::delay_optimal(&tc, WireType::Global, 5e-3);
        assert!(c.metrics.delay > a.metrics.delay);
    }

    #[test]
    fn global_wire_speed_is_plausible() {
        // Delay-optimal repeated global wires run ≈ 30–150 ps/mm at 45 nm.
        let t = tech();
        let rep = RepeatedWire::delay_optimal(&t, WireType::Global, 1e-3);
        let ps_per_mm = rep.delay_per_m() * 1e12 * 1e-3;
        assert!(ps_per_mm > 10.0 && ps_per_mm < 300.0, "{ps_per_mm} ps/mm");
    }

    #[test]
    fn short_wires_get_one_repeater() {
        let t = tech();
        let rep = RepeatedWire::delay_optimal(&t, WireType::Local, 10e-6);
        assert_eq!(rep.num_repeaters, 1);
    }

    #[test]
    fn invariants_match_reference_bit_for_bit() {
        for node in [TechNode::N90, TechNode::N22] {
            for proj in [WireProjection::Aggressive, WireProjection::Conservative] {
                let t = TechParams::new(node, DeviceType::Hp, 360.0).with_projection(proj);
                for wt in [WireType::Local, WireType::Intermediate, WireType::Global] {
                    let inv = RepeaterInvariants::new(&t, wt);
                    for length in [5e-6, 120e-6, 1.7e-3, 12e-3] {
                        for tol in [1.0, 1.10, 1.5, f64::NAN] {
                            let fast = inv.energy_derated(length, tol);
                            let reference = RepeatedWire::energy_derated(&t, wt, length, tol);
                            assert_eq!(fast.num_repeaters, reference.num_repeaters);
                            assert_eq!(
                                fast.repeater_size.to_bits(),
                                reference.repeater_size.to_bits()
                            );
                            for (a, b, field) in [
                                (fast.metrics.delay, reference.metrics.delay, "delay"),
                                (
                                    fast.metrics.energy_per_op,
                                    reference.metrics.energy_per_op,
                                    "energy",
                                ),
                                (fast.metrics.area, reference.metrics.area, "area"),
                                (
                                    fast.metrics.leakage.subthreshold,
                                    reference.metrics.leakage.subthreshold,
                                    "sub",
                                ),
                                (
                                    fast.metrics.leakage.gate,
                                    reference.metrics.leakage.gate,
                                    "gate",
                                ),
                            ] {
                                assert_eq!(
                                    a.to_bits(),
                                    b.to_bits(),
                                    "{node:?}/{proj:?}/{wt:?} len {length:e} tol {tol}: {field}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
