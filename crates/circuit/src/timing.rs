//! Slope-aware delay helpers.
//!
//! Most of the framework uses the 0.69·RC Elmore approximation, but the
//! sense-amplifier input path in the array model is sensitive to the input
//! slope, for which CACTI (and hence McPAT) uses Horowitz's approximation.

/// Horowitz delay approximation.
///
/// * `input_ramp` — 10–90% rise time of the driving signal, s;
/// * `tf` — RC time constant of the driven node, s;
/// * `v_s` — switching threshold as a fraction of the supply (typically
///   0.5 for static logic);
///
/// Returns the 50% crossing delay, s.
///
/// # Examples
///
/// ```
/// use mcpat_circuit::timing::horowitz;
/// let step = horowitz(0.0, 1e-10, 0.5);
/// let slow = horowitz(4e-10, 1e-10, 0.5);
/// assert!(slow > step, "slow input edges increase delay");
/// ```
#[must_use]
pub fn horowitz(input_ramp: f64, tf: f64, v_s: f64) -> f64 {
    // CACTI's formulation: delay = tf·√(ln(vs)² + 2·a·b·(1−vs)),
    // a = ramp/tf, b = 0.5; a step input reduces to tf·|ln(vs)|.
    //
    // Degenerate inputs reduce to limiting cases instead of emitting
    // NaN: a non-positive time constant has no delay to model (the
    // ramp/tf quotient would be ∞ and 0·∞ = NaN), a threshold outside
    // (0, 1) clamps to the valid range (ln of a non-positive value is
    // NaN), and a non-positive or non-finite ramp uses the step limit.
    if !tf.is_finite() || tf <= 0.0 {
        return 0.0;
    }
    let v_s = if v_s.is_finite() {
        v_s.clamp(1e-6, 1.0 - 1e-6)
    } else {
        0.5
    };
    let log_vs = v_s.ln();
    if !input_ramp.is_finite() || input_ramp <= 0.0 {
        return tf * (-log_vs);
    }
    let a = input_ramp / tf;
    let b = 0.5;
    tf * (log_vs * log_vs + 2.0 * a * b * (1.0 - v_s)).sqrt()
}

/// 10–90% output rise time of an RC node given its time constant, s.
#[must_use]
pub fn rise_time(tf: f64) -> f64 {
    2.2 * tf
}

/// Elmore delay (50% point) of a lumped RC, s.
#[must_use]
pub fn elmore(r: f64, c: f64) -> f64 {
    0.69 * r * c
}

/// Elmore delay of a distributed RC line of total resistance `r` and total
/// capacitance `c`, s.
#[must_use]
pub fn elmore_distributed(r: f64, c: f64) -> f64 {
    0.38 * r * c
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn horowitz_degenerate_inputs_stay_finite() {
        // The committed proptest regression: a near-step input ramp must
        // not blow up relative to the true step response.
        let ramp = 1e-12;
        let tf = 5.284_044_098_263_197e-10;
        let slow = horowitz(ramp, tf, 0.5);
        let step = horowitz(0.0, tf, 0.5);
        assert!(slow.is_finite() && slow >= step * 0.99);
        // Zero/negative/non-finite time constants and out-of-range
        // thresholds reduce to limits instead of NaN.
        for (ramp, tf, vs) in [
            (1e-10, 0.0, 0.5),
            (1e-10, -1.0, 0.5),
            (1e-10, f64::NAN, 0.5),
            (1e-10, 1e-10, 0.0),
            (1e-10, 1e-10, 1.0),
            (1e-10, 1e-10, -3.0),
            (1e-10, 1e-10, f64::NAN),
            (f64::NAN, 1e-10, 0.5),
            (f64::INFINITY, 1e-10, 0.5),
        ] {
            let d = horowitz(ramp, tf, vs);
            assert!(d.is_finite() && d >= 0.0, "({ramp}, {tf}, {vs}) -> {d}");
        }
    }

    #[test]
    fn horowitz_reduces_to_rc_for_step_input() {
        let tf = 2e-10;
        let d = horowitz(0.0, tf, 0.5);
        assert!((d - tf * 2.0_f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn horowitz_is_monotone_in_ramp() {
        let tf = 1e-10;
        let mut last = 0.0;
        for ramp in [1e-11, 5e-11, 1e-10, 5e-10] {
            let d = horowitz(ramp, tf, 0.5);
            assert!(d > last);
            last = d;
        }
    }

    #[test]
    fn distributed_is_faster_than_lumped() {
        assert!(elmore_distributed(100.0, 1e-12) < elmore(100.0, 1e-12));
    }

    #[test]
    fn rise_time_is_2p2_tau() {
        assert!((rise_time(1e-10) - 2.2e-10).abs() < 1e-20);
    }
}
