//! Hierarchical row decoders.
//!
//! Array wordlines are selected by a two-level structure: 2-bit NAND
//! pre-decoders whose outputs run across the array edge, followed by a
//! final NOR/NAND row gate plus wordline driver per row. The same
//! structure decodes register identifiers in RAM-based rename tables and
//! register files.

use crate::gate::{BufferChain, GateKind, LogicGate};
use crate::metrics::CircuitMetrics;
use mcpat_tech::TechParams;

/// A row decoder selecting 1 of `num_rows` outputs and driving a wordline
/// load per selected row.
///
/// # Examples
///
/// ```
/// use mcpat_circuit::decoder::RowDecoder;
/// use mcpat_tech::{TechNode, DeviceType, TechParams};
///
/// let tech = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
/// let dec = RowDecoder::new(&tech, 256, 50e-15);
/// assert_eq!(dec.address_bits(), 8);
/// assert!(dec.metrics().delay > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RowDecoder {
    num_rows: usize,
    address_bits: u32,
    /// All predecoders are identically sized 2-input NANDs, so one
    /// prototype plus a count replaces the per-candidate `Vec` the
    /// partition sweep used to allocate on every evaluation.
    predecoder: LogicGate,
    num_predecoders: u32,
    row_gate: LogicGate,
    wordline_driver: BufferChain,
    tech: TechParams,
}

impl RowDecoder {
    /// Builds a decoder for `num_rows` rows (clamped to ≥ 1), each
    /// presenting `c_wordline` farads of wordline load.
    #[must_use]
    pub fn new(tech: &TechParams, num_rows: usize, c_wordline: f64) -> RowDecoder {
        let num_rows = num_rows.max(1);
        let address_bits = (num_rows.max(2) as f64).log2().ceil() as u32;
        // One 2-bit (4-output) predecoder per address-bit pair.
        let num_predecoders = address_bits.div_ceil(2);
        let predecoder = LogicGate::new(tech, GateKind::Nand(2), 2.0);
        // Final row gate combines predecoder outputs.
        let fan_in = num_predecoders.clamp(2, 4);
        let row_gate = LogicGate::new(tech, GateKind::Nand(fan_in), 1.0);
        let wordline_driver = BufferChain::for_load(tech, c_wordline.max(1e-18));
        RowDecoder {
            num_rows,
            address_bits,
            predecoder,
            num_predecoders,
            row_gate,
            wordline_driver,
            tech: *tech,
        }
    }

    /// Number of address bits decoded.
    #[must_use]
    pub fn address_bits(&self) -> u32 {
        self.address_bits
    }

    /// Number of selectable rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Capacitance presented per address bit to the address bus, F.
    #[must_use]
    pub fn input_cap_per_bit(&self) -> f64 {
        // Each address bit (true + complement) feeds half the predecoder
        // inputs on average.
        if self.num_predecoders == 0 {
            return 0.0;
        }
        2.0 * self.predecoder.input_cap()
    }

    /// Metrics of one decode operation (one row fires).
    #[must_use]
    pub fn metrics(&self) -> CircuitMetrics {
        // Delay path: predecoder → predecode wire (ignored, short) →
        // row gate → wordline driver.
        // The predecoder output loads: num_rows/4 row-gate inputs hang off
        // each predecode line.
        let rows_per_line = (self.num_rows as f64 / 4.0).max(1.0);
        let predecode_load = rows_per_line * self.row_gate.input_cap();
        let pre = if self.num_predecoders == 0 {
            CircuitMetrics::zero()
        } else {
            self.predecoder.metrics(predecode_load)
        };
        let row = self.row_gate.metrics(self.wordline_driver.input_cap());
        let driver = self.wordline_driver.metrics();

        // Energy: all predecoders switch; one predecode line per group
        // toggles; one row gate and one driver fire. Area: predecoders +
        // one row gate and driver *per row*.
        let num_pre = f64::from(self.num_predecoders);
        let energy = pre.energy_per_op * num_pre + row.energy_per_op + driver.energy_per_op;
        let area = pre.area * num_pre + (row.area + driver.area) * self.num_rows as f64;
        let leakage = pre.leakage.scaled(num_pre)
            + (row.leakage + driver.leakage).scaled(self.num_rows as f64);
        let _ = self.tech;
        CircuitMetrics {
            area,
            delay: pre.delay + row.delay + driver.delay,
            energy_per_op: energy,
            leakage,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
    }

    #[test]
    fn address_bits_round_up() {
        let t = tech();
        assert_eq!(RowDecoder::new(&t, 100, 1e-15).address_bits(), 7);
        assert_eq!(RowDecoder::new(&t, 128, 1e-15).address_bits(), 7);
        assert_eq!(RowDecoder::new(&t, 129, 1e-15).address_bits(), 8);
    }

    #[test]
    fn bigger_decoders_are_slower_and_hungrier() {
        let t = tech();
        let small = RowDecoder::new(&t, 64, 20e-15).metrics();
        let big = RowDecoder::new(&t, 4096, 20e-15).metrics();
        assert!(big.delay > small.delay);
        assert!(big.area > small.area);
        assert!(big.leakage.total() > small.leakage.total());
    }

    #[test]
    fn heavier_wordlines_need_longer_driver_chains() {
        let t = tech();
        let light = RowDecoder::new(&t, 256, 5e-15).metrics();
        let heavy = RowDecoder::new(&t, 256, 500e-15).metrics();
        assert!(heavy.delay > light.delay);
        assert!(heavy.energy_per_op > light.energy_per_op);
    }

    #[test]
    fn single_row_degenerate_case_works() {
        let t = tech();
        let d = RowDecoder::new(&t, 1, 1e-15);
        assert!(d.metrics().delay > 0.0);
    }
}
