//! Static CMOS gates sized by the method of logical effort.
//!
//! McPAT sizes all random logic with logical effort: a gate's delay is
//! `d = τ·(g·h + p)` where `g` is the logical effort of its topology, `h`
//! the electrical fanout (load/input capacitance), `p` its parasitic
//! delay, and `τ` the process time constant. Energy and leakage come from
//! the resulting transistor widths.

use crate::metrics::{CircuitMetrics, StaticPower};
use mcpat_tech::TechParams;

/// The supported gate topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// A plain inverter.
    Inverter,
    /// An `n`-input NAND.
    Nand(u32),
    /// An `n`-input NOR.
    Nor(u32),
}

impl GateKind {
    /// Logical effort `g` relative to an inverter.
    #[must_use]
    pub fn logical_effort(self) -> f64 {
        match self {
            GateKind::Inverter => 1.0,
            GateKind::Nand(n) => (f64::from(n) + 2.0) / 3.0,
            GateKind::Nor(n) => (2.0 * f64::from(n) + 1.0) / 3.0,
        }
    }

    /// Parasitic delay `p` in units of the inverter parasitic.
    #[must_use]
    pub fn parasitic(self) -> f64 {
        match self {
            GateKind::Inverter => 1.0,
            GateKind::Nand(n) | GateKind::Nor(n) => f64::from(n),
        }
    }

    /// Number of inputs.
    #[must_use]
    pub fn fan_in(self) -> u32 {
        match self {
            GateKind::Inverter => 1,
            GateKind::Nand(n) | GateKind::Nor(n) => n,
        }
    }
}

/// A sized static CMOS gate.
///
/// # Examples
///
/// ```
/// use mcpat_circuit::gate::{GateKind, LogicGate};
/// use mcpat_tech::{TechNode, DeviceType, TechParams};
///
/// let tech = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
/// let inv = LogicGate::new(&tech, GateKind::Inverter, 4.0);
/// let nand = LogicGate::new(&tech, GateKind::Nand(2), 4.0);
/// // Same drive, but the NAND presents more input capacitance.
/// assert!(nand.input_cap() > inv.input_cap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicGate {
    kind: GateKind,
    /// Drive strength as a multiple of the minimum inverter.
    size: f64,
    /// Total NMOS width, m.
    w_n: f64,
    /// Total PMOS width, m.
    w_p: f64,
    tech: TechParams,
}

/// Leakage reduction per extra series device in a stack (the stack effect).
const STACK_FACTOR: f64 = 0.2;

impl LogicGate {
    /// Creates a gate of the given topology with drive strength `size`
    /// (multiples of the minimum inverter; clamped to ≥ 1, the minimum
    /// realizable device).
    #[must_use]
    pub fn new(tech: &TechParams, kind: GateKind, size: f64) -> LogicGate {
        let size = if size.is_finite() { size.max(1.0) } else { 1.0 };
        let wn_min = tech.min_w_nmos();
        let wp_min = tech.min_w_pmos();
        // Series stacks are widened to preserve drive.
        let (w_n, w_p) = match kind {
            GateKind::Inverter => (wn_min * size, wp_min * size),
            GateKind::Nand(n) => {
                let n = f64::from(n);
                (wn_min * size * n * n, wp_min * size * n)
            }
            GateKind::Nor(n) => {
                let n = f64::from(n);
                (wn_min * size * n, wp_min * size * n * n)
            }
        };
        LogicGate {
            kind,
            size,
            w_n,
            w_p,
            tech: *tech,
        }
    }

    /// The gate topology.
    #[must_use]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Drive strength in minimum-inverter multiples.
    #[must_use]
    pub fn size(&self) -> f64 {
        self.size
    }

    /// The process time constant τ (delay of a fanout-of-1 inverter), s.
    #[must_use]
    pub fn tau(tech: &TechParams) -> f64 {
        let wn = tech.min_w_nmos();
        let wp = tech.min_w_pmos();
        0.69 * tech.r_eq_n(wn) * tech.gate_cap(wn + wp)
    }

    /// Capacitance presented to one input, F.
    #[must_use]
    pub fn input_cap(&self) -> f64 {
        let wn_min = self.tech.min_w_nmos();
        let wp_min = self.tech.min_w_pmos();
        self.tech.gate_cap((wn_min + wp_min) * self.size) * self.kind.logical_effort()
    }

    /// Self (parasitic drain) capacitance at the output, F.
    #[must_use]
    pub fn self_cap(&self) -> f64 {
        self.tech.drain_cap(self.w_n + self.w_p) / self.kind.fan_in() as f64
    }

    /// Delay driving an external load `c_load`, s.
    #[must_use]
    pub fn delay(&self, c_load: f64) -> f64 {
        let g = self.kind.logical_effort();
        let h = c_load / self.input_cap();
        let p = self.kind.parasitic();
        Self::tau(&self.tech) * (g * h + p)
    }

    /// Dynamic energy of one output transition driving `c_load`, J,
    /// including the short-circuit (crowbar) overhead of the gate.
    #[must_use]
    pub fn switch_energy(&self, c_load: f64) -> f64 {
        self.tech
            .switch_energy(self.self_cap() + c_load + self.input_cap())
            * (1.0 + self.tech.short_circuit_factor())
    }

    /// Static power of the gate, W (stack effect applied).
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        let stack = match self.kind {
            GateKind::Inverter => 1.0,
            GateKind::Nand(n) | GateKind::Nor(n) => STACK_FACTOR
                .powi(i32::try_from(n).unwrap_or(1) - 1)
                .max(STACK_FACTOR),
        };
        StaticPower {
            subthreshold: self.tech.subthreshold_leakage(self.w_n, self.w_p) * stack,
            gate: self.tech.gate_leakage(self.w_n, self.w_p),
        }
    }

    /// Layout area of the gate, m².
    ///
    /// Transistor widths folded into a standard-cell row of height ≈ 28 F,
    /// with a 2× overhead for diffusion spacing, contacts and routing.
    #[must_use]
    pub fn area(&self) -> f64 {
        let f = self.tech.node.feature_m();
        let cell_height = 28.0 * f;
        let folded_width = (self.w_n + self.w_p) / (cell_height / 2.0) * 2.5 * f;
        2.0 * cell_height * folded_width.max(2.5 * f * self.kind.fan_in() as f64)
    }

    /// Full metrics for one switching event into `c_load`.
    #[must_use]
    pub fn metrics(&self, c_load: f64) -> CircuitMetrics {
        CircuitMetrics {
            area: self.area(),
            delay: self.delay(c_load),
            energy_per_op: self.switch_energy(c_load),
            leakage: self.leakage(),
        }
    }
}

/// A geometrically tapered buffer (inverter) chain driving a large load.
///
/// Stage count is chosen so each stage has electrical fanout ≈ 4, which is
/// delay-optimal for static CMOS.
///
/// Stage sizes form a pure geometric sequence (`1, r, r², …`), so the
/// chain stores only `(n_stages, r)` and materializes each [`LogicGate`]
/// on the fly — a chain is built per candidate inside the array
/// partition sweep's hot loop, and this keeps it allocation-free. The
/// running size is accumulated by the same repeated multiplication the
/// stored-`Vec` representation used, so every derived number is
/// bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct BufferChain {
    n_stages: usize,
    per_stage: f64,
    c_load: f64,
    tech: TechParams,
}

impl BufferChain {
    /// The per-stage fanout the chain is sized for.
    pub const STAGE_EFFORT: f64 = 4.0;

    /// Builds a chain that drives `c_load` starting from a minimum-size
    /// first stage.
    #[must_use]
    pub fn for_load(tech: &TechParams, c_load: f64) -> BufferChain {
        let min_inv = LogicGate::new(tech, GateKind::Inverter, 1.0);
        let c_in = min_inv.input_cap();
        let total_effort = (c_load / c_in).max(1.0);
        let n_stages = (total_effort.ln() / Self::STAGE_EFFORT.ln())
            .ceil()
            .max(1.0) as usize;
        let per_stage = total_effort.powf(1.0 / n_stages as f64);
        BufferChain {
            n_stages,
            per_stage,
            c_load,
            tech: *tech,
        }
    }

    /// Number of inverter stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.n_stages
    }

    /// Capacitance presented to whatever drives the chain, F.
    #[must_use]
    pub fn input_cap(&self) -> f64 {
        if self.n_stages == 0 {
            return 0.0;
        }
        LogicGate::new(&self.tech, GateKind::Inverter, 1.0).input_cap()
    }

    /// Metrics of one full transition through the chain into the load.
    #[must_use]
    pub fn metrics(&self) -> CircuitMetrics {
        let mut acc = CircuitMetrics::zero();
        let mut size = 1.0;
        for i in 0..self.n_stages {
            let stage = LogicGate::new(&self.tech, GateKind::Inverter, size);
            size *= self.per_stage;
            let load = if i + 1 < self.n_stages {
                LogicGate::new(&self.tech, GateKind::Inverter, size).input_cap()
            } else {
                self.c_load
            };
            acc = acc.in_series(&stage.metrics(load));
        }
        // The load itself still has to be charged by the final stage's
        // energy; `switch_energy` already accounted for it.
        acc
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
    }

    #[test]
    fn fo4_from_gate_model_matches_params_estimate() {
        let t = tech();
        let inv = LogicGate::new(&t, GateKind::Inverter, 1.0);
        let fo4 = inv.delay(4.0 * inv.input_cap());
        // Same order as the facade's estimate (the models differ slightly
        // in which parasitics they count).
        let est = t.fo4();
        assert!(
            fo4 / est > 0.4 && fo4 / est < 2.5,
            "fo4={fo4:e} est={est:e}"
        );
    }

    #[test]
    fn bigger_gates_are_faster_into_fixed_loads() {
        let t = tech();
        let small = LogicGate::new(&t, GateKind::Inverter, 1.0);
        let big = LogicGate::new(&t, GateKind::Inverter, 8.0);
        let load = 100.0 * small.input_cap();
        assert!(big.delay(load) < small.delay(load));
    }

    #[test]
    fn nor_has_worse_logical_effort_than_nand() {
        assert!(GateKind::Nor(2).logical_effort() > GateKind::Nand(2).logical_effort());
    }

    #[test]
    fn stack_effect_reduces_nand_leakage_density() {
        let t = tech();
        let inv = LogicGate::new(&t, GateKind::Inverter, 1.0);
        let nand4 = LogicGate::new(&t, GateKind::Nand(4), 1.0);
        // Per unit width the NAND leaks less despite being physically wider.
        let inv_density = inv.leakage().subthreshold / (inv.w_n + inv.w_p);
        let nand_density = nand4.leakage().subthreshold / (nand4.w_n + nand4.w_p);
        assert!(nand_density < inv_density);
    }

    #[test]
    fn buffer_chain_stage_count_grows_with_load() {
        let t = tech();
        let small = BufferChain::for_load(&t, 10e-15);
        let big = BufferChain::for_load(&t, 10e-12);
        assert!(big.num_stages() > small.num_stages());
    }

    #[test]
    fn buffer_chain_beats_single_inverter_on_big_loads() {
        let t = tech();
        let c_load = 1e-12;
        let chain = BufferChain::for_load(&t, c_load);
        let single = LogicGate::new(&t, GateKind::Inverter, 1.0);
        assert!(chain.metrics().delay < single.delay(c_load));
    }

    #[test]
    fn gate_area_is_positive_and_grows_with_size() {
        let t = tech();
        let a1 = LogicGate::new(&t, GateKind::Inverter, 1.0).area();
        let a8 = LogicGate::new(&t, GateKind::Inverter, 8.0).area();
        assert!(a1 > 0.0);
        assert!(a8 > a1);
    }
}
