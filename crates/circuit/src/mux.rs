//! Pass-gate multiplexers.
//!
//! Column selection in arrays, operand selection at functional-unit
//! inputs, and way selection after tag match are all n-to-1 multiplexers:
//! a one-hot select bus driving pass transistors whose common output is
//! rebuffered.

use crate::gate::{BufferChain, GateKind, LogicGate};
use crate::metrics::CircuitMetrics;
use mcpat_tech::TechParams;

/// An `n`-to-1 pass-transistor multiplexer with an output buffer, one bit
/// wide. Replicate (`CircuitMetrics::replicated`) for wider datapaths.
///
/// # Examples
///
/// ```
/// use mcpat_circuit::mux::Multiplexer;
/// use mcpat_tech::{TechNode, DeviceType, TechParams};
///
/// let tech = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);
/// let mux = Multiplexer::new(&tech, 8, 10e-15);
/// let per_word = mux.metrics().replicated(64); // a 64-bit 8:1 mux
/// assert!(per_word.energy_per_op > mux.metrics().energy_per_op);
/// ```
#[derive(Debug, Clone)]
pub struct Multiplexer {
    inputs: usize,
    pass_width: f64,
    out_buffer: BufferChain,
    select_driver: LogicGate,
    tech: TechParams,
}

impl Multiplexer {
    /// Builds an `inputs`-to-1 single-bit mux driving `c_load` farads
    /// (`inputs` clamped to ≥ 1).
    #[must_use]
    pub fn new(tech: &TechParams, inputs: usize, c_load: f64) -> Multiplexer {
        let inputs = inputs.max(1);
        let pass_width = 2.0 * tech.min_w_nmos();
        let out_buffer = BufferChain::for_load(tech, c_load.max(1e-18));
        let select_driver = LogicGate::new(tech, GateKind::Inverter, 2.0);
        Multiplexer {
            inputs,
            pass_width,
            out_buffer,
            select_driver,
            tech: *tech,
        }
    }

    /// Number of data inputs.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Capacitance presented to each data input, F.
    #[must_use]
    pub fn input_cap(&self) -> f64 {
        self.tech.drain_cap(self.pass_width)
    }

    /// Metrics of one select-and-pass operation.
    #[must_use]
    pub fn metrics(&self) -> CircuitMetrics {
        let n = self.inputs as f64;
        // Shared output node sees every pass gate's drain.
        let c_shared = n * self.tech.drain_cap(self.pass_width) + self.out_buffer.input_cap();
        let r_pass = self.tech.r_eq_n(self.pass_width);
        let pass_delay = 0.69 * r_pass * c_shared;
        let buf = self.out_buffer.metrics();
        let sel = self
            .select_driver
            .metrics(self.tech.gate_cap(self.pass_width));

        let gate_leak_width = n * self.pass_width;
        let leakage = buf.leakage
            + sel.leakage.scaled(n)
            + crate::metrics::StaticPower {
                subthreshold: self.tech.subthreshold_leakage(gate_leak_width, 0.0),
                gate: self.tech.gate_leakage(gate_leak_width, 0.0),
            };

        CircuitMetrics {
            area: buf.area + sel.area * n + n * self.pass_width * 5.0 * self.tech.node.feature_m(),
            delay: sel.delay + pass_delay + buf.delay,
            energy_per_op: self.tech.switch_energy(c_shared)
                + buf.energy_per_op
                + sel.energy_per_op,
            leakage,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N32, DeviceType::Hp, 360.0)
    }

    #[test]
    fn wider_muxes_are_slower() {
        let t = tech();
        let m2 = Multiplexer::new(&t, 2, 10e-15).metrics();
        let m32 = Multiplexer::new(&t, 32, 10e-15).metrics();
        assert!(m32.delay > m2.delay);
        assert!(m32.energy_per_op > m2.energy_per_op);
    }

    #[test]
    fn replication_models_datapath_width() {
        let t = tech();
        let bit = Multiplexer::new(&t, 4, 5e-15).metrics();
        let word = bit.replicated(64);
        assert!((word.energy_per_op / bit.energy_per_op - 64.0).abs() < 1e-9);
        assert_eq!(word.delay, bit.delay);
    }

    #[test]
    fn one_input_mux_degenerates_gracefully() {
        let t = tech();
        let m = Multiplexer::new(&t, 1, 1e-15).metrics();
        assert!(m.delay > 0.0);
    }
}
