//! Matrix arbiters.
//!
//! Routers allocate virtual channels and switch ports with matrix
//! arbiters: an `R`-requester arbiter stores `R·(R−1)/2` priority bits
//! and grants via a row of wide NOR gates. This is the Orion-style model
//! McPAT adopts for allocation logic.

use crate::gate::{GateKind, LogicGate};
use crate::metrics::CircuitMetrics;
use mcpat_tech::TechParams;

/// A matrix arbiter among `requesters` inputs.
///
/// # Examples
///
/// ```
/// use mcpat_circuit::arbiter::MatrixArbiter;
/// use mcpat_tech::{TechNode, DeviceType, TechParams};
///
/// let tech = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
/// let arb = MatrixArbiter::new(&tech, 5);
/// assert!(arb.metrics().energy_per_op > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct MatrixArbiter {
    requesters: usize,
    grant_gate: LogicGate,
    priority_update_gate: LogicGate,
    tech: TechParams,
}

impl MatrixArbiter {
    /// Builds an arbiter for `requesters` inputs (clamped to ≥ 1).
    #[must_use]
    pub fn new(tech: &TechParams, requesters: usize) -> MatrixArbiter {
        let requesters = requesters.max(1);
        let fan_in = (requesters as u32).clamp(2, 8);
        MatrixArbiter {
            requesters,
            grant_gate: LogicGate::new(tech, GateKind::Nor(fan_in), 2.0),
            priority_update_gate: LogicGate::new(tech, GateKind::Nand(2), 1.0),
            tech: *tech,
        }
    }

    /// Number of requesters.
    #[must_use]
    pub fn requesters(&self) -> usize {
        self.requesters
    }

    /// Metrics of one arbitration decision.
    #[must_use]
    pub fn metrics(&self) -> CircuitMetrics {
        let r = self.requesters as f64;
        let n_priority_bits = r * (r - 1.0) / 2.0;
        let dff = self.tech.dff();
        let vdd = self.tech.device.vdd;

        let grant = self.grant_gate.metrics(4.0 * self.grant_gate.input_cap());
        let update = self
            .priority_update_gate
            .metrics(self.priority_update_gate.input_cap());

        // One grant gate per requester; priority matrix of DFFs; on each
        // arbitration roughly one requester's row of priority bits updates.
        let energy = grant.energy_per_op * r
            + update.energy_per_op * r
            + dff.write_energy(vdd) * (r - 1.0).max(0.0)
            + dff.clock_energy(vdd) * n_priority_bits;
        let area = grant.area * r + update.area * r + dff.area_per_bit * n_priority_bits;
        let leakage = (grant.leakage + update.leakage).scaled(r)
            + crate::metrics::StaticPower {
                subthreshold: dff.leakage_power(&self.tech.device, self.tech.temperature)
                    * n_priority_bits,
                gate: 0.0,
            };
        CircuitMetrics {
            area,
            delay: grant.delay * 2.0 + update.delay,
            energy_per_op: energy,
            leakage,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
    }

    #[test]
    fn area_grows_quadratically_with_requesters() {
        let t = tech();
        let a4 = MatrixArbiter::new(&t, 4).metrics().area;
        let a16 = MatrixArbiter::new(&t, 16).metrics().area;
        assert!(a16 / a4 > 6.0, "ratio = {}", a16 / a4);
    }

    #[test]
    fn energy_is_sub_picojoule() {
        let t = tech();
        let e = MatrixArbiter::new(&t, 5).metrics().energy_per_op;
        assert!(e > 1e-17 && e < 1e-12, "e = {e:e}");
    }

    #[test]
    fn single_requester_is_fine() {
        let t = tech();
        assert!(MatrixArbiter::new(&t, 1).metrics().delay > 0.0);
    }
}
