//! Matrix crossbars.
//!
//! The switch fabric of NoC routers and the core-to-L2 crossbar of
//! Niagara-class chips are matrix crossbars: every input port runs a
//! horizontal bus across every output port's vertical bus, with a
//! tri-state connector at each crossing. Area is wire-dominated, which is
//! why crossbar cost grows quadratically with port count and linearly
//! with flit width in each dimension.

use crate::gate::BufferChain;
use crate::metrics::{CircuitMetrics, StaticPower};
use mcpat_tech::{TechParams, WireType};

/// An `n_in` × `n_out` crossbar carrying `width`-bit words.
///
/// # Examples
///
/// ```
/// use mcpat_circuit::crossbar::Crossbar;
/// use mcpat_tech::{TechNode, DeviceType, TechParams};
///
/// let tech = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
/// let xbar = Crossbar::new(&tech, 5, 5, 128);
/// let m = xbar.metrics_per_traversal();
/// assert!(m.area > 0.0 && m.delay > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    n_in: usize,
    n_out: usize,
    width: usize,
    /// Physical datapath height (input-bus side), m.
    pub height: f64,
    /// Physical datapath width (output-bus side), m.
    pub width_m: f64,
    input_driver: BufferChain,
    output_driver: BufferChain,
    tech: TechParams,
}

/// Track pitch multiplier: crossbar tracks are routed on double-pitch
/// intermediate wires for shielding.
const TRACK_PITCH_FACTOR: f64 = 2.0;

impl Crossbar {
    /// Builds a crossbar (all dimensions clamped to ≥ 1).
    #[must_use]
    pub fn new(tech: &TechParams, n_in: usize, n_out: usize, width: usize) -> Crossbar {
        let n_in = n_in.max(1);
        let n_out = n_out.max(1);
        let width = width.max(1);
        let wire = tech.wire(WireType::Intermediate);
        let track = wire.pitch * TRACK_PITCH_FACTOR;
        let height = n_in as f64 * width as f64 * track;
        let width_m = n_out as f64 * width as f64 * track;

        // Each input bus spans the full output side and vice versa.
        let c_in_bus =
            wire.c_per_m * width_m + n_out as f64 * tech.drain_cap(4.0 * tech.min_w_nmos());
        let c_out_bus =
            wire.c_per_m * height + n_in as f64 * tech.drain_cap(4.0 * tech.min_w_nmos());
        let input_driver = BufferChain::for_load(tech, c_in_bus);
        let output_driver = BufferChain::for_load(tech, c_out_bus);
        Crossbar {
            n_in,
            n_out,
            width,
            height,
            width_m,
            input_driver,
            output_driver,
            tech: *tech,
        }
    }

    /// Input port count.
    #[must_use]
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output port count.
    #[must_use]
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Word width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Metrics of moving one `width`-bit word through one input→output
    /// connection (≈half the bits toggle).
    #[must_use]
    pub fn metrics_per_traversal(&self) -> CircuitMetrics {
        let wire = self.tech.wire(WireType::Intermediate);
        let c_in_bus = wire.c_per_m * self.width_m;
        let c_out_bus = wire.c_per_m * self.height;
        let in_m = self.input_driver.metrics();
        let out_m = self.output_driver.metrics();

        let bits = self.width as f64;
        let toggle = 0.5;
        let energy_per_bit = in_m.energy_per_op
            + out_m.energy_per_op
            + self.tech.switch_energy(c_in_bus + c_out_bus) * 0.0; // bus cap already in drivers
        let energy = bits * toggle * energy_per_bit;

        // Area: the wiring matrix plus drivers on every port.
        let wiring = self.height * self.width_m;
        let drivers = (in_m.area * (self.n_in * self.width) as f64)
            + (out_m.area * (self.n_out * self.width) as f64);

        // Cross-point connector leakage: one pass structure per crossing per bit.
        let crossings = (self.n_in * self.n_out * self.width) as f64;
        let pass_width = 4.0 * self.tech.min_w_nmos();
        let xpoint_leak = StaticPower {
            subthreshold: self.tech.subthreshold_leakage(pass_width, 0.0) * crossings,
            gate: self.tech.gate_leakage(pass_width, 0.0) * crossings,
        };
        let leakage = in_m.leakage.scaled((self.n_in * self.width) as f64)
            + out_m.leakage.scaled((self.n_out * self.width) as f64)
            + xpoint_leak;

        CircuitMetrics {
            area: wiring + drivers,
            delay: in_m.delay + out_m.delay,
            energy_per_op: energy,
            leakage,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
    }

    #[test]
    fn area_grows_quadratically_with_ports() {
        let t = tech();
        let a5 = Crossbar::new(&t, 5, 5, 64).metrics_per_traversal().area;
        let a10 = Crossbar::new(&t, 10, 10, 64).metrics_per_traversal().area;
        let ratio = a10 / a5;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn energy_grows_with_flit_width() {
        let t = tech();
        let e64 = Crossbar::new(&t, 5, 5, 64)
            .metrics_per_traversal()
            .energy_per_op;
        let e256 = Crossbar::new(&t, 5, 5, 256)
            .metrics_per_traversal()
            .energy_per_op;
        assert!(e256 > 3.0 * e64);
    }

    #[test]
    fn traversal_energy_is_picojoule_scale() {
        let t = tech();
        let e = Crossbar::new(&t, 5, 5, 128)
            .metrics_per_traversal()
            .energy_per_op;
        assert!(e > 1e-14 && e < 1e-10, "e = {e:e}");
    }

    #[test]
    fn gate_level_checks() {
        let t = tech();
        let x = Crossbar::new(&t, 2, 3, 16);
        assert_eq!(x.n_in(), 2);
        assert_eq!(x.n_out(), 3);
        assert_eq!(x.width(), 16);
        let _inv = crate::gate::LogicGate::new(&t, crate::gate::GateKind::Inverter, 1.0);
    }
}
