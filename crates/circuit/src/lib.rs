//! # mcpat-circuit — circuit-level primitives of mcpat-rs
//!
//! The McPAT methodology maps every architectural structure onto a small
//! set of circuit primitives and then evaluates power, area, and timing of
//! those primitives analytically. This crate provides that middle layer:
//!
//! * [`gate`] — logical-effort sized static CMOS gates and buffer chains;
//! * [`repeater`] — optimally repeated wires (delay-optimal and
//!   energy-derated, the knob McPAT's optimizer turns);
//! * [`decoder`] — hierarchical pre-decode + row-decode structures;
//! * [`comparator`] — tag comparators;
//! * [`mux`] — pass-gate multiplexers and output drivers;
//! * [`crossbar`] — matrix crossbars (NoC switch fabric, Niagara-style
//!   core-to-cache crossbars);
//! * [`arbiter`] — matrix arbiters for switch/VC allocation.
//!
//! All primitives report a uniform [`CircuitMetrics`] (area, delay, energy
//! per operation, leakage power) so higher layers can aggregate them
//! without caring what they are.
//!
//! ```
//! use mcpat_tech::{TechNode, DeviceType, TechParams, WireType};
//! use mcpat_circuit::repeater::RepeatedWire;
//!
//! let tech = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);
//! let wire = RepeatedWire::delay_optimal(&tech, WireType::Global, 2e-3);
//! assert!(wire.metrics.delay < 1e-9, "2 mm repeated global wire is sub-ns");
//! ```

pub mod arbiter;
pub mod comparator;
pub mod crossbar;
pub mod decoder;
pub mod gate;
pub mod metrics;
pub mod mux;
pub mod repeater;
pub mod timing;

pub use arbiter::MatrixArbiter;
pub use comparator::TagComparator;
pub use crossbar::Crossbar;
pub use decoder::RowDecoder;
pub use gate::{BufferChain, GateKind, LogicGate};
pub use metrics::{CircuitMetrics, StaticPower};
pub use mux::Multiplexer;
pub use repeater::RepeatedWire;
