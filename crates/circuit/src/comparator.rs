//! Tag comparators.
//!
//! Set-associative tag matching, store-queue address checks, and branch
//! target tag checks all reduce to an equality comparator: per-bit XNOR
//! stages feeding an AND reduction tree.

use crate::gate::{GateKind, LogicGate};
use crate::metrics::CircuitMetrics;
use mcpat_tech::TechParams;

/// A `width`-bit equality comparator.
///
/// # Examples
///
/// ```
/// use mcpat_circuit::comparator::TagComparator;
/// use mcpat_tech::{TechNode, DeviceType, TechParams};
///
/// let tech = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
/// let cmp = TagComparator::new(&tech, 36);
/// assert!(cmp.metrics().delay > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TagComparator {
    width: u32,
    xnor_stage: LogicGate,
    and_gate: LogicGate,
    tree_depth: u32,
}

impl TagComparator {
    /// Builds a comparator for `width`-bit tags (clamped to ≥ 1).
    #[must_use]
    pub fn new(tech: &TechParams, width: u32) -> TagComparator {
        let width = width.max(1);
        // XNOR built from 2 NAND2-equivalents; AND tree of NAND2/NOR2 pairs.
        let xnor_stage = LogicGate::new(tech, GateKind::Nand(2), 1.0);
        let and_gate = LogicGate::new(tech, GateKind::Nand(2), 1.0);
        let tree_depth = (f64::from(width)).log2().ceil() as u32;
        TagComparator {
            width,
            xnor_stage,
            and_gate,
            tree_depth,
        }
    }

    /// Tag width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Capacitance presented per compared bit (both operands), F.
    #[must_use]
    pub fn input_cap_per_bit(&self) -> f64 {
        // XNOR ≈ two NAND2 input loads per operand bit.
        2.0 * self.xnor_stage.input_cap()
    }

    /// Metrics of one comparison.
    #[must_use]
    pub fn metrics(&self) -> CircuitMetrics {
        let load = self.and_gate.input_cap();
        // Two gate levels realize the XNOR, then `tree_depth` AND levels.
        let xnor = self
            .xnor_stage
            .metrics(load)
            .in_series(&self.xnor_stage.metrics(load));
        let and_level = self.and_gate.metrics(load);

        let w = f64::from(self.width);
        // Tree has width-1 internal AND nodes; XNORs: one per bit, each two
        // gate-equivalents.
        let area = xnor.area * w + and_level.area * (w - 1.0).max(0.0);
        // On a typical compare roughly half the bits toggle.
        let energy =
            0.5 * w * xnor.energy_per_op + 0.5 * (w - 1.0).max(0.0) * and_level.energy_per_op;
        let leakage = xnor.leakage.scaled(w) + and_level.leakage.scaled((w - 1.0).max(0.0));
        CircuitMetrics {
            area,
            delay: xnor.delay + and_level.delay * f64::from(self.tree_depth),
            energy_per_op: energy,
            leakage,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_tech::{DeviceType, TechNode};

    fn tech() -> TechParams {
        TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
    }

    #[test]
    fn delay_grows_logarithmically() {
        let t = tech();
        let d8 = TagComparator::new(&t, 8).metrics().delay;
        let d64 = TagComparator::new(&t, 64).metrics().delay;
        let d512 = TagComparator::new(&t, 512).metrics().delay;
        // Each 8× widening adds the same tree increment.
        assert!(((d64 - d8) - (d512 - d64)).abs() < (d64 - d8) * 0.5);
    }

    #[test]
    fn energy_grows_linearly() {
        let t = tech();
        let e16 = TagComparator::new(&t, 16).metrics().energy_per_op;
        let e64 = TagComparator::new(&t, 64).metrics().energy_per_op;
        let ratio = e64 / e16;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn one_bit_comparator_works() {
        let t = tech();
        let m = TagComparator::new(&t, 1).metrics();
        assert!(m.delay > 0.0 && m.area > 0.0);
    }
}
