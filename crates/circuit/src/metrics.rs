//! Uniform power/area/timing summaries shared by all circuit primitives
//! and re-used by the architectural layers above.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Static (leakage) power split into its two physical mechanisms, W.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StaticPower {
    /// Subthreshold (source–drain) leakage, W.
    pub subthreshold: f64,
    /// Gate-tunneling leakage, W.
    pub gate: f64,
}

impl StaticPower {
    /// A zero static power value.
    #[must_use]
    pub fn zero() -> StaticPower {
        StaticPower::default()
    }

    /// Constructs from the two components.
    #[must_use]
    pub fn new(subthreshold: f64, gate: f64) -> StaticPower {
        StaticPower { subthreshold, gate }
    }

    /// Total leakage, W.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.subthreshold + self.gate
    }

    /// Scales both components (e.g. by an instance count or a power-gating
    /// duty factor).
    #[must_use]
    pub fn scaled(&self, k: f64) -> StaticPower {
        StaticPower {
            subthreshold: self.subthreshold * k,
            gate: self.gate * k,
        }
    }
}

impl Add for StaticPower {
    type Output = StaticPower;
    fn add(self, rhs: StaticPower) -> StaticPower {
        StaticPower {
            subthreshold: self.subthreshold + rhs.subthreshold,
            gate: self.gate + rhs.gate,
        }
    }
}

impl AddAssign for StaticPower {
    fn add_assign(&mut self, rhs: StaticPower) {
        *self = *self + rhs;
    }
}

impl Sum for StaticPower {
    fn sum<I: Iterator<Item = StaticPower>>(iter: I) -> StaticPower {
        iter.fold(StaticPower::zero(), Add::add)
    }
}

/// The uniform result of evaluating any circuit structure.
///
/// * `area` — silicon area, m²;
/// * `delay` — critical-path latency of one operation, s;
/// * `energy_per_op` — dynamic energy of one operation, J;
/// * `leakage` — static power while idle, W.
///
/// # Examples
///
/// ```
/// use mcpat_circuit::CircuitMetrics;
/// let a = CircuitMetrics { area: 1e-9, delay: 1e-10, energy_per_op: 1e-12, ..Default::default() };
/// let b = CircuitMetrics { area: 2e-9, delay: 3e-10, energy_per_op: 1e-12, ..Default::default() };
/// let sum = a.in_series(&b);
/// assert!((sum.delay - 4e-10).abs() < 1e-18);     // delays add in series
/// let par = a.in_parallel(&b);
/// assert!((par.delay - 3e-10).abs() < 1e-18);     // max delay in parallel
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CircuitMetrics {
    /// Silicon area, m².
    pub area: f64,
    /// Critical-path delay of one operation, s.
    pub delay: f64,
    /// Dynamic energy per operation, J.
    pub energy_per_op: f64,
    /// Static power, W.
    pub leakage: StaticPower,
}

impl CircuitMetrics {
    /// A zero value, useful as an accumulator seed.
    #[must_use]
    pub fn zero() -> CircuitMetrics {
        CircuitMetrics::default()
    }

    /// Combines with a structure operating *in series* on the same path:
    /// areas, energies, and leakage add; delays add.
    #[must_use]
    pub fn in_series(&self, other: &CircuitMetrics) -> CircuitMetrics {
        CircuitMetrics {
            area: self.area + other.area,
            delay: self.delay + other.delay,
            energy_per_op: self.energy_per_op + other.energy_per_op,
            leakage: self.leakage + other.leakage,
        }
    }

    /// Combines with a structure operating *in parallel*: areas, energies
    /// and leakage add; the slower delay dominates.
    #[must_use]
    pub fn in_parallel(&self, other: &CircuitMetrics) -> CircuitMetrics {
        CircuitMetrics {
            area: self.area + other.area,
            delay: self.delay.max(other.delay),
            energy_per_op: self.energy_per_op + other.energy_per_op,
            leakage: self.leakage + other.leakage,
        }
    }

    /// Returns this structure replicated `n` times operating in parallel
    /// (n ports, n lanes, ...): area/energy/leakage scale, delay unchanged.
    #[must_use]
    pub fn replicated(&self, n: usize) -> CircuitMetrics {
        let k = n as f64;
        CircuitMetrics {
            area: self.area * k,
            delay: self.delay,
            energy_per_op: self.energy_per_op * k,
            leakage: self.leakage.scaled(k),
        }
    }

    /// Dynamic power at an access rate of `ops_per_second`, W.
    #[must_use]
    pub fn dynamic_power(&self, ops_per_second: f64) -> f64 {
        self.energy_per_op * ops_per_second
    }

    /// Total power (dynamic at the given op rate + leakage), W.
    #[must_use]
    pub fn total_power(&self, ops_per_second: f64) -> f64 {
        self.dynamic_power(ops_per_second) + self.leakage.total()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn sample(a: f64, d: f64, e: f64, l: f64) -> CircuitMetrics {
        CircuitMetrics {
            area: a,
            delay: d,
            energy_per_op: e,
            leakage: StaticPower::new(l, l / 10.0),
        }
    }

    #[test]
    fn series_adds_delay() {
        let x = sample(1.0, 2.0, 3.0, 4.0);
        let y = sample(10.0, 20.0, 30.0, 40.0);
        let s = x.in_series(&y);
        assert_eq!(s.area, 11.0);
        assert_eq!(s.delay, 22.0);
        assert_eq!(s.energy_per_op, 33.0);
        assert!((s.leakage.total() - 48.4).abs() < 1e-12);
    }

    #[test]
    fn parallel_takes_max_delay() {
        let x = sample(1.0, 2.0, 3.0, 4.0);
        let y = sample(1.0, 7.0, 3.0, 4.0);
        assert_eq!(x.in_parallel(&y).delay, 7.0);
    }

    #[test]
    fn replication_scales_everything_but_delay() {
        let x = sample(1.0, 2.0, 3.0, 4.0);
        let r = x.replicated(4);
        assert_eq!(r.area, 4.0);
        assert_eq!(r.delay, 2.0);
        assert_eq!(r.energy_per_op, 12.0);
        assert!((r.leakage.subthreshold - 16.0).abs() < 1e-12);
    }

    #[test]
    fn static_power_sums() {
        let parts = vec![StaticPower::new(1.0, 0.5), StaticPower::new(2.0, 0.25)];
        let total: StaticPower = parts.into_iter().sum();
        assert!((total.total() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn total_power_combines_dynamic_and_static() {
        let x = sample(1.0, 1.0, 2.0, 1.0);
        // 2 J/op × 3 op/s + 1.1 W leakage
        assert!((x.total_power(3.0) - 7.1).abs() < 1e-12);
    }
}
