#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Property-based tests for the circuit primitives.

use mcpat_circuit::arbiter::MatrixArbiter;
use mcpat_circuit::comparator::TagComparator;
use mcpat_circuit::crossbar::Crossbar;
use mcpat_circuit::decoder::RowDecoder;
use mcpat_circuit::gate::{BufferChain, GateKind, LogicGate};
use mcpat_circuit::repeater::RepeatedWire;
use mcpat_circuit::timing::horowitz;
use mcpat_tech::{DeviceType, TechNode, TechParams, WireType};
use proptest::prelude::*;

fn tech() -> TechParams {
    TechParams::new(TechNode::N45, DeviceType::Hp, 360.0)
}

fn any_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(TechNode::ALL.to_vec())
}

proptest! {
    #[test]
    fn gate_delay_is_monotone_in_load(
        size in 1.0..32.0f64,
        c1 in 1e-16..1e-13f64,
        k in 1.1..20.0f64,
    ) {
        let t = tech();
        let g = LogicGate::new(&t, GateKind::Inverter, size);
        prop_assert!(g.delay(c1 * k) > g.delay(c1));
    }

    #[test]
    fn gate_energy_is_monotone_in_load(
        size in 1.0..32.0f64,
        c1 in 1e-16..1e-13f64,
        k in 1.1..20.0f64,
    ) {
        let t = tech();
        let g = LogicGate::new(&t, GateKind::Nand(2), size);
        prop_assert!(g.switch_energy(c1 * k) > g.switch_energy(c1));
    }

    #[test]
    fn buffer_chain_input_cap_is_minimum_size(
        c_load in 1e-15..1e-11f64,
    ) {
        let t = tech();
        let chain = BufferChain::for_load(&t, c_load);
        let min_inv = LogicGate::new(&t, GateKind::Inverter, 1.0);
        prop_assert!((chain.input_cap() - min_inv.input_cap()).abs() < 1e-18);
    }

    #[test]
    fn repeated_wire_outputs_are_finite_for_all_nodes(
        node in any_node(),
        len in 1e-5..2e-2f64,
    ) {
        let t = TechParams::new(node, DeviceType::Hp, 360.0);
        let w = RepeatedWire::delay_optimal(&t, WireType::Global, len);
        prop_assert!(w.metrics.delay.is_finite() && w.metrics.delay > 0.0);
        prop_assert!(w.metrics.energy_per_op.is_finite() && w.metrics.energy_per_op > 0.0);
        prop_assert!(w.num_repeaters >= 1);
    }

    #[test]
    fn derated_wire_never_beats_optimal_delay(
        len in 1e-4..1e-2f64,
        tol in 1.0..2.0f64,
    ) {
        let t = tech();
        let opt = RepeatedWire::delay_optimal(&t, WireType::Global, len);
        let der = RepeatedWire::energy_derated(&t, WireType::Global, len, tol);
        prop_assert!(der.metrics.delay >= opt.metrics.delay * 0.999);
        prop_assert!(der.metrics.delay <= opt.metrics.delay * tol * (1.0 + 1e-9));
        prop_assert!(der.metrics.energy_per_op <= opt.metrics.energy_per_op * (1.0 + 1e-9));
    }

    #[test]
    fn decoder_cost_is_monotone_in_rows(
        rows in 2usize..2_000,
    ) {
        let t = tech();
        let small = RowDecoder::new(&t, rows, 20e-15).metrics();
        let big = RowDecoder::new(&t, rows * 4, 20e-15).metrics();
        prop_assert!(big.area > small.area);
        prop_assert!(big.leakage.total() > small.leakage.total());
    }

    #[test]
    fn comparator_energy_monotone_in_width(width in 1u32..256) {
        let t = tech();
        let narrow = TagComparator::new(&t, width).metrics();
        let wide = TagComparator::new(&t, width * 2).metrics();
        prop_assert!(wide.energy_per_op > narrow.energy_per_op);
    }

    #[test]
    fn crossbar_energy_monotone_in_everything(
        ports in 2usize..12,
        width in 8usize..256,
    ) {
        let t = tech();
        let base = Crossbar::new(&t, ports, ports, width).metrics_per_traversal();
        let more_ports = Crossbar::new(&t, ports + 2, ports + 2, width).metrics_per_traversal();
        let wider = Crossbar::new(&t, ports, ports, width * 2).metrics_per_traversal();
        prop_assert!(more_ports.energy_per_op > base.energy_per_op);
        prop_assert!(wider.energy_per_op > base.energy_per_op);
        prop_assert!(more_ports.area > base.area);
    }

    #[test]
    fn arbiter_scales_with_requesters(r in 1usize..32) {
        let t = tech();
        let small = MatrixArbiter::new(&t, r).metrics();
        let big = MatrixArbiter::new(&t, r + 4).metrics();
        prop_assert!(big.area > small.area);
        prop_assert!(big.energy_per_op > small.energy_per_op);
    }

    #[test]
    fn horowitz_never_beats_the_step_response(
        ramp in 1e-12..1e-9f64,
        tf in 1e-12..1e-9f64,
    ) {
        let step = horowitz(0.0, tf, 0.5);
        let slow = horowitz(ramp, tf, 0.5);
        prop_assert!(slow >= step * 0.99, "slow {slow:e} vs step {step:e}");
    }
}
