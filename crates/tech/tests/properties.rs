#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Property-based tests for the technology layer.

use mcpat_tech::{
    DeviceParams, DeviceType, TechNode, TechParams, WireParams, WireProjection, WireType,
};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(TechNode::ALL.to_vec())
}

fn any_flavor() -> impl Strategy<Value = DeviceType> {
    prop::sample::select(DeviceType::ALL.to_vec())
}

fn any_wire_type() -> impl Strategy<Value = WireType> {
    prop::sample::select(WireType::ALL.to_vec())
}

proptest! {
    #[test]
    fn leakage_is_monotone_in_temperature(
        node in any_node(),
        flavor in any_flavor(),
        t1 in 280.0..420.0f64,
        dt in 1.0..80.0f64,
    ) {
        let d = DeviceParams::lookup(node, flavor);
        prop_assert!(d.i_off_n(t1 + dt) > d.i_off_n(t1));
    }

    #[test]
    fn leakage_is_always_positive_and_finite(
        node in any_node(),
        flavor in any_flavor(),
        t in 250.0..450.0f64,
    ) {
        let d = DeviceParams::lookup(node, flavor);
        prop_assert!(d.i_off_n(t) > 0.0);
        prop_assert!(d.i_off_n(t).is_finite());
        prop_assert!(d.i_off_p(t) < d.i_off_n(t));
    }

    #[test]
    fn wire_rc_is_positive_for_every_combination(
        node in any_node(),
        wt in any_wire_type(),
    ) {
        for projection in [WireProjection::Aggressive, WireProjection::Conservative] {
            let w = WireParams::new(node, wt, projection);
            prop_assert!(w.r_per_m > 0.0 && w.r_per_m.is_finite());
            prop_assert!(w.c_per_m > 0.0 && w.c_per_m.is_finite());
            prop_assert!(w.width > 0.0 && w.thickness > 0.0);
        }
    }

    #[test]
    fn wire_energy_scales_linearly_with_length(
        node in any_node(),
        wt in any_wire_type(),
        len in 1e-6..1e-2f64,
        k in 1.5..10.0f64,
    ) {
        let w = WireParams::new(node, wt, WireProjection::Aggressive);
        let e1 = w.switching_energy(len, 1.0);
        let e2 = w.switching_energy(len * k, 1.0);
        prop_assert!((e2 / e1 - k).abs() < 1e-9);
    }

    #[test]
    fn static_power_scales_linearly_with_width(
        node in any_node(),
        flavor in any_flavor(),
        w in 1e-7..1e-3f64,
    ) {
        let tech = TechParams::new(node, flavor, 360.0);
        let p1 = tech.subthreshold_leakage(w, w);
        let p2 = tech.subthreshold_leakage(2.0 * w, 2.0 * w);
        prop_assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fo4_is_finite_positive_everywhere(
        node in any_node(),
        flavor in any_flavor(),
        t in 280.0..420.0f64,
    ) {
        let tech = TechParams::new(node, flavor, t);
        let fo4 = tech.fo4();
        prop_assert!(fo4 > 1e-12 && fo4 < 1e-9, "fo4 = {fo4:e}");
    }

    #[test]
    fn long_channel_never_increases_gate_leak_or_decreases_speed(
        node in any_node(),
        flavor in any_flavor(),
        w in 1e-7..1e-4f64,
    ) {
        let base = TechParams::new(node, flavor, 360.0);
        let lc = base.with_long_channel_leakage(true);
        prop_assert!(lc.subthreshold_leakage(w, w) < base.subthreshold_leakage(w, w));
        prop_assert!((lc.fo4() - base.fo4()).abs() < 1e-18);
    }

    #[test]
    fn sram_cell_leakage_positive_for_all_corners(
        node in any_node(),
        flavor in any_flavor(),
        t in 280.0..420.0f64,
    ) {
        let tech = TechParams::new(node, flavor, t);
        let cell = tech.sram_cell();
        let p = cell.leakage_power(&tech.device, t);
        prop_assert!(p > 0.0 && p.is_finite());
    }
}
