//! MOSFET device parameters per technology node and device flavor.
//!
//! McPAT follows the ITRS roadmap and distinguishes three transistor
//! flavors per node. The tables in this module are transcriptions of the
//! public CACTI/McPAT technology data, lightly regularized; see DESIGN.md
//! for the calibration caveats. Per-width quantities use SI units
//! (A/m and F/m), which conveniently coincide numerically with the
//! traditional µA/µm and fF/µm·10⁻⁹ engineering units.

use crate::node::TechNode;
use crate::T_REF;
use std::fmt;

/// ITRS transistor flavor.
///
/// # Examples
///
/// ```
/// use mcpat_tech::{DeviceType, DeviceParams, TechNode};
///
/// let hp = DeviceParams::lookup(TechNode::N32, DeviceType::Hp);
/// let lstp = DeviceParams::lookup(TechNode::N32, DeviceType::Lstp);
/// // LSTP devices leak orders of magnitude less than HP devices.
/// assert!(lstp.i_off_n_ref < hp.i_off_n_ref / 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DeviceType {
    /// High performance: maximum drive current, highest leakage.
    /// Used for cores and latency-critical logic.
    Hp,
    /// Low standby power: high threshold voltage, minimal subthreshold
    /// leakage, much slower. Used for large caches.
    Lstp,
    /// Low operating power: reduced supply voltage, intermediate leakage.
    /// Used when dynamic power dominates.
    Lop,
}

impl DeviceType {
    /// All flavors, in roadmap order.
    pub const ALL: [DeviceType; 3] = [DeviceType::Hp, DeviceType::Lstp, DeviceType::Lop];
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceType::Hp => "HP",
            DeviceType::Lstp => "LSTP",
            DeviceType::Lop => "LOP",
        };
        f.write_str(s)
    }
}

/// Fully resolved transistor parameters for one (node, flavor) pair.
///
/// Obtained from [`DeviceParams::lookup`]; all downstream circuit models
/// consume these numbers and nothing else about the process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Nominal supply voltage, V.
    pub vdd: f64,
    /// Saturation threshold voltage, V.
    pub vth: f64,
    /// Physical (printed) gate length, m.
    pub l_phy: f64,
    /// NMOS saturation drive current per width, A/m.
    pub i_on_n: f64,
    /// PMOS saturation drive current per width, A/m.
    pub i_on_p: f64,
    /// NMOS subthreshold leakage per width at 300 K, A/m.
    pub i_off_n_ref: f64,
    /// NMOS gate leakage per width, A/m (temperature-insensitive).
    pub i_g_n: f64,
    /// Gate capacitance per width (ideal + overlap + fringe), F/m.
    pub c_g: f64,
    /// Drain (junction + overlap) capacitance per width, F/m.
    pub c_d: f64,
    /// Leakage reduction factor when a long-channel variant of the device
    /// is used instead (unitless multiplier < 1 on `i_off`).
    pub long_channel_leakage_reduction: f64,
    /// Temperature slope of subthreshold leakage: `i_off(T) = ref ·
    /// exp((T − 300) / t_slope)`. A slope of ≈ 43.4 K yields the classic
    /// 10× increase per 100 K used by CACTI's tabulated currents.
    pub t_slope: f64,
}

/// PMOS/NMOS drive-current ratio assumed throughout the framework.
const P_TO_N_DRIVE_RATIO: f64 = 0.5;

/// Temperature slope (K) giving 10× leakage per 100 K.
const DEFAULT_T_SLOPE: f64 = 43.429_448;

impl DeviceParams {
    /// Looks up the tabulated parameters for a node/flavor pair.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcpat_tech::{DeviceParams, DeviceType, TechNode};
    /// let d = DeviceParams::lookup(TechNode::N90, DeviceType::Hp);
    /// assert!((d.vdd - 1.2).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn lookup(node: TechNode, flavor: DeviceType) -> DeviceParams {
        // Columns: vdd, vth, l_phy(nm), i_on_n(µA/µm), i_off_n(µA/µm @300K),
        //          i_g_n(µA/µm), c_g(fF/µm), c_d(fF/µm), long-channel factor.
        let row: [f64; 9] = match (flavor, node) {
            (DeviceType::Hp, TechNode::N180) => {
                [1.65, 0.42, 100.0, 700.0, 5e-3, 1e-4, 1.90, 1.25, 0.80]
            }
            (DeviceType::Hp, TechNode::N90) => {
                [1.2, 0.24, 37.0, 1077.0, 6e-2, 5e-3, 1.00, 0.74, 0.48]
            }
            (DeviceType::Hp, TechNode::N65) => {
                [1.1, 0.22, 25.0, 1197.0, 1.0e-1, 2e-2, 0.83, 0.62, 0.42]
            }
            (DeviceType::Hp, TechNode::N45) => {
                [1.0, 0.18, 18.0, 1420.0, 1.8e-1, 5e-2, 0.75, 0.55, 0.33]
            }
            (DeviceType::Hp, TechNode::N32) => {
                [0.9, 0.21, 13.0, 1630.0, 2.5e-1, 8e-2, 0.68, 0.50, 0.28]
            }
            (DeviceType::Hp, TechNode::N22) => {
                [0.8, 0.20, 9.0, 2000.0, 3.7e-1, 1.2e-1, 0.60, 0.45, 0.24]
            }
            (DeviceType::Lstp, TechNode::N180) => {
                [1.8, 0.55, 120.0, 350.0, 1e-5, 1e-6, 1.80, 1.10, 0.90]
            }
            (DeviceType::Lstp, TechNode::N90) => {
                [1.3, 0.49, 53.0, 465.0, 2e-5, 2e-5, 1.20, 0.80, 0.60]
            }
            (DeviceType::Lstp, TechNode::N65) => {
                [1.25, 0.50, 38.0, 519.0, 3e-5, 3e-5, 1.00, 0.70, 0.55]
            }
            (DeviceType::Lstp, TechNode::N45) => {
                [1.15, 0.50, 28.0, 666.0, 4e-5, 4e-5, 0.90, 0.62, 0.50]
            }
            (DeviceType::Lstp, TechNode::N32) => {
                [1.05, 0.48, 20.0, 798.0, 5e-5, 5e-5, 0.80, 0.56, 0.45]
            }
            (DeviceType::Lstp, TechNode::N22) => {
                [0.95, 0.45, 14.0, 900.0, 8e-5, 8e-5, 0.70, 0.50, 0.40]
            }
            (DeviceType::Lop, TechNode::N180) => {
                [1.2, 0.34, 110.0, 420.0, 1e-3, 1e-5, 1.60, 1.05, 0.85]
            }
            (DeviceType::Lop, TechNode::N90) => {
                [0.9, 0.29, 45.0, 563.0, 5e-3, 2e-3, 1.10, 0.77, 0.55]
            }
            (DeviceType::Lop, TechNode::N65) => {
                [0.8, 0.28, 32.0, 573.0, 8e-3, 4e-3, 0.90, 0.65, 0.50]
            }
            (DeviceType::Lop, TechNode::N45) => {
                [0.7, 0.25, 22.0, 748.0, 1.2e-2, 7e-3, 0.80, 0.58, 0.42]
            }
            (DeviceType::Lop, TechNode::N32) => {
                [0.6, 0.22, 16.0, 916.0, 2.0e-2, 1.2e-2, 0.72, 0.52, 0.36]
            }
            (DeviceType::Lop, TechNode::N22) => {
                [0.55, 0.20, 11.0, 1100.0, 3.0e-2, 2.0e-2, 0.65, 0.47, 0.30]
            }
        };
        let [vdd, vth, l_phy_nm, i_on_n, i_off_n_ref, i_g_n, c_g_f, c_d_f, lcl] = row;
        DeviceParams {
            vdd,
            vth,
            l_phy: l_phy_nm * 1e-9,
            i_on_n,
            i_on_p: i_on_n * P_TO_N_DRIVE_RATIO,
            i_off_n_ref,
            i_g_n,
            c_g: c_g_f * 1e-9,
            c_d: c_d_f * 1e-9,
            long_channel_leakage_reduction: lcl,
            t_slope: DEFAULT_T_SLOPE,
        }
    }

    /// NMOS subthreshold leakage per width at temperature `t_kelvin`, A/m.
    ///
    /// Exponential interpolation matching CACTI's tabulated behaviour
    /// (≈10× per 100 K).
    #[must_use]
    pub fn i_off_n(&self, t_kelvin: f64) -> f64 {
        self.i_off_n_ref * ((t_kelvin - T_REF) / self.t_slope).exp()
    }

    /// PMOS subthreshold leakage per width at temperature `t_kelvin`, A/m.
    ///
    /// PMOS devices leak slightly less than NMOS for the same width; McPAT
    /// uses the NMOS value scaled by the drive ratio.
    #[must_use]
    pub fn i_off_p(&self, t_kelvin: f64) -> f64 {
        self.i_off_n(t_kelvin) * P_TO_N_DRIVE_RATIO
    }

    /// Returns a copy of these parameters re-biased to `scale · Vdd`.
    ///
    /// Drive current follows the alpha-power law
    /// `I_on ∝ (V − Vth)^1.3`, subthreshold leakage drops roughly
    /// linearly with the supply (DIBL), and gate leakage falls
    /// super-linearly; capacitances are bias-independent to first order.
    ///
    /// The scaled supply is clamped to stay 5% above the threshold
    /// voltage — below that the device would no longer switch and the
    /// drive model loses meaning. (`ProcessorConfig::validate` rejects
    /// scales that would hit the clamp.)
    #[must_use]
    pub fn with_vdd_scale(&self, scale: f64) -> DeviceParams {
        let scale = if scale.is_finite() { scale } else { 1.0 };
        let vdd_new = (self.vdd * scale).max(self.vth * 1.05 + 1e-6);
        // Leakage terms scale with the supply actually applied.
        let scale = vdd_new / self.vdd;
        let alpha = 1.3;
        let drive = ((vdd_new - self.vth) / (self.vdd - self.vth)).powf(alpha);
        DeviceParams {
            vdd: vdd_new,
            i_on_n: self.i_on_n * drive,
            i_on_p: self.i_on_p * drive,
            i_off_n_ref: self.i_off_n_ref * scale,
            i_g_n: self.i_g_n * scale * scale,
            ..*self
        }
    }

    /// Effective switching resistance of a 1 m wide NMOS, Ω·m.
    ///
    /// Uses the classical `R = Vdd / I_eff` with `I_eff ≈ I_on / 2`
    /// (the average of the drain current over the output transition),
    /// which reproduces realistic FO4 delays.
    #[must_use]
    pub fn r_on_n(&self) -> f64 {
        self.vdd / (self.i_on_n * 0.5)
    }

    /// Effective switching resistance of a 1 m wide PMOS, Ω·m.
    #[must_use]
    pub fn r_on_p(&self) -> f64 {
        self.vdd / (self.i_on_p * 0.5)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn vdd_decreases_with_scaling_for_hp() {
        let mut last = f64::INFINITY;
        for node in TechNode::ALL {
            let d = DeviceParams::lookup(node, DeviceType::Hp);
            assert!(d.vdd <= last, "vdd must be non-increasing");
            last = d.vdd;
        }
    }

    #[test]
    fn drive_current_increases_with_scaling_for_hp() {
        let mut last = 0.0;
        for node in TechNode::ALL {
            let d = DeviceParams::lookup(node, DeviceType::Hp);
            assert!(d.i_on_n > last);
            last = d.i_on_n;
        }
    }

    #[test]
    fn flavor_ordering_holds_at_every_node() {
        for node in TechNode::ALL {
            let hp = DeviceParams::lookup(node, DeviceType::Hp);
            let lstp = DeviceParams::lookup(node, DeviceType::Lstp);
            let lop = DeviceParams::lookup(node, DeviceType::Lop);
            // HP drives hardest and leaks most; LSTP leaks least;
            // LOP has the lowest Vdd.
            assert!(hp.i_on_n > lstp.i_on_n);
            assert!(hp.i_off_n_ref > lop.i_off_n_ref);
            assert!(lop.i_off_n_ref > lstp.i_off_n_ref);
            assert!(lop.vdd < hp.vdd);
            assert!(lstp.vdd >= hp.vdd);
        }
    }

    #[test]
    fn leakage_temperature_scaling_is_10x_per_100k() {
        let d = DeviceParams::lookup(TechNode::N45, DeviceType::Hp);
        let ratio = d.i_off_n(400.0) / d.i_off_n(300.0);
        assert!((ratio - 10.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn long_channel_reduces_leakage() {
        for node in TechNode::ALL {
            for flavor in DeviceType::ALL {
                let d = DeviceParams::lookup(node, flavor);
                assert!(d.long_channel_leakage_reduction > 0.0);
                assert!(d.long_channel_leakage_reduction < 1.0);
            }
        }
    }

    #[test]
    fn vdd_scaling_slows_devices_and_cuts_leakage() {
        let d = DeviceParams::lookup(TechNode::N45, DeviceType::Hp);
        let low = d.with_vdd_scale(0.8);
        assert!(low.vdd < d.vdd);
        assert!(low.i_on_n < d.i_on_n, "drive must drop");
        assert!(low.r_on_n() > d.r_on_n(), "devices get slower");
        assert!(low.i_off_n_ref < d.i_off_n_ref);
        assert!(low.i_g_n < d.i_g_n);
    }

    #[test]
    fn vdd_scaling_clamps_sub_threshold_bias() {
        let d = DeviceParams::lookup(TechNode::N45, DeviceType::Hp);
        let scaled = d.with_vdd_scale(0.15);
        assert!(scaled.vdd > d.vth, "supply must stay above threshold");
        let wild = d.with_vdd_scale(f64::NAN);
        assert!(
            (wild.vdd - d.vdd).abs() < 1e-12,
            "NaN scale falls back to nominal"
        );
    }

    #[test]
    fn fo4_scale_is_plausible() {
        // A rough FO4 estimate: 0.69 · R_on · (C_self + 4·C_in) for a
        // minimum inverter with Wp = 2·Wn = 2 µm equivalent width.
        let d = DeviceParams::lookup(TechNode::N90, DeviceType::Hp);
        let w = 1e-6;
        let r = d.r_on_n() / w;
        let c_in = 3.0 * w * d.c_g;
        let c_self = 3.0 * w * d.c_d;
        let fo4 = 0.69 * r * (c_self + 4.0 * c_in);
        // Published 90 nm HP FO4 is ≈ 20–35 ps.
        assert!(fo4 > 10e-12 && fo4 < 50e-12, "fo4 = {fo4:e}");
    }
}
