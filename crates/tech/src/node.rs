//! Process technology nodes supported by the framework.

use std::fmt;
use std::str::FromStr;

/// A CMOS process technology node.
///
/// McPAT (MICRO 2009) supports the 90–22 nm ITRS nodes and, for validating
/// against the Alpha 21364, the 180 nm node. The node determines every
/// downstream device, wire, and cell parameter.
///
/// # Examples
///
/// ```
/// use mcpat_tech::TechNode;
///
/// let node = TechNode::N45;
/// assert_eq!(node.feature_nm(), 45.0);
/// assert!(node.feature_m() < TechNode::N90.feature_m());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum TechNode {
    /// 180 nm (Alpha 21364 era; validation only).
    N180,
    /// 90 nm (Sun Niagara).
    N90,
    /// 65 nm (Sun Niagara2, Intel Xeon Tulsa).
    N65,
    /// 45 nm.
    N45,
    /// 32 nm.
    N32,
    /// 22 nm (deepest ITRS projection in the original study).
    N22,
}

impl TechNode {
    /// All nodes, largest feature size first.
    pub const ALL: [TechNode; 6] = [
        TechNode::N180,
        TechNode::N90,
        TechNode::N65,
        TechNode::N45,
        TechNode::N32,
        TechNode::N22,
    ];

    /// The nodes used by the manycore technology-scaling case study
    /// (the 180 nm node is validation-only).
    pub const SCALING_STUDY: [TechNode; 5] = [
        TechNode::N90,
        TechNode::N65,
        TechNode::N45,
        TechNode::N32,
        TechNode::N22,
    ];

    /// Drawn feature size in nanometers.
    #[must_use]
    pub fn feature_nm(self) -> f64 {
        match self {
            TechNode::N180 => 180.0,
            TechNode::N90 => 90.0,
            TechNode::N65 => 65.0,
            TechNode::N45 => 45.0,
            TechNode::N32 => 32.0,
            TechNode::N22 => 22.0,
        }
    }

    /// Drawn feature size in meters.
    #[must_use]
    pub fn feature_m(self) -> f64 {
        self.feature_nm() * 1e-9
    }

    /// Linear shrink factor of this node relative to 90 nm.
    ///
    /// Used by empirical models that were calibrated at 90 nm and scale
    /// linearly (delay, pitch) or quadratically (area) with feature size.
    #[must_use]
    pub fn scale_from_90nm(self) -> f64 {
        self.feature_nm() / 90.0
    }

    /// The next smaller node, if any.
    #[must_use]
    pub fn next_smaller(self) -> Option<TechNode> {
        let all = TechNode::ALL;
        let idx = all.iter().position(|&n| n == self)?;
        all.get(idx + 1).copied()
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.feature_nm() as u32)
    }
}

/// Error returned when parsing a [`TechNode`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTechNodeError(String);

impl fmt::Display for ParseTechNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown technology node `{}` (expected one of 180, 90, 65, 45, 32, 22, with optional `nm` suffix)",
            self.0
        )
    }
}

impl std::error::Error for ParseTechNodeError {}

impl FromStr for TechNode {
    type Err = ParseTechNodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim().trim_end_matches("nm").trim();
        match trimmed {
            "180" => Ok(TechNode::N180),
            "90" => Ok(TechNode::N90),
            "65" => Ok(TechNode::N65),
            "45" => Ok(TechNode::N45),
            "32" => Ok(TechNode::N32),
            "22" => Ok(TechNode::N22),
            _ => Err(ParseTechNodeError(s.to_owned())),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn feature_sizes_strictly_decrease() {
        for pair in TechNode::ALL.windows(2) {
            assert!(pair[0].feature_nm() > pair[1].feature_nm());
        }
    }

    #[test]
    fn parse_round_trips() {
        for node in TechNode::ALL {
            let s = node.to_string();
            assert_eq!(s.parse::<TechNode>().unwrap(), node);
        }
        assert_eq!("45".parse::<TechNode>().unwrap(), TechNode::N45);
        assert!("14nm".parse::<TechNode>().is_err());
    }

    #[test]
    fn next_smaller_walks_the_ladder() {
        assert_eq!(TechNode::N180.next_smaller(), Some(TechNode::N90));
        assert_eq!(TechNode::N22.next_smaller(), None);
    }

    #[test]
    fn scale_from_90nm_is_one_at_90nm() {
        assert!((TechNode::N90.scale_from_90nm() - 1.0).abs() < 1e-12);
        assert!(TechNode::N22.scale_from_90nm() < 0.25);
    }
}
