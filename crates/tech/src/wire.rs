//! Interconnect (metal wire) parameters.
//!
//! McPAT inherits CACTI 6's two interconnect roadmaps: an **aggressive**
//! projection (ideal low-k dielectrics, no barrier penalty) and a
//! **conservative** projection (realistic barrier thickness, dishing, and
//! electron-scattering penalties). Three wire classes are modeled — local,
//! intermediate (semi-global), and global — differing in pitch and aspect
//! ratio. Resistance and capacitance per unit length are derived from the
//! physical geometry rather than tabulated, so the trends across nodes are
//! self-consistent.

use crate::node::TechNode;
use crate::EPS0;
use std::fmt;

/// Metal layer class a signal is routed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireType {
    /// Minimum-pitch wiring inside functional blocks.
    Local,
    /// Semi-global wiring between blocks within a core or cache bank.
    Intermediate,
    /// Top-level wiring spanning the chip (NoC links, clock spines).
    Global,
}

impl WireType {
    /// All wire classes, finest pitch first.
    pub const ALL: [WireType; 3] = [WireType::Local, WireType::Intermediate, WireType::Global];

    /// Wire pitch as a multiple of the drawn feature size.
    #[must_use]
    pub fn pitch_in_f(self) -> f64 {
        match self {
            WireType::Local => 2.5,
            WireType::Intermediate => 4.0,
            WireType::Global => 8.0,
        }
    }

    /// Wire aspect ratio (thickness / width).
    #[must_use]
    pub fn aspect_ratio(self) -> f64 {
        match self {
            WireType::Local => 2.0,
            WireType::Intermediate => 2.2,
            WireType::Global => 2.5,
        }
    }
}

impl fmt::Display for WireType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WireType::Local => "local",
            WireType::Intermediate => "intermediate",
            WireType::Global => "global",
        };
        f.write_str(s)
    }
}

/// Interconnect technology projection.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum WireProjection {
    /// Optimistic ITRS projection: ideal low-k, negligible barrier.
    #[default]
    Aggressive,
    /// Realistic projection: finite barrier, dishing, surface scattering.
    Conservative,
}

impl fmt::Display for WireProjection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WireProjection::Aggressive => "aggressive",
            WireProjection::Conservative => "conservative",
        };
        f.write_str(s)
    }
}

/// Resolved electrical parameters of one wire class at one node.
///
/// # Examples
///
/// ```
/// use mcpat_tech::{TechNode, WireParams, WireProjection, WireType};
///
/// let w = WireParams::new(TechNode::N45, WireType::Global, WireProjection::Aggressive);
/// // A few hundred ohms and ≈0.2 pF per millimeter is the right ballpark.
/// assert!(w.r_per_m * 1e-3 > 50.0 && w.r_per_m * 1e-3 < 5_000.0);
/// assert!(w.c_per_m * 1e-3 > 0.05e-12 && w.c_per_m * 1e-3 < 1.0e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParams {
    /// Wire class.
    pub wire_type: WireType,
    /// Projection used.
    pub projection: WireProjection,
    /// Pitch (width + spacing), m.
    pub pitch: f64,
    /// Conductor width after barrier subtraction, m.
    pub width: f64,
    /// Conductor thickness after dishing/barrier, m.
    pub thickness: f64,
    /// Resistance per unit length, Ω/m.
    pub r_per_m: f64,
    /// Effective switching capacitance per unit length (includes a 1.5×
    /// Miller factor on the coupling component), F/m.
    pub c_per_m: f64,
}

/// Relative permittivity of the inter-metal dielectric.
fn dielectric_k(node: TechNode, projection: WireProjection) -> f64 {
    let aggressive = match node {
        TechNode::N180 => 3.50,
        TechNode::N90 => 2.709,
        TechNode::N65 => 2.303,
        TechNode::N45 => 1.958,
        TechNode::N32 => 1.664,
        TechNode::N22 => 1.414,
    };
    match projection {
        WireProjection::Aggressive => aggressive,
        WireProjection::Conservative => aggressive + 0.5,
    }
}

/// Diffusion-barrier thickness eating into the copper cross-section, m.
fn barrier_thickness(node: TechNode, projection: WireProjection) -> f64 {
    if projection == WireProjection::Aggressive {
        return 0.0;
    }
    let nm = match node {
        TechNode::N180 => 17.0,
        TechNode::N90 => 8.0,
        TechNode::N65 => 6.0,
        TechNode::N45 => 4.5,
        TechNode::N32 => 3.4,
        TechNode::N22 => 2.4,
    };
    nm * 1e-9
}

impl WireParams {
    /// Derives the RC parameters of a wire class at a node under a
    /// projection from its physical geometry.
    #[must_use]
    pub fn new(node: TechNode, wire_type: WireType, projection: WireProjection) -> WireParams {
        let f = node.feature_m();
        let pitch = wire_type.pitch_in_f() * f;
        let drawn_width = pitch / 2.0;
        let spacing = pitch / 2.0;
        let drawn_thickness = wire_type.aspect_ratio() * drawn_width;

        let barrier = barrier_thickness(node, projection);
        let (alpha_scatter, rho, dishing) = match projection {
            WireProjection::Aggressive => (1.0, 1.95e-8, 0.0),
            WireProjection::Conservative => (1.05, 2.20e-8, 0.10),
        };
        let width = (drawn_width - 2.0 * barrier).max(drawn_width * 0.3);
        let thickness = (drawn_thickness * (1.0 - dishing) - barrier).max(drawn_thickness * 0.3);
        let r_per_m = alpha_scatter * rho / (width * thickness);

        let k = dielectric_k(node, projection);
        // Parallel-plate sidewall coupling (×2 neighbours, ×1.5 Miller) plus
        // vertical plates to the layers above/below (ILD thickness ≈ width)
        // plus a constant fringe term.
        let miller = 1.5;
        let c_coupling = miller * 2.0 * EPS0 * k * drawn_thickness / spacing;
        let c_vertical = 2.0 * EPS0 * k * drawn_width / drawn_width;
        let c_fringe = 0.115e-9; // 0.115 fF/µm, empirically constant
        let c_per_m = c_coupling + c_vertical + c_fringe;

        WireParams {
            wire_type,
            projection,
            pitch,
            width,
            thickness,
            r_per_m,
            c_per_m,
        }
    }

    /// Unrepeated (quadratic) Elmore delay of a wire of length `len_m`, s.
    ///
    /// Long wires should instead be driven through the repeater optimizer in
    /// `mcpat-circuit`; this is the raw distributed-RC bound `0.38·R·C·L²`.
    #[must_use]
    pub fn unrepeated_delay(&self, len_m: f64) -> f64 {
        0.38 * self.r_per_m * self.c_per_m * len_m * len_m
    }

    /// Switching energy of a full-swing transition on a wire of length
    /// `len_m` at supply `vdd`, J.
    #[must_use]
    pub fn switching_energy(&self, len_m: f64, vdd: f64) -> f64 {
        0.5 * self.c_per_m * len_m * vdd * vdd
    }
}

/// Parameters of a low-swing differential interconnect.
///
/// McPAT (via CACTI 6) models long, latency-tolerant buses as low-swing
/// differential pairs: the driver swings the pair by `v_swing` instead of
/// the full supply, and a sense amplifier recovers the value. Energy per
/// bit is roughly `C·ΔV·Vdd` plus the sense-amp energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowSwingWire {
    /// Underlying full-swing wire parameters (doubled for the pair).
    pub wire: WireParams,
    /// Differential voltage swing, V.
    pub v_swing: f64,
    /// Energy consumed by the sense amplifier per transition, J.
    pub sense_energy: f64,
    /// Sense amplifier resolution delay, s.
    pub sense_delay: f64,
}

impl LowSwingWire {
    /// Builds a low-swing differential global wire at a node.
    #[must_use]
    pub fn new(node: TechNode, projection: WireProjection) -> LowSwingWire {
        let wire = WireParams::new(node, WireType::Global, projection);
        LowSwingWire {
            wire,
            v_swing: 0.1,
            sense_energy: 2.0e-15 * node.scale_from_90nm(),
            sense_delay: 100e-12 * node.scale_from_90nm().max(0.3),
        }
    }

    /// Energy per transmitted bit over `len_m`, J.
    ///
    /// Both wires of the pair are charged by `v_swing` from the `vdd` rail.
    #[must_use]
    pub fn energy_per_bit(&self, len_m: f64, vdd: f64) -> f64 {
        2.0 * self.wire.c_per_m * len_m * self.v_swing * vdd + self.sense_energy
    }

    /// End-to-end delay over `len_m`, s (RC flight time plus sensing).
    #[must_use]
    pub fn delay(&self, len_m: f64) -> f64 {
        self.wire.unrepeated_delay(len_m) + self.sense_delay
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn resistance_grows_as_wires_shrink() {
        let mut last = 0.0;
        for node in TechNode::ALL {
            let w = WireParams::new(node, WireType::Intermediate, WireProjection::Aggressive);
            assert!(w.r_per_m > last, "{node}: r = {}", w.r_per_m);
            last = w.r_per_m;
        }
    }

    #[test]
    fn capacitance_per_length_is_roughly_constant() {
        // Geometry scales but k drops, so C' stays within a factor ~2.
        let vals: Vec<f64> = TechNode::ALL
            .iter()
            .map(|&n| WireParams::new(n, WireType::Global, WireProjection::Aggressive).c_per_m)
            .collect();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max / min < 2.0, "min {min:e} max {max:e}");
    }

    #[test]
    fn conservative_is_worse_than_aggressive() {
        for node in TechNode::ALL {
            for wt in WireType::ALL {
                let a = WireParams::new(node, wt, WireProjection::Aggressive);
                let c = WireParams::new(node, wt, WireProjection::Conservative);
                assert!(c.r_per_m > a.r_per_m);
                assert!(c.c_per_m > a.c_per_m);
            }
        }
    }

    #[test]
    fn wider_classes_have_lower_resistance() {
        for node in TechNode::ALL {
            let local = WireParams::new(node, WireType::Local, WireProjection::Aggressive);
            let global = WireParams::new(node, WireType::Global, WireProjection::Aggressive);
            assert!(global.r_per_m < local.r_per_m);
        }
    }

    #[test]
    fn ninety_nm_global_wire_is_calibrated() {
        // Sanity-check the absolute scale at 90 nm: global wires should be
        // in the hundreds of Ω/mm and ~0.2 pF/mm range.
        let w = WireParams::new(TechNode::N90, WireType::Global, WireProjection::Aggressive);
        let r_per_mm = w.r_per_m * 1e-3;
        let c_per_mm = w.c_per_m * 1e-3;
        assert!(r_per_mm > 20.0 && r_per_mm < 500.0, "r = {r_per_mm} Ω/mm");
        assert!(
            c_per_mm > 0.1e-12 && c_per_mm < 0.5e-12,
            "c = {c_per_mm:e} F/mm"
        );
    }

    #[test]
    fn low_swing_saves_energy_on_long_wires() {
        let node = TechNode::N32;
        let vdd = 0.9;
        let len = 5e-3;
        let fs = WireParams::new(node, WireType::Global, WireProjection::Aggressive);
        let ls = LowSwingWire::new(node, WireProjection::Aggressive);
        assert!(ls.energy_per_bit(len, vdd) < fs.switching_energy(len, vdd));
    }

    #[test]
    fn unrepeated_delay_is_quadratic() {
        let w = WireParams::new(
            TechNode::N45,
            WireType::Intermediate,
            WireProjection::Aggressive,
        );
        let d1 = w.unrepeated_delay(1e-3);
        let d2 = w.unrepeated_delay(2e-3);
        assert!((d2 / d1 - 4.0).abs() < 1e-9);
    }
}
