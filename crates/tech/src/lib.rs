//! # mcpat-tech — the technology layer of mcpat-rs
//!
//! This crate is the bottom of the McPAT modeling stack. It provides the
//! *technology level* described in the McPAT paper (MICRO 2009): tabulated,
//! ITRS-style MOSFET device parameters for the 180 nm through 22 nm nodes,
//! three device flavors (high performance, low standby power, low operating
//! power), interconnect RC projections (aggressive and conservative), and
//! memory-cell geometry (SRAM, CAM, eDRAM, and flip-flop based storage).
//!
//! Everything higher in the stack — circuit primitives, array models, core
//! models, networks-on-chip — consumes only the scalar parameters exported
//! here, so retargeting the whole framework to a different process is a
//! matter of editing the tables in this crate.
//!
//! ## Quick start
//!
//! ```
//! use mcpat_tech::{TechNode, DeviceType, TechParams};
//!
//! // A 32nm high-performance process at 360 K (typical hot-spot temperature).
//! let tech = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);
//! assert!(tech.device.vdd > 0.5 && tech.device.vdd < 1.3);
//! // Leakage current is per meter of transistor width and grows with T.
//! let cold = TechParams::new(TechNode::N32, DeviceType::Hp, 300.0);
//! assert!(tech.device.i_off_n(tech.temperature) > cold.device.i_off_n(cold.temperature));
//! ```
//!
//! ## Units
//!
//! All quantities are SI unless the name says otherwise:
//! seconds, meters, volts, amperes, farads, ohms, watts, joules.
//! Transistor widths are expressed in meters; per-width currents and
//! capacitances are per meter of gate width (A/m, F/m).

pub mod cell;
pub mod device;
pub mod node;
pub mod params;
pub mod wire;

pub use cell::{CamCell, DffStorage, EdramCell, SramCell};
pub use device::{DeviceParams, DeviceType};
pub use node::TechNode;
pub use params::TechParams;
pub use wire::{LowSwingWire, WireParams, WireProjection, WireType};

/// Vacuum permittivity, F/m.
pub const EPS0: f64 = 8.854e-12;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge, C.
pub const Q_CHARGE: f64 = 1.602_176_634e-19;

/// Reference temperature for the tabulated leakage currents, kelvin.
pub const T_REF: f64 = 300.0;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_are_physical() {
        assert!(EPS0 > 8.8e-12 && EPS0 < 8.9e-12);
        assert!(BOLTZMANN > 0.0);
        assert!(Q_CHARGE > 0.0);
    }

    #[test]
    fn public_api_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TechParams>();
        assert_send_sync::<DeviceParams>();
        assert_send_sync::<WireParams>();
    }
}
