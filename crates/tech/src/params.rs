//! The [`TechParams`] facade: one value that answers every technology
//! question the upper layers ask.

use crate::cell::{CamCell, DffStorage, EdramCell, SramCell};
use crate::device::{DeviceParams, DeviceType};
use crate::node::TechNode;
use crate::wire::{LowSwingWire, WireParams, WireProjection, WireType};

/// A fully resolved process corner: node + device flavor + temperature +
/// interconnect projection.
///
/// `TechParams` is cheap to copy and is threaded by value through every
/// model in the framework.
///
/// # Examples
///
/// ```
/// use mcpat_tech::{TechNode, DeviceType, TechParams, WireType};
///
/// let tech = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0)
///     .with_projection(mcpat_tech::WireProjection::Conservative);
/// let fo4 = tech.fo4();
/// assert!(fo4 > 5e-12 && fo4 < 100e-12);
/// let wire = tech.wire(WireType::Global);
/// assert!(wire.r_per_m > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Technology node.
    pub node: TechNode,
    /// Device flavor used for logic in this domain.
    pub device_type: DeviceType,
    /// Junction temperature, K.
    pub temperature: f64,
    /// Interconnect projection.
    pub projection: WireProjection,
    /// Resolved device parameters for `device_type`.
    pub device: DeviceParams,
    /// When true, non-critical transistors use long-channel variants,
    /// multiplying their subthreshold leakage by the device's
    /// `long_channel_leakage_reduction` factor.
    pub long_channel_leakage: bool,
    /// Corner-invariant derived constants, recomputed by every
    /// constructor / `with_*` builder. Private so no caller can desync
    /// them from the fields above.
    derived: TechDerived,
}

/// Values that depend only on the corner itself and are hot on the
/// per-candidate solver path: temperature-resolved leakage currents
/// (each hides an `exp`), on-resistances, the FO4 delay, and the three
/// wire classes. Caching them here makes `subthreshold_leakage`,
/// `r_eq_n`, `fo4`, and `wire` branch-and-table-free.
///
/// Every cached value is the result of evaluating the *same expression*
/// the uncached accessor used, exactly once — so reads are bit-identical
/// to recomputation.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TechDerived {
    i_off_n_t: f64,
    i_off_p_t: f64,
    r_on_n: f64,
    r_on_p: f64,
    fo4: f64,
    wire_local: WireParams,
    wire_intermediate: WireParams,
    wire_global: WireParams,
}

impl TechDerived {
    fn compute(
        node: TechNode,
        device: &DeviceParams,
        temperature: f64,
        projection: WireProjection,
    ) -> TechDerived {
        let r_on_n = device.r_on_n();
        // Same operation sequence as the pre-cache `TechParams::fo4`.
        let wn = 1.5 * node.feature_m();
        let wp = 2.0 * wn;
        let r = r_on_n / wn;
        let c_in = device.c_g * (wn + wp);
        let c_self = device.c_d * (wn + wp);
        TechDerived {
            i_off_n_t: device.i_off_n(temperature),
            i_off_p_t: device.i_off_p(temperature),
            r_on_n,
            r_on_p: device.r_on_p(),
            fo4: 0.69 * r * (c_self + 4.0 * c_in),
            wire_local: WireParams::new(node, WireType::Local, projection),
            wire_intermediate: WireParams::new(node, WireType::Intermediate, projection),
            wire_global: WireParams::new(node, WireType::Global, projection),
        }
    }
}

impl TechParams {
    /// Creates a corner with the aggressive interconnect projection.
    #[must_use]
    pub fn new(node: TechNode, device_type: DeviceType, temperature: f64) -> TechParams {
        let device = DeviceParams::lookup(node, device_type);
        let projection = WireProjection::Aggressive;
        TechParams {
            node,
            device_type,
            temperature,
            projection,
            device,
            long_channel_leakage: false,
            derived: TechDerived::compute(node, &device, temperature, projection),
        }
    }

    /// Recomputes the derived-constant cache after a builder changed one
    /// of the fields it depends on.
    fn refreshed(mut self) -> TechParams {
        self.derived =
            TechDerived::compute(self.node, &self.device, self.temperature, self.projection);
        self
    }

    /// Replaces the interconnect projection.
    #[must_use]
    pub fn with_projection(mut self, projection: WireProjection) -> TechParams {
        self.projection = projection;
        self.refreshed()
    }

    /// Enables long-channel devices on non-critical paths.
    #[must_use]
    pub fn with_long_channel_leakage(mut self, enabled: bool) -> TechParams {
        self.long_channel_leakage = enabled;
        self
    }

    /// Returns the same corner with its supply re-biased to
    /// `scale · Vdd` (true DVFS: drive, leakage, and hence FO4 all move;
    /// see [`DeviceParams::with_vdd_scale`]).
    ///
    /// # Panics
    ///
    /// Panics if the scaled supply falls below the threshold voltage.
    #[must_use]
    pub fn with_vdd_scale(mut self, scale: f64) -> TechParams {
        self.device = self.device.with_vdd_scale(scale);
        self.refreshed()
    }

    /// Returns the same corner with a different device flavor
    /// (e.g. LSTP for a cache array inside an HP chip).
    #[must_use]
    pub fn with_device_type(mut self, device_type: DeviceType) -> TechParams {
        self.device_type = device_type;
        self.device = DeviceParams::lookup(self.node, device_type);
        self.refreshed()
    }

    /// Minimum NMOS width in this process, m.
    #[must_use]
    pub fn min_w_nmos(&self) -> f64 {
        1.5 * self.node.feature_m()
    }

    /// Minimum PMOS width (sized for equal rise/fall drive), m.
    #[must_use]
    pub fn min_w_pmos(&self) -> f64 {
        2.0 * self.min_w_nmos()
    }

    /// Gate capacitance of a transistor of width `w`, F.
    #[must_use]
    pub fn gate_cap(&self, w: f64) -> f64 {
        self.device.c_g * w
    }

    /// Drain capacitance of a transistor of width `w`, F.
    #[must_use]
    pub fn drain_cap(&self, w: f64) -> f64 {
        self.device.c_d * w
    }

    /// Equivalent switching resistance of an NMOS of width `w`, Ω.
    #[must_use]
    pub fn r_eq_n(&self, w: f64) -> f64 {
        self.derived.r_on_n / w
    }

    /// Equivalent switching resistance of a PMOS of width `w`, Ω.
    #[must_use]
    pub fn r_eq_p(&self, w: f64) -> f64 {
        self.derived.r_on_p / w
    }

    /// The fanout-of-4 inverter delay of this corner, s.
    ///
    /// This is the canonical speed unit: pipeline depths and achievable
    /// clock rates are expressed in FO4s by the timing roll-up.
    #[must_use]
    pub fn fo4(&self) -> f64 {
        self.derived.fo4
    }

    /// Subthreshold leakage power of a gate with total NMOS width `w_n`
    /// and PMOS width `w_p`, W. On average half of each stack leaks.
    #[must_use]
    pub fn subthreshold_leakage(&self, w_n: f64, w_p: f64) -> f64 {
        let factor = if self.long_channel_leakage {
            self.device.long_channel_leakage_reduction
        } else {
            1.0
        };
        0.5 * factor
            * (self.derived.i_off_n_t * w_n + self.derived.i_off_p_t * w_p)
            * self.device.vdd
    }

    /// Gate-tunneling leakage power for the same widths, W.
    #[must_use]
    pub fn gate_leakage(&self, w_n: f64, w_p: f64) -> f64 {
        0.5 * self.device.i_g_n * (w_n + w_p / 2.0) * self.device.vdd
    }

    /// Total static power of a gate (subthreshold + gate leakage), W.
    #[must_use]
    pub fn static_power(&self, w_n: f64, w_p: f64) -> f64 {
        self.subthreshold_leakage(w_n, w_p) + self.gate_leakage(w_n, w_p)
    }

    /// Wire parameters for a wire class under this corner's projection.
    #[must_use]
    pub fn wire(&self, wire_type: WireType) -> WireParams {
        match wire_type {
            WireType::Local => self.derived.wire_local,
            WireType::Intermediate => self.derived.wire_intermediate,
            WireType::Global => self.derived.wire_global,
        }
    }

    /// Low-swing differential wire parameters for this corner.
    #[must_use]
    pub fn low_swing_wire(&self) -> LowSwingWire {
        LowSwingWire::new(self.node, self.projection)
    }

    /// The canonical 6T SRAM cell of this node.
    #[must_use]
    pub fn sram_cell(&self) -> SramCell {
        SramCell::new(self.node)
    }

    /// The canonical CAM cell of this node.
    #[must_use]
    pub fn cam_cell(&self) -> CamCell {
        CamCell::new(self.node)
    }

    /// The canonical eDRAM cell of this node.
    #[must_use]
    pub fn edram_cell(&self) -> EdramCell {
        EdramCell::new(self.node)
    }

    /// Flip-flop storage parameters of this corner.
    #[must_use]
    pub fn dff(&self) -> DffStorage {
        DffStorage::new(self.node, &self.device)
    }

    /// Full-swing switching energy of a capacitance `c` at this corner's
    /// supply, J (the ½·C·V² of one transition).
    #[must_use]
    pub fn switch_energy(&self, c: f64) -> f64 {
        0.5 * c * self.device.vdd * self.device.vdd
    }

    /// Short-circuit energy overhead of static CMOS switching, as a
    /// fraction of the capacitive switching energy.
    ///
    /// Follows the Nose–Sakurai observation that the crowbar current
    /// grows with the supply-to-threshold headroom; ≈10% at Vdd/Vth ≈ 5
    /// and negligible as Vdd approaches 2·Vth.
    #[must_use]
    pub fn short_circuit_factor(&self) -> f64 {
        let ratio = self.device.vdd / self.device.vth.max(1e-3);
        (0.02 * (ratio - 2.0)).clamp(0.0, 0.15)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn fo4_improves_with_scaling() {
        let mut last = f64::INFINITY;
        for node in TechNode::ALL {
            let t = TechParams::new(node, DeviceType::Hp, 360.0);
            let fo4 = t.fo4();
            assert!(fo4 < last, "{node}: fo4 = {fo4:e}");
            last = fo4;
        }
    }

    #[test]
    fn lstp_is_slower_than_hp() {
        for node in TechNode::ALL {
            let hp = TechParams::new(node, DeviceType::Hp, 360.0);
            let lstp = TechParams::new(node, DeviceType::Lstp, 360.0);
            assert!(lstp.fo4() > hp.fo4());
        }
    }

    #[test]
    fn long_channel_flag_reduces_subthreshold_only() {
        let base = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);
        let lc = base.with_long_channel_leakage(true);
        let w = 1e-6;
        assert!(lc.subthreshold_leakage(w, w) < base.subthreshold_leakage(w, w));
        assert!((lc.gate_leakage(w, w) - base.gate_leakage(w, w)).abs() < 1e-18);
    }

    #[test]
    fn device_type_swap_changes_vdd() {
        let hp = TechParams::new(TechNode::N45, DeviceType::Hp, 360.0);
        let as_lstp = hp.with_device_type(DeviceType::Lstp);
        assert!(as_lstp.device.vdd > hp.device.vdd);
        assert_eq!(as_lstp.node, hp.node);
    }

    #[test]
    fn switch_energy_matches_half_cv2() {
        let t = TechParams::new(TechNode::N65, DeviceType::Hp, 360.0);
        let c = 1e-15;
        let e = t.switch_energy(c);
        assert!((e - 0.5 * c * t.device.vdd * t.device.vdd).abs() < 1e-24);
    }

    #[test]
    fn vdd_scaled_corner_is_slower_but_frugal() {
        let nom = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);
        let low = nom.with_vdd_scale(0.8);
        assert!(low.fo4() > nom.fo4());
        let w = 1e-6;
        assert!(low.subthreshold_leakage(w, w) < nom.subthreshold_leakage(w, w));
        assert!(low.switch_energy(1e-15) < nom.switch_energy(1e-15));
    }

    #[test]
    fn derived_cache_matches_direct_recomputation() {
        for node in TechNode::ALL {
            for dt in [DeviceType::Hp, DeviceType::Lstp, DeviceType::Lop] {
                for t in [
                    TechParams::new(node, dt, 340.0),
                    TechParams::new(node, dt, 380.0).with_vdd_scale(0.9),
                    TechParams::new(node, DeviceType::Hp, 360.0).with_device_type(dt),
                    TechParams::new(node, dt, 360.0).with_projection(WireProjection::Conservative),
                ] {
                    let d = &t.derived;
                    assert_eq!(
                        d.i_off_n_t.to_bits(),
                        t.device.i_off_n(t.temperature).to_bits()
                    );
                    assert_eq!(
                        d.i_off_p_t.to_bits(),
                        t.device.i_off_p(t.temperature).to_bits()
                    );
                    assert_eq!(d.r_on_n.to_bits(), t.device.r_on_n().to_bits());
                    assert_eq!(d.r_on_p.to_bits(), t.device.r_on_p().to_bits());
                    // The pre-cache fo4 expression, verbatim.
                    let wn = t.min_w_nmos();
                    let wp = t.min_w_pmos();
                    let r = t.r_eq_n(wn);
                    let c_in = t.gate_cap(wn + wp);
                    let c_self = t.drain_cap(wn + wp);
                    let fo4 = 0.69 * r * (c_self + 4.0 * c_in);
                    assert_eq!(d.fo4.to_bits(), fo4.to_bits());
                    for wt in [WireType::Local, WireType::Intermediate, WireType::Global] {
                        let cached = t.wire(wt);
                        let fresh = WireParams::new(t.node, wt, t.projection);
                        assert_eq!(cached.r_per_m.to_bits(), fresh.r_per_m.to_bits());
                        assert_eq!(cached.c_per_m.to_bits(), fresh.c_per_m.to_bits());
                        assert_eq!(cached.pitch.to_bits(), fresh.pitch.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn static_power_scale_is_sane() {
        // One minimum inverter at 32 nm HP, 360 K should leak nW-scale.
        let t = TechParams::new(TechNode::N32, DeviceType::Hp, 360.0);
        let p = t.static_power(t.min_w_nmos(), t.min_w_pmos());
        assert!(p > 1e-10 && p < 1e-6, "p = {p:e}");
    }
}
