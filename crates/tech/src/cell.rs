//! Storage cell geometry and electrical characteristics.
//!
//! The array model (`mcpat-array`) builds RAM, CAM and eDRAM mats out of
//! these cells; cores additionally use flip-flop based storage for small
//! latch arrays (pipeline registers, FIFOs). Dimensions are expressed in
//! multiples of the drawn feature size `F` so they scale automatically,
//! matching CACTI's `area = k·F²` formulation.

use crate::device::DeviceParams;
use crate::node::TechNode;

/// A 6T SRAM cell.
///
/// # Examples
///
/// ```
/// use mcpat_tech::{SramCell, TechNode};
/// let cell = SramCell::new(TechNode::N65);
/// let f = TechNode::N65.feature_m();
/// assert!((cell.area_m2() / (f * f) - 146.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramCell {
    /// Cell height, m (wordline direction pitch).
    pub height: f64,
    /// Cell width, m (bitline direction pitch).
    pub width: f64,
    /// Access (pass-gate) transistor width, m.
    pub w_access: f64,
    /// Pull-down NMOS width, m.
    pub w_pulldown: f64,
    /// Pull-up PMOS width, m.
    pub w_pullup: f64,
}

impl SramCell {
    /// Canonical 6T cell area in F².
    pub const AREA_F2: f64 = 146.0;

    /// Builds the canonical 6T cell for a node.
    #[must_use]
    pub fn new(node: TechNode) -> SramCell {
        let f = node.feature_m();
        // 146 F² with a ~1.46 aspect ratio: 10 F tall × 14.6 F wide.
        SramCell {
            height: 10.0 * f,
            width: 14.6 * f,
            w_access: 1.31 * f,
            w_pulldown: 2.0 * f,
            w_pullup: 1.23 * f,
        }
    }

    /// Cell area, m².
    #[must_use]
    pub fn area_m2(&self) -> f64 {
        self.height * self.width
    }

    /// Subthreshold + gate leakage power of one cell, W.
    ///
    /// In a 6T cell exactly one NMOS pull-down, one PMOS pull-up and the two
    /// access devices leak at any time; gate leakage flows through the two
    /// on transistors.
    #[must_use]
    pub fn leakage_power(&self, dev: &DeviceParams, t_kelvin: f64) -> f64 {
        let sub = dev.i_off_n(t_kelvin) * (self.w_pulldown + 2.0 * self.w_access)
            + dev.i_off_p(t_kelvin) * self.w_pullup;
        let gate = dev.i_g_n * (self.w_pulldown + self.w_pullup);
        (sub + gate) * dev.vdd
    }

    /// Capacitance one cell contributes to its bitline (drain of the access
    /// transistor), F.
    #[must_use]
    pub fn bitline_cap_contribution(&self, dev: &DeviceParams) -> f64 {
        dev.c_d * self.w_access
    }

    /// Capacitance one cell contributes to its wordline (gates of the two
    /// access transistors), F.
    #[must_use]
    pub fn wordline_cap_contribution(&self, dev: &DeviceParams) -> f64 {
        2.0 * dev.c_g * self.w_access
    }

    /// Read current available to discharge the bitline, A.
    #[must_use]
    pub fn read_current(&self, dev: &DeviceParams) -> f64 {
        // Series access + pull-down stack ≈ half the weaker device's drive.
        0.5 * dev.i_on_n * self.w_access.min(self.w_pulldown)
    }
}

/// A ternary CAM cell (6T storage + comparison network, 10T total).
///
/// CAM mats are used for fully-associative structures: store queues, TLBs,
/// issue-queue wakeup, and reverse-mapped RATs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CamCell {
    /// Cell height, m.
    pub height: f64,
    /// Cell width, m.
    pub width: f64,
    /// Underlying storage sub-cell.
    pub storage: SramCell,
    /// Comparison pull-down width (drives the matchline), m.
    pub w_compare: f64,
}

impl CamCell {
    /// Canonical CAM cell area in F² (≈2.3× the 6T cell).
    pub const AREA_F2: f64 = 338.0;

    /// Builds the canonical CAM cell for a node.
    #[must_use]
    pub fn new(node: TechNode) -> CamCell {
        let f = node.feature_m();
        CamCell {
            height: 13.0 * f,
            width: 26.0 * f,
            storage: SramCell::new(node),
            w_compare: 2.0 * f,
        }
    }

    /// Cell area, m².
    #[must_use]
    pub fn area_m2(&self) -> f64 {
        self.height * self.width
    }

    /// Leakage power of one CAM cell, W (storage plus comparator stack).
    #[must_use]
    pub fn leakage_power(&self, dev: &DeviceParams, t_kelvin: f64) -> f64 {
        self.storage.leakage_power(dev, t_kelvin) + dev.i_off_n(t_kelvin) * self.w_compare * dev.vdd
    }

    /// Capacitance one cell contributes to its matchline, F.
    #[must_use]
    pub fn matchline_cap_contribution(&self, dev: &DeviceParams) -> f64 {
        2.0 * dev.c_d * self.w_compare
    }

    /// Capacitance one cell contributes to a searchline (comparator gates), F.
    #[must_use]
    pub fn searchline_cap_contribution(&self, dev: &DeviceParams) -> f64 {
        2.0 * dev.c_g * self.w_compare
    }
}

/// A logic-process embedded-DRAM (1T1C) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdramCell {
    /// Cell height, m.
    pub height: f64,
    /// Cell width, m.
    pub width: f64,
    /// Access transistor width, m.
    pub w_access: f64,
    /// Storage capacitance, F.
    pub c_storage: f64,
    /// Retention time at 350 K, s (halves every +10 K).
    pub retention_s: f64,
}

impl EdramCell {
    /// Canonical eDRAM cell area in F².
    pub const AREA_F2: f64 = 33.0;

    /// Builds the canonical eDRAM cell for a node.
    #[must_use]
    pub fn new(node: TechNode) -> EdramCell {
        let f = node.feature_m();
        EdramCell {
            height: 5.5 * f,
            width: 6.0 * f,
            w_access: 1.5 * f,
            c_storage: 20e-15,
            retention_s: 40e-6,
        }
    }

    /// Cell area, m².
    #[must_use]
    pub fn area_m2(&self) -> f64 {
        self.height * self.width
    }

    /// Retention time at an arbitrary temperature, s.
    #[must_use]
    pub fn retention_at(&self, t_kelvin: f64) -> f64 {
        self.retention_s * 2f64.powf((350.0 - t_kelvin) / 10.0)
    }
}

/// Flip-flop based storage, used for small latch arrays (pipeline
/// registers, small FIFOs, rename checkpoints) where decoded random access
/// is unnecessary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DffStorage {
    /// Area per stored bit, m².
    pub area_per_bit: f64,
    /// Data-input capacitance per bit, F.
    pub c_in: f64,
    /// Clock-pin capacitance per bit, F.
    pub c_clock: f64,
    /// Internal switched capacitance per write toggle, F.
    pub c_internal: f64,
    /// Total leaking transistor width per bit, m.
    pub leak_width: f64,
}

impl DffStorage {
    /// Area of one flip-flop bit in F² (a ~24-transistor standard cell).
    pub const AREA_F2: f64 = 1050.0;

    /// Builds the flip-flop storage parameters for a node.
    #[must_use]
    pub fn new(node: TechNode, dev: &DeviceParams) -> DffStorage {
        let f = node.feature_m();
        let min_width = 1.5 * f; // minimum standard-cell transistor width
        DffStorage {
            area_per_bit: Self::AREA_F2 * f * f,
            c_in: 2.0 * min_width * dev.c_g,
            c_clock: 2.0 * min_width * dev.c_g,
            c_internal: 8.0 * min_width * (dev.c_g + dev.c_d),
            leak_width: 10.0 * min_width,
        }
    }

    /// Energy of one data toggle (write of a changing bit), J.
    #[must_use]
    pub fn write_energy(&self, vdd: f64) -> f64 {
        0.5 * (self.c_in + self.c_internal) * vdd * vdd
    }

    /// Energy drawn from the clock per cycle per bit (clock pin only), J.
    #[must_use]
    pub fn clock_energy(&self, vdd: f64) -> f64 {
        0.5 * self.c_clock * vdd * vdd
    }

    /// Leakage power per stored bit, W.
    #[must_use]
    pub fn leakage_power(&self, dev: &DeviceParams, t_kelvin: f64) -> f64 {
        // Half the devices leak (complementary logic), split N/P evenly.
        let w = self.leak_width / 2.0;
        (dev.i_off_n(t_kelvin) * w / 2.0 + dev.i_off_p(t_kelvin) * w / 2.0 + dev.i_g_n * w / 2.0)
            * dev.vdd
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::device::DeviceType;

    #[test]
    fn sram_cell_area_scales_quadratically() {
        let a90 = SramCell::new(TechNode::N90).area_m2();
        let a45 = SramCell::new(TechNode::N45).area_m2();
        assert!((a90 / a45 - 4.0).abs() < 0.01);
    }

    #[test]
    fn cam_cell_is_bigger_than_sram_cell() {
        for node in TechNode::ALL {
            assert!(CamCell::new(node).area_m2() > 2.0 * SramCell::new(node).area_m2());
        }
    }

    #[test]
    fn edram_cell_is_denser_than_sram() {
        for node in TechNode::ALL {
            assert!(EdramCell::new(node).area_m2() < SramCell::new(node).area_m2() / 4.0);
        }
    }

    #[test]
    fn sram_leakage_is_positive_and_grows_with_t() {
        let dev = DeviceParams::lookup(TechNode::N32, DeviceType::Hp);
        let cell = SramCell::new(TechNode::N32);
        let p_cold = cell.leakage_power(&dev, 300.0);
        let p_hot = cell.leakage_power(&dev, 380.0);
        assert!(p_cold > 0.0);
        assert!(p_hot > 2.0 * p_cold);
    }

    #[test]
    fn sram_cell_leakage_magnitude_is_sane() {
        // A 65 nm HP 6T cell leaks on the order of tens of nW at 360 K;
        // a 1 MB array would then leak on the order of a watt or less.
        let dev = DeviceParams::lookup(TechNode::N65, DeviceType::Hp);
        let cell = SramCell::new(TechNode::N65);
        let p = cell.leakage_power(&dev, 360.0);
        assert!(p > 1e-10 && p < 1e-6, "leak = {p:e} W");
    }

    #[test]
    fn dff_write_energy_is_femtojoules() {
        let dev = DeviceParams::lookup(TechNode::N45, DeviceType::Hp);
        let dff = DffStorage::new(TechNode::N45, &dev);
        let e = dff.write_energy(dev.vdd);
        assert!(e > 1e-17 && e < 1e-13, "e = {e:e} J");
    }

    #[test]
    fn edram_retention_halves_per_10k() {
        let cell = EdramCell::new(TechNode::N45);
        let r350 = cell.retention_at(350.0);
        let r360 = cell.retention_at(360.0);
        assert!((r350 / r360 - 2.0).abs() < 1e-9);
    }
}
