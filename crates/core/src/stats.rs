//! Chip-level runtime statistics — the glue between a performance
//! simulator and the power model.

use mcpat_interconnect::noc::NocStats;
use mcpat_mcore::stats::CoreStats;
use mcpat_uncore::memctrl::MemCtrlStats;
use mcpat_uncore::shared_cache::SharedCacheStats;
use serde::{Deserialize, Serialize};

/// Activity counters for one simulated interval of the whole chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ChipStats {
    /// Interval length, s.
    pub duration_s: f64,
    /// Per-core statistics. Length must equal the core count, or be 1 to
    /// broadcast the same counters to every core.
    pub cores: Vec<CoreStats>,
    /// Aggregate L2 statistics (all instances combined).
    pub l2: SharedCacheStats,
    /// Aggregate L3 statistics.
    pub l3: SharedCacheStats,
    /// Fabric traffic.
    pub noc: NocStats,
    /// Memory controller traffic.
    pub mc: MemCtrlStats,
    /// Utilization of the provisioned other-I/O bandwidth, 0–1.
    pub io_utilization: f64,
    /// Shared-FPU operations executed.
    pub shared_fpu_ops: u64,
    /// Power-gating state transitions (sleep→wake) across all cores in
    /// the interval. Each wakeup recharges the core's virtual supply.
    #[serde(default)]
    pub core_wakeups: u64,
}

/// Splits an aggregate access count into the peak model's 3:1
/// read:write mix so that `reads + writes == total` for every input.
/// (Independent truncation — `total*3/4` and `total/4` — leaks up to
/// one access per call and saturates inconsistently near `u64::MAX`;
/// deriving reads as the complement conserves the aggregate exactly.)
fn split_rw(total: u64) -> (u64, u64) {
    let writes = total / 4;
    (total - writes, writes)
}

impl ChipStats {
    /// A TDP-style worst-case interval of `duration_s` seconds for a chip
    /// with `num_cores` cores at `clock_hz`, issue width `w`.
    #[must_use]
    pub fn peak(duration_s: f64, num_cores: u32, clock_hz: f64, w: u32, fp_w: u32) -> ChipStats {
        let cycles = (duration_s * clock_hz) as u64;
        let core = CoreStats::peak(cycles, w, fp_w);
        // Miss traffic spills into the L2 and memory at peak rates; TDP
        // assumes a cache-hostile footprint (≈1 L2 access per 4 cycles
        // per core).
        let l2_accesses = core
            .dcache_misses
            .saturating_add(core.icache_misses)
            .max(cycles / 4);
        // Aggregate accesses across cores; saturate so absurd
        // clock/width inputs degrade instead of overflowing.
        let chip = l2_accesses.saturating_mul(u64::from(num_cores));
        let (l2_reads, l2_writes) = split_rw(chip);
        ChipStats {
            duration_s,
            cores: vec![core],
            l2: SharedCacheStats {
                interval_s: duration_s,
                reads: l2_reads,
                writes: l2_writes,
                misses: chip / 10,
                writebacks: chip / 20,
                snoops: chip / 8,
            },
            l3: SharedCacheStats {
                interval_s: duration_s,
                reads: chip / 10,
                writes: chip / 40,
                misses: chip / 40,
                writebacks: chip / 80,
                snoops: 0,
            },
            noc: NocStats {
                interval_s: duration_s,
                // Request + response packets of ~4 flits per L2 access.
                flits: chip.saturating_mul(8),
                avg_hops: 0.0,
            },
            mc: MemCtrlStats {
                interval_s: duration_s,
                bytes_read: chip.saturating_mul(64) / 10,
                bytes_written: chip.saturating_mul(64) / 40,
            },
            io_utilization: 1.0,
            shared_fpu_ops: cycles / 2,
            core_wakeups: 0,
        }
    }

    /// The statistics of core `i` (broadcasting if only one entry).
    #[must_use]
    pub fn core(&self, i: usize) -> CoreStats {
        let last = self.cores.len().saturating_sub(1);
        self.cores.get(i.min(last)).copied().unwrap_or_default()
    }

    /// Total committed instructions across all cores given the chip has
    /// `num_cores` cores.
    #[must_use]
    pub fn total_commits(&self, num_cores: u32) -> u64 {
        match self.cores.as_slice() {
            [only] => only.commits.saturating_mul(u64::from(num_cores)),
            _ => self.cores.iter().map(|c| c.commits).sum(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn l2_split_conserves_the_aggregate(total in 0u64..u64::MAX) {
            let (reads, writes) = split_rw(total);
            prop_assert_eq!(reads.checked_add(writes), Some(total));
            // The mix stays read-dominated (3:1 up to truncation).
            prop_assert!(reads >= writes.saturating_mul(2));
        }
    }

    #[test]
    fn l2_split_conserves_at_the_extremes() {
        let edges = [
            0,
            1,
            2,
            3,
            4,
            5,
            7,
            u64::MAX - 3,
            u64::MAX - 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for total in edges {
            let (reads, writes) = split_rw(total);
            assert_eq!(
                reads.checked_add(writes),
                Some(total),
                "split of {total} leaks accesses"
            );
        }
    }

    #[test]
    fn saturated_peak_traffic_still_conserves_reads_plus_writes() {
        // Absurd clock × core count saturates the aggregate to
        // u64::MAX; the split must still sum back exactly.
        let s = ChipStats::peak(1.0, u32::MAX, 1e30, 8, 8);
        assert_eq!(s.l2.reads.checked_add(s.l2.writes), Some(u64::MAX));
    }

    #[test]
    fn peak_stats_populate_every_domain() {
        let s = ChipStats::peak(1e-3, 8, 1.2e9, 1, 1);
        assert!(s.cores[0].cycles > 0);
        assert!(s.l2.reads > 0);
        assert!(s.mc.bytes_read > 0);
        assert!(s.noc.flits > 0);
    }

    #[test]
    fn core_broadcasts_single_entry() {
        let s = ChipStats::peak(1e-3, 4, 2e9, 2, 1);
        assert_eq!(s.core(0).cycles, s.core(3).cycles);
    }

    #[test]
    fn total_commits_multiplies_broadcast() {
        let s = ChipStats::peak(1e-3, 4, 2e9, 2, 1);
        assert_eq!(s.total_commits(4), s.cores[0].commits * 4);
    }

    #[test]
    fn empty_core_list_is_safe() {
        let s = ChipStats::default();
        assert_eq!(s.core(5).cycles, 0);
    }
}
