//! Human-readable report printing — the analog of McPAT's console
//! output tree.

use crate::power::ChipPower;
use crate::processor::Processor;
use std::fmt::Write as _;

impl Processor {
    /// Renders the classic McPAT-style text report: technology summary,
    /// floorplan, peak power breakdown, and timing.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::new();
        let cfg = &self.config;
        let power = self.peak_power();
        let timing = self.timing();

        let _ = writeln!(out, "McPAT-rs report: {}", cfg.name);
        let _ = writeln!(
            out,
            "  Technology: {} {} @ {:.0} K, {} wires{}",
            cfg.node,
            cfg.device_type,
            cfg.temperature_k,
            cfg.projection,
            if cfg.long_channel_leakage {
                ", long-channel leakage reduction"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "  Clock: {:.2} GHz (core arrays support up to {:.2} GHz; FO4 = {:.1} ps)",
            cfg.clock_hz / 1e9,
            timing.core_max_clock_hz / 1e9,
            timing.fo4 * 1e12
        );
        let _ = writeln!(
            out,
            "  Organization: {} cores x {} ({}), {} L2 instance(s)",
            cfg.num_cores,
            cfg.core.name,
            match cfg.core.machine_type {
                mcpat_mcore::config::MachineType::InOrder => "in-order",
                mcpat_mcore::config::MachineType::OutOfOrder => "out-of-order",
            },
            cfg.num_l2s
        );

        let _ = writeln!(out, "  Die area: {:.1} mm^2", self.die_area_mm2());
        for item in self.area_breakdown() {
            let _ = writeln!(out, "    {:<12} {:>8.2} mm^2", item.name, item.area * 1e6);
        }

        let _ = writeln!(out, "  Peak power: {:.1} W", power.total());
        let _ = writeln!(
            out,
            "    dynamic {:.1} W | subthreshold {:.1} W | gate {:.1} W",
            power.dynamic(),
            power.leakage().subthreshold,
            power.leakage().gate
        );
        for item in &power.items {
            let _ = writeln!(
                out,
                "    {:<12} {:>7.2} W  (dyn {:>6.2}, leak {:>6.2})",
                item.name,
                item.total(),
                item.dynamic,
                item.leakage.total()
            );
        }

        let _ = writeln!(out, "  Core unit breakdown (one core):");
        for item in &power.core_detail.items {
            let _ = writeln!(
                out,
                "    {:<16} {:>7.3} W  (dyn {:>6.3}, leak {:>6.3})",
                item.name,
                item.total(),
                item.dynamic,
                item.leakage.total()
            );
        }

        let _ = writeln!(
            out,
            "  Build: {} thread(s), solve cache {} hit(s) / {} miss(es) / {} eviction(s)",
            self.perf.threads,
            self.perf.solve_cache_hits,
            self.perf.solve_cache_misses,
            self.perf.solve_cache_evictions
        );

        if let Some(trace) = &self.trace {
            let _ = writeln!(out, "  Trace ({} span(s)):", trace.spans.len());
            for s in &trace.spans {
                let _ = writeln!(
                    out,
                    "    {:<20} {:>9.3} ms  cache {} hit(s) / {} miss(es), {} relaxation(s)",
                    s.path,
                    s.wall_s * 1e3,
                    s.solve_cache_hits,
                    s.solve_cache_misses,
                    s.relaxations
                );
            }
        }

        if !self.warnings.is_empty() {
            let _ = writeln!(out, "  Warnings ({}):", self.warnings.len());
            for w in &self.warnings {
                let _ = writeln!(out, "    {w}");
            }
        }
        out
    }

    /// Renders the ASCII floorplan sketch (48×20 cells) with a legend.
    #[must_use]
    pub fn floorplan_sketch(&self) -> String {
        let plan = self.floorplan();
        let mut out = plan.render(48, 20);
        out.push_str(&format!(
            "C=core L=L2/L3 M=memctrl I=io+fabric   active {:.1} x {:.1} mm\n",
            plan.width * 1e3,
            plan.height * 1e3
        ));
        out
    }

    /// Renders a one-line summary suitable for tables.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let p = self.peak_power();
        format!(
            "{:<14} {:>6.1} W ({:>5.1} dyn / {:>5.1} leak)  {:>7.1} mm^2",
            self.config.name,
            p.total(),
            p.dynamic(),
            p.leakage().total(),
            self.die_area_mm2()
        )
    }
}

/// Formats any [`ChipPower`] as a percentage table against its total.
#[must_use]
pub fn share_table(power: &ChipPower) -> String {
    let total = power.total().max(1e-12);
    let mut out = String::new();
    for item in &power.items {
        let _ = writeln!(
            out,
            "{:<12} {:>6.1}%  ({:.2} W)",
            item.name,
            100.0 * item.total() / total,
            item.total()
        );
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use crate::{Processor, ProcessorConfig};

    #[test]
    fn report_mentions_all_sections() {
        let chip = Processor::build(&ProcessorConfig::niagara()).unwrap();
        let r = chip.report();
        for needle in [
            "Technology",
            "Clock",
            "Die area",
            "Peak power",
            "ifu",
            "lsu",
        ] {
            assert!(r.contains(needle), "report missing `{needle}`:\n{r}");
        }
    }

    #[test]
    fn share_table_sums_to_100() {
        let chip = Processor::build(&ProcessorConfig::niagara()).unwrap();
        let table = super::share_table(&chip.peak_power());
        let sum: f64 = table
            .lines()
            .filter_map(|l| {
                l.split('%')
                    .next()?
                    .split_whitespace()
                    .last()?
                    .parse::<f64>()
                    .ok()
            })
            .sum();
        assert!((sum - 100.0).abs() < 1.0, "sum = {sum}\n{table}");
    }

    #[test]
    fn summary_line_is_single_line() {
        let chip = Processor::build(&ProcessorConfig::alpha21364()).unwrap();
        assert_eq!(chip.summary_line().lines().count(), 1);
    }
}
