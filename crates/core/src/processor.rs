//! Whole-processor assembly: the internal chip representation.

use crate::config::ProcessorConfig;
use crate::error::McpatError;
use crate::power::{ChipPower, ChipPowerItem};
use crate::stats::ChipStats;
use mcpat_array::ArrayError;
use mcpat_circuit::metrics::StaticPower;
use mcpat_diag::{AtPath, Diagnostics, ResultExt};
use mcpat_interconnect::noc::{NocConfig, NocModel};
use mcpat_mcore::core::{CoreBuildError, CoreModel};
use mcpat_mcore::exu::{FuKind, FunctionalUnit};
use mcpat_tech::TechParams;
use mcpat_uncore::clock::ClockNetwork;
use mcpat_uncore::io::OffChipIo;
use mcpat_uncore::memctrl::MemCtrl;
use mcpat_uncore::shared_cache::SharedCache;

/// Layout overhead multiplying the sum of component areas to obtain the
/// core die area (global routing, power grid, whitespace).
const DIE_AREA_OVERHEAD: f64 = 1.25;

/// Width of the pad ring around the active area, m.
const PAD_RING_WIDTH: f64 = 0.6e-3;

/// Clock-sink capacitance contributed per square meter of non-core
/// logic/cache periphery (≈4 pF/mm², calibrated against Niagara-class
/// published clock power).
const CLOCK_SINK_CAP_PER_M2: f64 = 4e-12 / 1e-6;

/// Energy to recharge a power-gated core's virtual supply rail on
/// wakeup, J per mm² of core area (≈ the decap + rail capacitance).
const WAKEUP_ENERGY_PER_M2: f64 = 2e-3;

/// One named area entry of the floorplan summary.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaItem {
    /// Component name.
    pub name: String,
    /// Area, m².
    pub area: f64,
}

/// Timing roll-up: the cycle-time limiters of the chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// FO4 delay of the process corner, s.
    pub fo4: f64,
    /// Maximum clock supported by the cores' critical arrays, Hz.
    pub core_max_clock_hz: f64,
    /// L2 bank cycle time, s (0 if no L2).
    pub l2_cycle_time: f64,
    /// The configured target clock, Hz.
    pub target_clock_hz: f64,
}

impl TimingReport {
    /// True if the configured clock is achievable by the latency-critical
    /// core arrays.
    #[must_use]
    pub fn clock_feasible(&self) -> bool {
        self.core_max_clock_hz >= self.target_clock_hz
    }
}

/// How the build itself performed: worker threads available to the
/// fan-out and the array-solve cache's effectiveness over this build.
///
/// The counters come from a scoped [`mcpat_obs::Collector`] entered for
/// the duration of the build, so they are exact even when several
/// builds run concurrently: pool tasks carry their submitter's scope
/// chain, and stolen work still bills the build that submitted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildPerf {
    /// Worker threads the build fan-out could use (see
    /// [`mcpat_par::threads`]).
    pub threads: usize,
    /// Array solves answered by the content-addressed cache.
    pub solve_cache_hits: u64,
    /// Array solves that ran the optimizer.
    pub solve_cache_misses: u64,
    /// Cache entries evicted during this build by the bounded solve
    /// cache (see `MCPAT_SOLVE_CACHE_CAP`). Non-zero values mean the
    /// cache is under pressure and warm rebuilds may re-solve arrays.
    pub solve_cache_evictions: u64,
}

/// Budget checkpoint at a build-stage boundary: a tripped deadline,
/// cancellation, or memory ceiling surfaces as [`McpatError::Budget`]
/// located at `stage`. Free when no budget is in scope.
pub(crate) fn checkpoint(stage: &str) -> Result<(), McpatError> {
    mcpat_guard::check().map_err(|e| McpatError::Budget(AtPath::new(stage, e)))
}

/// A single-axis change applied to an already-built chip by
/// [`Processor::rebuild_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delta {
    /// Retarget the chip (and core) clock, Hz.
    Clock(f64),
    /// Rescale the supply voltage (`vdd_scale` on the configuration).
    Vdd(f64),
    /// Move the junction temperature, K.
    Temperature(f64),
    /// Resize each L2 instance to this capacity, bytes.
    CacheSize(u64),
}

impl Delta {
    /// The configuration `base` describes after this delta is applied.
    #[must_use]
    pub fn apply(self, base: &ProcessorConfig) -> ProcessorConfig {
        let mut config = base.clone();
        match self {
            Delta::Clock(hz) => {
                config.clock_hz = hz;
                config.core.clock_hz = hz;
            }
            Delta::Vdd(scale) => config.vdd_scale = scale,
            Delta::Temperature(kelvin) => config.temperature_k = kelvin,
            Delta::CacheSize(bytes) => {
                if let Some(l2) = &mut config.l2 {
                    l2.cache.capacity = bytes;
                }
            }
        }
        config
    }
}

/// A fully built processor.
#[derive(Debug, Clone)]
pub struct Processor {
    /// Configuration echoed.
    pub config: ProcessorConfig,
    /// Resolved technology corner.
    pub tech: TechParams,
    /// The (homogeneous) core model.
    pub core: CoreModel,
    /// One L2 instance (replicated `config.num_l2s` times), if any.
    pub l2: Option<SharedCache>,
    /// The L3, if any.
    pub l3: Option<SharedCache>,
    /// The on-chip fabric.
    pub noc: NocModel,
    /// The memory controller, if any.
    pub mc: Option<MemCtrl>,
    /// Other off-chip I/O.
    pub io: OffChipIo,
    /// Chip-level shared FPU model (one instance).
    pub shared_fpu: FunctionalUnit,
    /// The clock distribution network.
    pub clock: ClockNetwork,
    /// Warnings accumulated while validating and building: suspicious
    /// configuration values and any solver relaxations that were needed.
    pub warnings: Diagnostics,
    /// Threading and solve-cache statistics of this build.
    pub perf: BuildPerf,
    /// Structured build spans, populated only while
    /// [`mcpat_obs::set_tracing`]`(true)` is active (e.g. `--trace` on
    /// the CLI). `None` in the default, tracing-off configuration.
    pub trace: Option<mcpat_obs::Trace>,
}

impl Processor {
    /// Builds the chip: every component model plus the clock network
    /// sized from the resulting floorplan.
    ///
    /// Validation runs as a collecting pass first: every error is
    /// reported at once via [`McpatError::Invalid`], and the warnings of
    /// a successful pass are kept on [`Processor::warnings`].
    ///
    /// # Errors
    ///
    /// [`McpatError::Invalid`] if the configuration fails validation
    /// (with the complete findings), or [`McpatError::Array`] naming the
    /// component whose storage array could not be solved.
    pub fn build(config: &ProcessorConfig) -> Result<Processor, McpatError> {
        // The collector scope makes every solve-cache lookup, pool
        // event and (probed) allocation of this build — including work
        // stolen by other pool workers — bill to this build alone.
        let collector = mcpat_obs::Collector::new();
        let result = {
            let _scope = collector.enter();
            let _span = mcpat_obs::span("build");
            // One arena mark per chip build: every solver scratch
            // allocation made inline on this thread rolls back here
            // when the build finishes, so back-to-back builds (warm
            // sweeps, exploration) reuse one retained chunk.
            mcpat_arena::scratch(|_scratch| Self::build_inner(config))
        };
        let snap = collector.snapshot();
        let mut chip = result?;
        chip.perf = BuildPerf {
            threads: mcpat_par::threads(),
            solve_cache_hits: snap.solve_cache_hits,
            solve_cache_misses: snap.solve_cache_misses,
            solve_cache_evictions: snap.solve_cache_evictions,
        };
        if mcpat_obs::tracing_enabled() {
            chip.trace = Some(collector.trace());
        }
        Ok(chip)
    }

    fn build_inner(config: &ProcessorConfig) -> Result<Processor, McpatError> {
        checkpoint("build.validate")?;
        let mut warnings = {
            let _span = mcpat_obs::span("build.validate");
            config
                .validate()
                .into_result()
                .map_err(McpatError::Invalid)?
        };
        mcpat_guard::note_span();
        let mut tech = TechParams::new(config.node, config.device_type, config.temperature_k)
            .with_projection(config.projection)
            .with_long_channel_leakage(config.long_channel_leakage);
        if (config.vdd_scale - 1.0).abs() > 1e-9 {
            tech = tech.with_vdd_scale(config.vdd_scale);
        }

        let mut core_cfg = config.core.clone();
        core_cfg.clock_hz = config.clock_hz;

        // The four heavyweight component families are independent; fan
        // them out. Error priority stays deterministic: core first, then
        // l2, l3, mc — the same order the serial build reported in.
        let (core, l2, l3, mc) = mcpat_par::join4(
            || {
                checkpoint("build.core")?;
                let span = mcpat_obs::span("build.core");
                let r = CoreModel::build(&tech, &core_cfg).map_err(|e| match e {
                    CoreBuildError::Invalid(d) => {
                        let mut all = Diagnostics::new();
                        all.merge_under("core", d);
                        McpatError::Invalid(all)
                    }
                    CoreBuildError::Array(e) => McpatError::Array(e.under("core")),
                });
                if let Ok(core) = &r {
                    span.note_relaxations(core.relaxation_warnings().len() as u64);
                    mcpat_guard::note_span();
                }
                r
            },
            || {
                checkpoint("build.l2")?;
                let span = mcpat_obs::span("build.l2");
                let r = config
                    .l2
                    .as_ref()
                    .map(|c| c.build(&tech).at("l2").map_err(McpatError::from))
                    .transpose();
                if let Ok(r) = &r {
                    if let Some(l2) = r {
                        span.note_relaxations(l2.relaxation_warnings().len() as u64);
                    }
                    mcpat_guard::note_span();
                }
                r
            },
            || {
                checkpoint("build.l3")?;
                let span = mcpat_obs::span("build.l3");
                let r = config
                    .l3
                    .as_ref()
                    .map(|c| c.build(&tech).at("l3").map_err(McpatError::from))
                    .transpose();
                if let Ok(r) = &r {
                    if let Some(l3) = r {
                        span.note_relaxations(l3.relaxation_warnings().len() as u64);
                    }
                    mcpat_guard::note_span();
                }
                r
            },
            || {
                checkpoint("build.mc")?;
                let span = mcpat_obs::span("build.mc");
                let r = config
                    .mc
                    .as_ref()
                    .map(|c| MemCtrl::build(&tech, c).at("mc").map_err(McpatError::from))
                    .transpose();
                if let Ok(r) = &r {
                    if let Some(mc) = r {
                        span.note_relaxations(mc.relaxation_warnings().len() as u64);
                    }
                    mcpat_guard::note_span();
                }
                r
            },
        )
        .map_err(|e| {
            McpatError::Array(AtPath::new(
                "chip",
                ArrayError::Worker {
                    name: String::from("chip"),
                    detail: e.to_string(),
                },
            ))
        })?;
        let (core, l2, l3, mc) = (core?, l2?, l3?, mc?);
        let io = OffChipIo::new(&tech, config.io_bandwidth);
        let shared_fpu = FunctionalUnit::new(&tech, FuKind::Fpu);

        // Fabric link length ≈ the pitch of one cluster tile.
        let cluster_area = core.area() * f64::from(config.cores_per_cluster())
            + l2.as_ref().map_or(0.0, SharedCache::area);
        let link_length = cluster_area.max(1e-12).sqrt();
        checkpoint("build.fabric")?;
        let fabric_span = mcpat_obs::span("build.fabric");
        let noc = NocConfig {
            topology: config.fabric.topology,
            flit_bits: config.fabric.flit_bits,
            vcs_per_port: config.fabric.vcs_per_port,
            buffers_per_vc: config.fabric.buffers_per_vc,
            link_length,
            clock_hz: config.clock_hz,
        }
        .build(&tech)
        .at("fabric")?;
        drop(fabric_span);
        mcpat_guard::note_span();

        // Any array the solver could only place by degrading becomes a
        // warning on the chip, rooted at the owning component.
        warnings.merge_under("core", core.relaxation_warnings());
        if let Some(l2) = &l2 {
            warnings.merge_under("l2", l2.relaxation_warnings());
        }
        if let Some(l3) = &l3 {
            warnings.merge_under("l3", l3.relaxation_warnings());
        }
        if let Some(mc) = &mc {
            warnings.merge_under("mc", mc.relaxation_warnings());
        }
        if let Some(w) = noc
            .router
            .as_ref()
            .and_then(|r| r.input_buffer.relaxation_warning())
        {
            warnings.push(w.under("fabric"));
        }

        // Die area and the clock network over it.
        checkpoint("build.clock")?;
        let clock_span = mcpat_obs::span("build.clock");
        let component_area = Self::component_area_sum(
            config,
            &core,
            l2.as_ref(),
            l3.as_ref(),
            &noc,
            mc.as_ref(),
            &io,
            &shared_fpu,
        );
        let die_area = component_area * DIE_AREA_OVERHEAD;
        let die_edge = die_area.sqrt();

        let vdd = tech.device.vdd;
        let core_sink_cap =
            f64::from(config.num_cores) * 2.0 * core.pipeline.clock_energy_per_cycle / (vdd * vdd);
        let sink_cap = core_sink_cap + CLOCK_SINK_CAP_PER_M2 * die_area * 0.5;
        let clock = ClockNetwork::new(&tech, die_edge, die_edge, config.clock_hz, sink_cap);
        drop(clock_span);
        mcpat_guard::note_span();

        // `build` overwrites `perf` (and `trace`) from its collector.
        let perf = BuildPerf::default();

        Ok(Processor {
            config: config.clone(),
            tech,
            core,
            l2,
            l3,
            noc,
            mc,
            io,
            shared_fpu,
            clock,
            warnings,
            perf,
            trace: None,
        })
    }

    /// Re-evaluates this chip at a different clock without re-solving
    /// any storage array.
    ///
    /// When no component enforces a cycle-time constraint
    /// (`core.enforce_timing == false`, the default everywhere), the
    /// solved array geometry of every component is independent of the
    /// target clock: the clock enters only query-time power math and
    /// the closed-form clock-distribution network. This method clones
    /// the built chip, patches the clock into every config echo,
    /// re-validates, and re-sizes only the clock network — the result
    /// is indistinguishable from a full [`Processor::build`] of the
    /// patched configuration at a small fraction of the cost, which is
    /// what makes [`crate::explore::max_clock_under_power_budget`]'s
    /// ~14 bisection probes cheap.
    ///
    /// When `core.enforce_timing` is set the array geometry *does*
    /// depend on the clock, so this transparently falls back to a full
    /// rebuild.
    ///
    /// # Errors
    ///
    /// [`McpatError::Invalid`] if the patched configuration fails
    /// validation, or any build error from the full-rebuild fallback.
    pub fn rebuild_with_clock(&self, clock_hz: f64) -> Result<Processor, McpatError> {
        let mut config = self.config.clone();
        config.clock_hz = clock_hz;
        config.core.clock_hz = clock_hz;
        if config.core.enforce_timing {
            return Processor::build(&config);
        }
        let collector = mcpat_obs::Collector::new();
        let result = {
            let _scope = collector.enter();
            let _span = mcpat_obs::span("rebuild_with_clock");
            self.rebuild_incremental(config, clock_hz)
        };
        let snap = collector.snapshot();
        let mut next = result?;
        next.perf = BuildPerf {
            threads: mcpat_par::threads(),
            solve_cache_hits: snap.solve_cache_hits,
            solve_cache_misses: snap.solve_cache_misses,
            solve_cache_evictions: snap.solve_cache_evictions,
        };
        next.trace = if mcpat_obs::tracing_enabled() {
            Some(collector.trace())
        } else {
            None
        };
        Ok(next)
    }

    /// The incremental body of [`Processor::rebuild_with_clock`]: no
    /// array re-solves, clock-dependent state only.
    fn rebuild_incremental(
        &self,
        config: ProcessorConfig,
        clock_hz: f64,
    ) -> Result<Processor, McpatError> {
        checkpoint("rebuild_with_clock")?;
        // Validation warnings can depend on the clock (e.g. the
        // "aggressive clock" advisory); recompute them exactly the way
        // `build` does so the incremental result carries the same
        // diagnostics a full rebuild would.
        let mut warnings = config
            .validate()
            .into_result()
            .map_err(McpatError::Invalid)?;
        warnings.merge_under("core", self.core.relaxation_warnings());
        if let Some(l2) = &self.l2 {
            warnings.merge_under("l2", l2.relaxation_warnings());
        }
        if let Some(l3) = &self.l3 {
            warnings.merge_under("l3", l3.relaxation_warnings());
        }
        if let Some(mc) = &self.mc {
            warnings.merge_under("mc", mc.relaxation_warnings());
        }
        if let Some(w) = self
            .noc
            .router
            .as_ref()
            .and_then(|r| r.input_buffer.relaxation_warning())
        {
            warnings.push(w.under("fabric"));
        }

        let mut next = self.clone();
        next.core.config.clock_hz = clock_hz;
        next.noc.config.clock_hz = clock_hz;
        next.config = config;
        next.warnings = warnings;

        // Die geometry is clock-invariant; the clock network's load and
        // frequency are not. Recompute with the same formulas `build`
        // uses so the result is bit-identical.
        Self::refresh_die_and_clock(&mut next);
        Ok(next)
    }

    /// Re-evaluates this chip under a single-axis change, reusing every
    /// component whose inputs the delta leaves untouched.
    ///
    /// The reuse matrix (DESIGN.md §12 argues each row):
    ///
    /// * [`Delta::Clock`] — no array re-solves; delegates to
    ///   [`Processor::rebuild_with_clock`].
    /// * [`Delta::CacheSize`] — re-solves only the L2 (its geometry is
    ///   the input that changed) and the fabric (whose link length
    ///   follows the cluster footprint); the core, L3, memory
    ///   controller, I/O and shared FPU are reused as-is.
    /// * [`Delta::Vdd`] / [`Delta::Temperature`] — every solved array
    ///   depends on the technology corner (the solve memo key covers
    ///   vdd and temperature), so nothing survives: these honestly fall
    ///   back to a full [`Processor::build`] of the patched config.
    ///
    /// Whichever path runs, the result is bit-identical to a full build
    /// of `delta.apply(&self.config)` (property-tested per preset).
    ///
    /// # Errors
    ///
    /// [`McpatError::Invalid`] if the patched configuration fails
    /// validation, or any build error from the re-solved components.
    pub fn rebuild_with(&self, delta: Delta) -> Result<Processor, McpatError> {
        match delta {
            Delta::Clock(hz) => self.rebuild_with_clock(hz),
            Delta::Vdd(_) | Delta::Temperature(_) => Processor::build(&delta.apply(&self.config)),
            Delta::CacheSize(_) => {
                let config = delta.apply(&self.config);
                if self.config.l2.is_none() {
                    // No L2 to resize: the patch is a no-op.
                    return Processor::build(&config);
                }
                let collector = mcpat_obs::Collector::new();
                let result = {
                    let _scope = collector.enter();
                    let _span = mcpat_obs::span("rebuild_with.cache");
                    mcpat_arena::scratch(|_scratch| self.rebuild_with_cache(config))
                };
                let snap = collector.snapshot();
                let mut next = result?;
                next.perf = BuildPerf {
                    threads: mcpat_par::threads(),
                    solve_cache_hits: snap.solve_cache_hits,
                    solve_cache_misses: snap.solve_cache_misses,
                    solve_cache_evictions: snap.solve_cache_evictions,
                };
                next.trace = if mcpat_obs::tracing_enabled() {
                    Some(collector.trace())
                } else {
                    None
                };
                Ok(next)
            }
        }
    }

    /// The incremental body of the [`Delta::CacheSize`] path: re-solve
    /// the L2 and the fabric, reuse everything else.
    fn rebuild_with_cache(&self, config: ProcessorConfig) -> Result<Processor, McpatError> {
        checkpoint("rebuild_with.cache")?;
        let mut warnings = config
            .validate()
            .into_result()
            .map_err(McpatError::Invalid)?;
        let l2 = config
            .l2
            .as_ref()
            .map(|c| c.build(&self.tech).at("l2").map_err(McpatError::from))
            .transpose()?;
        mcpat_guard::note_span();

        // The fabric link spans one cluster tile, whose footprint just
        // changed with the L2; rebuild it with `build`'s exact formula.
        let cluster_area = self.core.area() * f64::from(config.cores_per_cluster())
            + l2.as_ref().map_or(0.0, SharedCache::area);
        let link_length = cluster_area.max(1e-12).sqrt();
        checkpoint("rebuild_with.fabric")?;
        let noc = NocConfig {
            topology: config.fabric.topology,
            flit_bits: config.fabric.flit_bits,
            vcs_per_port: config.fabric.vcs_per_port,
            buffers_per_vc: config.fabric.buffers_per_vc,
            link_length,
            clock_hz: config.clock_hz,
        }
        .build(&self.tech)
        .at("fabric")?;
        mcpat_guard::note_span();

        warnings.merge_under("core", self.core.relaxation_warnings());
        if let Some(l2) = &l2 {
            warnings.merge_under("l2", l2.relaxation_warnings());
        }
        if let Some(l3) = &self.l3 {
            warnings.merge_under("l3", l3.relaxation_warnings());
        }
        if let Some(mc) = &self.mc {
            warnings.merge_under("mc", mc.relaxation_warnings());
        }
        if let Some(w) = noc
            .router
            .as_ref()
            .and_then(|r| r.input_buffer.relaxation_warning())
        {
            warnings.push(w.under("fabric"));
        }

        let mut next = self.clone();
        next.l2 = l2;
        next.noc = noc;
        next.config = config;
        next.warnings = warnings;
        Self::refresh_die_and_clock(&mut next);
        Ok(next)
    }

    /// Recomputes the die geometry and clock network from the chip's
    /// current components with exactly the formulas `build` uses, so
    /// every incremental rebuild path stays bit-identical to a full
    /// build of the same configuration.
    fn refresh_die_and_clock(next: &mut Processor) {
        let component_area = Self::component_area_sum(
            &next.config,
            &next.core,
            next.l2.as_ref(),
            next.l3.as_ref(),
            &next.noc,
            next.mc.as_ref(),
            &next.io,
            &next.shared_fpu,
        );
        let die_area = component_area * DIE_AREA_OVERHEAD;
        let die_edge = die_area.sqrt();
        let vdd = next.tech.device.vdd;
        let core_sink_cap =
            f64::from(next.config.num_cores) * 2.0 * next.core.pipeline.clock_energy_per_cycle
                / (vdd * vdd);
        let sink_cap = core_sink_cap + CLOCK_SINK_CAP_PER_M2 * die_area * 0.5;
        next.clock = ClockNetwork::new(
            &next.tech,
            die_edge,
            die_edge,
            next.config.clock_hz,
            sink_cap,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn component_area_sum(
        config: &ProcessorConfig,
        core: &CoreModel,
        l2: Option<&SharedCache>,
        l3: Option<&SharedCache>,
        noc: &NocModel,
        mc: Option<&MemCtrl>,
        io: &OffChipIo,
        shared_fpu: &FunctionalUnit,
    ) -> f64 {
        core.area() * f64::from(config.num_cores)
            + l2.map_or(0.0, SharedCache::area) * f64::from(config.num_l2s)
            + l3.map_or(0.0, SharedCache::area)
            + noc.area()
            + mc.map_or(0.0, MemCtrl::area)
            + io.area
            + shared_fpu.area * f64::from(config.num_shared_fpus)
    }

    /// Floorplan summary: per-component areas (component sums, without
    /// the whitespace overhead).
    #[must_use]
    pub fn area_breakdown(&self) -> Vec<AreaItem> {
        let c = &self.config;
        let gating_overhead = if c.power_gating { 1.04 } else { 1.0 };
        let mut items = vec![AreaItem {
            name: "cores".into(),
            area: self.core.area() * f64::from(c.num_cores) * gating_overhead,
        }];
        if let Some(l2) = &self.l2 {
            items.push(AreaItem {
                name: "l2".into(),
                area: l2.area() * f64::from(c.num_l2s),
            });
        }
        if let Some(l3) = &self.l3 {
            items.push(AreaItem {
                name: "l3".into(),
                area: l3.area(),
            });
        }
        items.push(AreaItem {
            name: "noc".into(),
            area: self.noc.area(),
        });
        if let Some(mc) = &self.mc {
            items.push(AreaItem {
                name: "mc".into(),
                area: mc.area(),
            });
        }
        items.push(AreaItem {
            name: "io".into(),
            area: self.io.area,
        });
        if c.num_shared_fpus > 0 {
            items.push(AreaItem {
                name: "shared-fpu".into(),
                area: self.shared_fpu.area * f64::from(c.num_shared_fpus),
            });
        }
        items.push(AreaItem {
            name: "clock".into(),
            area: self.clock.area(),
        });
        items
    }

    /// Die area including layout overhead and the pad ring, m².
    #[must_use]
    pub fn die_area(&self) -> f64 {
        let components: f64 = self.area_breakdown().iter().map(|i| i.area).sum();
        let active = components * DIE_AREA_OVERHEAD;
        let edge = active.sqrt() + 2.0 * PAD_RING_WIDTH;
        edge * edge
    }

    /// Die area in mm².
    #[must_use]
    pub fn die_area_mm2(&self) -> f64 {
        self.die_area() * 1e6
    }

    /// Timing roll-up.
    #[must_use]
    pub fn timing(&self) -> TimingReport {
        TimingReport {
            fo4: self.tech.fo4(),
            core_max_clock_hz: self.core.max_clock_hz(),
            l2_cycle_time: self.l2.as_ref().map_or(0.0, |l| l.cache.cycle_time),
            target_clock_hz: self.config.clock_hz,
        }
    }

    /// Runtime power from simulator statistics.
    #[must_use]
    pub fn runtime_power(&self, stats: &ChipStats) -> ChipPower {
        let c = &self.config;
        let mut items = Vec::with_capacity(8);

        // Cores: evaluate each core's stats (broadcast-aware) and sum.
        // With power gating, an idle core drops to a retention state that
        // keeps ~10% of its leakage.
        let mut cores_dynamic = 0.0;
        let mut cores_leakage_scale = 0.0;
        let mut core_detail = None;
        // Group cores by their (broadcast-aware) stats entry so the cost
        // is bounded by the number of distinct entries, not `num_cores`:
        // entry i serves core i and the last entry serves every core
        // beyond the provided list.
        let n_cores = c.num_cores as usize;
        let core_groups: Vec<(mcpat_mcore::CoreStats, f64)> = if n_cores == 0 {
            Vec::new()
        } else if stats.cores.len() <= 1 {
            vec![(stats.core(0), f64::from(c.num_cores))]
        } else {
            let len = stats.cores.len().min(n_cores);
            stats
                .cores
                .iter()
                .take(len)
                .enumerate()
                .map(|(i, cs)| {
                    let weight = if i == len - 1 {
                        (n_cores - len + 1) as f64
                    } else {
                        1.0
                    };
                    (*cs, weight)
                })
                .collect()
        };
        for (cs, weight) in &core_groups {
            let p = self.core.runtime_power(cs);
            cores_dynamic += p.dynamic() * weight;
            let duty = cs.duty();
            cores_leakage_scale += weight
                * if c.power_gating {
                    duty + (1.0 - duty) * 0.10
                } else {
                    1.0
                };
            if core_detail.is_none() {
                core_detail = Some(p);
            }
        }
        let core_detail = core_detail.unwrap_or(mcpat_mcore::core::CorePower { items: vec![] });
        // Wakeup transitions recharge the gated rail.
        if c.power_gating && stats.core_wakeups > 0 {
            let e_wake = WAKEUP_ENERGY_PER_M2 * self.core.area();
            cores_dynamic += stats.core_wakeups as f64 * e_wake / stats.duration_s.max(1e-12);
        }
        items.push(ChipPowerItem {
            name: "cores".into(),
            dynamic: cores_dynamic,
            leakage: self.core.leakage().scaled(cores_leakage_scale),
        });

        if let Some(l2) = &self.l2 {
            items.push(ChipPowerItem {
                name: "l2".into(),
                dynamic: l2.dynamic_power(&stats.l2),
                leakage: l2.leakage().scaled(f64::from(c.num_l2s)),
            });
        }
        if let Some(l3) = &self.l3 {
            items.push(ChipPowerItem {
                name: "l3".into(),
                dynamic: l3.dynamic_power(&stats.l3),
                leakage: l3.leakage(),
            });
        }
        items.push(ChipPowerItem {
            name: "noc".into(),
            dynamic: self.noc.dynamic_power(&stats.noc),
            leakage: self.noc.leakage(),
        });
        if let Some(mc) = &self.mc {
            items.push(ChipPowerItem {
                name: "mc".into(),
                dynamic: mc.dynamic_power(&stats.mc),
                leakage: mc.leakage(),
            });
        }
        items.push(ChipPowerItem {
            name: "io".into(),
            dynamic: self.io.power_at_utilization(stats.io_utilization) - self.io.standby_power,
            leakage: self.io.leakage(),
        });
        if c.num_shared_fpus > 0 {
            let interval = stats.duration_s.max(1e-12);
            items.push(ChipPowerItem {
                name: "shared-fpu".into(),
                dynamic: stats.shared_fpu_ops as f64 * self.shared_fpu.energy_per_op / interval,
                leakage: self.shared_fpu.leakage.scaled(f64::from(c.num_shared_fpus)),
            });
        }

        // Clock: gate the grid by the cores' average idleness when the
        // core supports clock gating.
        let avg_duty = if c.num_cores > 0 {
            core_groups
                .iter()
                .map(|(cs, weight)| cs.duty() * weight)
                .sum::<f64>()
                / f64::from(c.num_cores)
        } else {
            0.0
        };
        let gated_fraction = if c.core.clock_gating {
            1.0 - avg_duty
        } else {
            0.0
        };
        items.push(ChipPowerItem {
            name: "clock".into(),
            dynamic: self.clock.dynamic_power_gated(gated_fraction),
            leakage: self.clock.leakage(),
        });

        ChipPower { items, core_detail }
    }

    /// TDP-style peak power: sustained worst-case activity, W.
    #[must_use]
    pub fn peak_power(&self) -> ChipPower {
        let stats = ChipStats::peak(
            1e-3,
            self.config.num_cores,
            self.config.clock_hz,
            self.config.core.issue_width,
            self.config.core.fp_issue_width,
        );
        self.runtime_power(&stats)
    }

    /// Total chip leakage, W.
    #[must_use]
    pub fn total_leakage(&self) -> StaticPower {
        self.peak_power().leakage()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn niagara_builds_and_is_plausible() {
        let chip = Processor::build(&ProcessorConfig::niagara()).unwrap();
        let p = chip.peak_power();
        let area = chip.die_area_mm2();
        // Published: 63 W, 378 mm². Accept a generous modeling band here;
        // the validation bench asserts tighter.
        assert!(p.total() > 20.0 && p.total() < 160.0, "power {}", p.total());
        assert!(area > 80.0 && area < 900.0, "area {area}");
    }

    #[test]
    fn all_validation_presets_build() {
        for cfg in [
            ProcessorConfig::niagara(),
            ProcessorConfig::niagara2(),
            ProcessorConfig::alpha21364(),
            ProcessorConfig::tulsa(),
        ] {
            let chip = Processor::build(&cfg).unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
            assert!(chip.peak_power().total() > 10.0, "{}", cfg.name);
            assert!(chip.die_area_mm2() > 50.0, "{}", cfg.name);
        }
    }

    #[test]
    fn breakdown_contains_expected_components() {
        let chip = Processor::build(&ProcessorConfig::niagara()).unwrap();
        let p = chip.peak_power();
        for name in ["cores", "l2", "noc", "mc", "io", "clock", "shared-fpu"] {
            assert!(p.component(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let mut cfg = ProcessorConfig::niagara();
        cfg.temperature_k = 330.0;
        let cold = Processor::build(&cfg).unwrap().total_leakage().total();
        cfg.temperature_k = 380.0;
        let hot = Processor::build(&cfg).unwrap().total_leakage().total();
        assert!(hot > 1.5 * cold, "cold {cold} hot {hot}");
    }

    #[test]
    fn runtime_power_tracks_utilization() {
        let chip = Processor::build(&ProcessorConfig::niagara2()).unwrap();
        let peak = chip.peak_power();
        let mut quiet = ChipStats::peak(1e-3, 8, 1.4e9, 2, 1);
        for core in &mut quiet.cores {
            core.idle_cycles = core.cycles * 9 / 10;
            core.issues /= 10;
            core.int_ops /= 10;
            core.loads /= 10;
            core.stores /= 10;
            core.fetches /= 10;
            core.decodes /= 10;
        }
        quiet.io_utilization = 0.1;
        let p = chip.runtime_power(&quiet);
        assert!(p.total() < peak.total());
    }

    #[test]
    fn true_vdd_scaling_rebuild_matches_first_order_dvfs_direction() {
        let mut cfg = ProcessorConfig::niagara2();
        let nominal = Processor::build(&cfg).unwrap();
        cfg.vdd_scale = 0.85;
        cfg.clock_hz *= 0.85;
        cfg.core.clock_hz = cfg.clock_hz;
        let scaled = Processor::build(&cfg).unwrap();
        let p_nom = nominal.peak_power();
        let p_low = scaled.peak_power();
        // True rebuild: both dynamic and leakage drop.
        assert!(p_low.dynamic() < p_nom.dynamic());
        assert!(p_low.leakage().total() < p_nom.leakage().total());
        // And the first-order V²f law is the right ballpark for dynamic.
        let first_order = p_nom.dynamic() * 0.85f64.powi(3);
        let ratio = p_low.dynamic() / first_order;
        assert!(ratio > 0.7 && ratio < 1.4, "ratio {ratio}");
        // Timing honestly degrades: the slower corner supports a lower
        // max clock.
        assert!(scaled.timing().core_max_clock_hz < nominal.timing().core_max_clock_hz);
    }

    #[test]
    fn wakeup_energy_is_charged_only_when_gated() {
        let mut cfg = ProcessorConfig::niagara2();
        cfg.power_gating = true;
        let chip = Processor::build(&cfg).unwrap();
        let mut stats = ChipStats::peak(1e-3, 8, 1.4e9, 2, 1);
        let base = chip.runtime_power(&stats).total();
        stats.core_wakeups = 100_000; // aggressive sleep cycling
        let with = chip.runtime_power(&stats).total();
        assert!(with > base, "wakeups must cost energy: {with} vs {base}");

        cfg.power_gating = false;
        let ungated = Processor::build(&cfg).unwrap();
        let p1 = ungated.runtime_power(&stats).total();
        stats.core_wakeups = 0;
        let p0 = ungated.runtime_power(&stats).total();
        assert!((p1 - p0).abs() < 1e-12, "no gating, no wakeup cost");
    }

    #[test]
    fn infeasible_clock_degrades_with_warnings_in_the_report() {
        let mut cfg = ProcessorConfig::niagara();
        cfg.clock_hz = 300e9; // ~3 ps cycle: no array can do this
        cfg.core.enforce_timing = true;
        let chip = Processor::build(&cfg).expect("infeasible clocks degrade, not fail");
        assert!(
            chip.warnings.iter().any(|w| w.path.starts_with("core.")
                && w.message.contains("cycle-time constraint")),
            "expected relaxation warnings rooted under core:\n{}",
            chip.warnings
        );
        let report = chip.report();
        assert!(report.contains("Warnings"), "report must surface warnings");
        assert!(report.contains("cycle-time constraint"), "\n{report}");
    }

    #[test]
    fn feasible_build_has_no_warnings() {
        let chip = Processor::build(&ProcessorConfig::niagara()).unwrap();
        assert!(chip.warnings.is_empty(), "{}", chip.warnings);
    }

    #[test]
    fn rebuild_with_clock_matches_full_build_bit_for_bit() {
        let base = Processor::build(&ProcessorConfig::niagara2()).unwrap();
        for clock in [0.9e9, 1.4e9, 2.7e9, 12.0e9] {
            let fast = base.rebuild_with_clock(clock).unwrap();
            let mut cfg = ProcessorConfig::niagara2();
            cfg.clock_hz = clock;
            cfg.core.clock_hz = clock;
            let full = Processor::build(&cfg).unwrap();
            assert_eq!(
                fast.peak_power().total().to_bits(),
                full.peak_power().total().to_bits(),
                "peak power at {clock:e} Hz"
            );
            assert_eq!(fast.die_area().to_bits(), full.die_area().to_bits());
            assert_eq!(
                fast.clock.dynamic_power_gated(0.0).to_bits(),
                full.clock.dynamic_power_gated(0.0).to_bits()
            );
            // The >10 GHz advisory must appear on the incremental path
            // exactly as it does on the full one.
            assert_eq!(fast.warnings.len(), full.warnings.len(), "at {clock:e} Hz");
        }
    }

    #[test]
    fn rebuild_with_cache_size_matches_full_build_bit_for_bit() {
        let base = Processor::build(&ProcessorConfig::niagara2()).unwrap();
        assert!(base.config.l2.is_some(), "preset must carry an L2");
        for bytes in [1u64 << 20, 3 << 20, 8 << 20] {
            let fast = base.rebuild_with(Delta::CacheSize(bytes)).unwrap();
            let full = Processor::build(&Delta::CacheSize(bytes).apply(&base.config)).unwrap();
            assert_eq!(
                fast.peak_power().total().to_bits(),
                full.peak_power().total().to_bits(),
                "peak power at {bytes} B"
            );
            assert_eq!(fast.die_area().to_bits(), full.die_area().to_bits());
            assert_eq!(fast.warnings.len(), full.warnings.len(), "at {bytes} B");
        }
    }

    #[test]
    fn rebuild_with_corner_deltas_fall_back_to_full_builds() {
        let base = Processor::build(&ProcessorConfig::niagara2()).unwrap();
        for delta in [Delta::Vdd(0.9), Delta::Temperature(340.0)] {
            let fast = base.rebuild_with(delta).unwrap();
            let full = Processor::build(&delta.apply(&base.config)).unwrap();
            assert_eq!(
                fast.peak_power().total().to_bits(),
                full.peak_power().total().to_bits(),
                "{delta:?}"
            );
            assert_eq!(fast.die_area().to_bits(), full.die_area().to_bits());
            assert_eq!(fast.warnings.len(), full.warnings.len(), "{delta:?}");
        }
    }

    #[test]
    fn rebuild_with_clock_delta_routes_through_incremental_path() {
        let base = Processor::build(&ProcessorConfig::niagara2()).unwrap();
        let via_delta = base.rebuild_with(Delta::Clock(2.1e9)).unwrap();
        let via_clock = base.rebuild_with_clock(2.1e9).unwrap();
        assert_eq!(
            via_delta.peak_power().total().to_bits(),
            via_clock.peak_power().total().to_bits()
        );
    }

    #[test]
    fn rebuild_with_clock_falls_back_under_enforced_timing() {
        let mut cfg = ProcessorConfig::niagara();
        cfg.core.enforce_timing = true;
        let base = Processor::build(&cfg).unwrap();
        let fast = base.rebuild_with_clock(2.4e9).unwrap();
        let mut at = cfg.clone();
        at.clock_hz = 2.4e9;
        at.core.clock_hz = 2.4e9;
        let full = Processor::build(&at).unwrap();
        assert_eq!(
            fast.peak_power().total().to_bits(),
            full.peak_power().total().to_bits()
        );
        assert_eq!(fast.warnings.len(), full.warnings.len());
    }

    #[test]
    fn timing_report_is_consistent() {
        let chip = Processor::build(&ProcessorConfig::niagara()).unwrap();
        let t = chip.timing();
        assert!(t.fo4 > 0.0);
        assert!(t.core_max_clock_hz > 0.0);
        assert_eq!(t.target_clock_hz, 1.2e9);
        // Niagara's modest 1.2 GHz target is feasible at 90 nm.
        assert!(t.clock_feasible(), "max {:e}", t.core_max_clock_hz);
    }
}
