//! Composite figures of merit.
//!
//! Beyond energy and delay, the McPAT paper argues that **area** must
//! enter the objective when comparing manycore design points, and
//! introduces EDAP (energy·delay·area product) and EDA²P alongside the
//! classic EDP and ED²P. Lower is better for every metric here.

/// The full metric set for one (performance, energy, area) triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSet {
    /// Task execution time, s.
    pub delay: f64,
    /// Energy consumed over the task, J.
    pub energy: f64,
    /// Die area, m².
    pub area: f64,
}

impl MetricSet {
    /// Builds from runtime power and execution time.
    #[must_use]
    pub fn from_power(power_w: f64, delay_s: f64, area_m2: f64) -> MetricSet {
        MetricSet {
            delay: delay_s,
            energy: power_w * delay_s,
            area: area_m2,
        }
    }

    /// Energy-delay product, J·s.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy * self.delay
    }

    /// Energy-delay² product, J·s².
    #[must_use]
    pub fn ed2p(&self) -> f64 {
        self.energy * self.delay * self.delay
    }

    /// Energy-delay-area product, J·s·m².
    #[must_use]
    pub fn edap(&self) -> f64 {
        self.edp() * self.area
    }

    /// Energy-delay²-area product, J·s²·m².
    #[must_use]
    pub fn eda2p(&self) -> f64 {
        self.ed2p() * self.area
    }

    /// Which of two design points wins under a metric selector.
    #[must_use]
    pub fn better_than(&self, other: &MetricSet, metric: Metric) -> bool {
        metric.of(self) < metric.of(other)
    }
}

/// Selector for one of the composite metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Energy only.
    Energy,
    /// Delay only.
    Delay,
    /// Energy·delay.
    Edp,
    /// Energy·delay².
    Ed2p,
    /// Energy·delay·area.
    Edap,
    /// Energy·delay²·area.
    Eda2p,
}

impl Metric {
    /// All composite metrics in the paper's order.
    pub const ALL: [Metric; 6] = [
        Metric::Energy,
        Metric::Delay,
        Metric::Edp,
        Metric::Ed2p,
        Metric::Edap,
        Metric::Eda2p,
    ];

    /// Evaluates the metric on a point.
    #[must_use]
    pub fn of(self, m: &MetricSet) -> f64 {
        match self {
            Metric::Energy => m.energy,
            Metric::Delay => m.delay,
            Metric::Edp => m.edp(),
            Metric::Ed2p => m.ed2p(),
            Metric::Edap => m.edap(),
            Metric::Eda2p => m.eda2p(),
        }
    }

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::Energy => "E",
            Metric::Delay => "D",
            Metric::Edp => "EDP",
            Metric::Ed2p => "ED2P",
            Metric::Edap => "EDAP",
            Metric::Eda2p => "EDA2P",
        }
    }
}

/// Index of the best (minimum) point under a metric; `None` for empty
/// input.
#[must_use]
pub fn best_index(points: &[MetricSet], metric: Metric) -> Option<usize> {
    best_index_of(points.iter(), metric)
}

/// Index of the best (minimum) point under a metric over any stream of
/// points, without materializing a slice first; `None` for empty input.
///
/// Ties resolve exactly like [`best_index`] (the last minimal point,
/// per `Iterator::min_by`).
pub fn best_index_of<'a, I>(points: I, metric: Metric) -> Option<usize>
where
    I: IntoIterator<Item = &'a MetricSet>,
{
    points
        .into_iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| metric.of(a).total_cmp(&metric.of(b)))
        .map(|(i, _)| i)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn m(d: f64, e: f64, a: f64) -> MetricSet {
        MetricSet {
            delay: d,
            energy: e,
            area: a,
        }
    }

    #[test]
    fn products_multiply() {
        let x = m(2.0, 3.0, 5.0);
        assert_eq!(x.edp(), 6.0);
        assert_eq!(x.ed2p(), 12.0);
        assert_eq!(x.edap(), 30.0);
        assert_eq!(x.eda2p(), 60.0);
    }

    #[test]
    fn area_aware_metric_can_flip_the_winner() {
        // A is faster but huge; B is slower but tiny.
        let a = m(1.0, 1.0, 100.0);
        let b = m(1.5, 1.0, 10.0);
        assert!(a.better_than(&b, Metric::Ed2p));
        assert!(b.better_than(&a, Metric::Eda2p));
    }

    #[test]
    fn from_power_integrates_energy() {
        let x = MetricSet::from_power(50.0, 2.0, 1e-4);
        assert_eq!(x.energy, 100.0);
    }

    #[test]
    fn best_index_finds_minimum() {
        let pts = vec![m(2.0, 2.0, 1.0), m(1.0, 1.0, 1.0), m(3.0, 1.0, 1.0)];
        assert_eq!(best_index(&pts, Metric::Edp), Some(1));
        assert_eq!(best_index(&[], Metric::Edp), None);
    }
}
