//! Whole-processor configuration — the analog of McPAT's XML input file
//! (serde-serializable, so it can be stored as JSON/TOML by tooling).

use mcpat_diag::Diagnostics;
use mcpat_interconnect::noc::Topology;
use mcpat_mcore::config::CoreConfig;
use mcpat_tech::{DeviceType, TechNode, WireProjection};
use mcpat_uncore::memctrl::MemCtrlConfig;
use mcpat_uncore::shared_cache::SharedCacheConfig;
use serde::{Deserialize, Serialize};

/// On-chip fabric description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Topology connecting the clusters.
    pub topology: Topology,
    /// Flit width, bits.
    pub flit_bits: u32,
    /// Virtual channels per router port.
    pub vcs_per_port: u32,
    /// Buffers per VC.
    pub buffers_per_vc: u32,
}

impl FabricConfig {
    /// A mesh sized for `n` endpoints (x·y ≥ n, near-square).
    #[must_use]
    pub fn mesh_for(n: u32) -> FabricConfig {
        let x = (f64::from(n)).sqrt().ceil() as u32;
        let y = n.div_ceil(x.max(1));
        FabricConfig {
            topology: Topology::Mesh {
                x: x.max(1),
                y: y.max(1),
            },
            flit_bits: 128,
            vcs_per_port: 4,
            buffers_per_vc: 4,
        }
    }

    /// A shared bus among `n` endpoints.
    #[must_use]
    pub fn bus_for(n: u32) -> FabricConfig {
        FabricConfig {
            topology: Topology::Bus { n: n.max(1) },
            flit_bits: 256,
            vcs_per_port: 1,
            buffers_per_vc: 1,
        }
    }
}

/// The full description of a processor handed to [`crate::Processor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorConfig {
    /// Chip name (used in reports).
    pub name: String,
    /// Technology node.
    // lint: allow(L004, every supported TechNode variant is a valid choice)
    pub node: TechNode,
    /// Device flavor for core logic.
    pub device_type: DeviceType,
    /// Junction temperature, K.
    pub temperature_k: f64,
    /// Interconnect projection.
    // lint: allow(L004, both ITRS wire projections are valid choices)
    pub projection: WireProjection,
    /// Use long-channel devices off the critical path.
    // lint: allow(L004, pure modeling switch — both boolean values are valid)
    pub long_channel_leakage: bool,
    /// Chip clock, Hz (also the core clock).
    pub clock_hz: f64,
    /// Number of identical cores.
    pub num_cores: u32,
    /// Per-core architecture.
    pub core: CoreConfig,
    /// Shared L2 configuration (one instance per cluster), if any.
    pub l2: Option<SharedCacheConfig>,
    /// Number of L2 instances; `num_cores / num_l2s` cores share each
    /// (the case study's clustering degree).
    pub num_l2s: u32,
    /// Shared L3, if any (always chip-wide).
    pub l3: Option<SharedCacheConfig>,
    /// Fabric connecting clusters, L3 and memory controllers.
    pub fabric: FabricConfig,
    /// Integrated memory controller, if any.
    pub mc: Option<MemCtrlConfig>,
    /// Other off-chip I/O bandwidth provisioned (coherence links, PCIe,
    /// misc pads), bytes/s.
    pub io_bandwidth: f64,
    /// Chip-level shared FPUs (Niagara-style), in addition to per-core
    /// FPUs.
    pub num_shared_fpus: u32,
    /// Per-core power gating: idle cores drop to a retention state that
    /// leaks ~10% of nominal, at a small always-on area cost for the
    /// sleep transistors.
    // lint: allow(L004, pure modeling switch — both boolean values are valid)
    pub power_gating: bool,
    /// Supply bias relative to the node's nominal Vdd (true DVFS:
    /// affects drive, leakage, and achievable timing). 1.0 = nominal.
    #[serde(default = "default_vdd_scale")]
    pub vdd_scale: f64,
}

fn default_vdd_scale() -> f64 {
    1.0
}

impl ProcessorConfig {
    /// A generic homogeneous manycore chip: `num_cores` copies of `core`
    /// with `cores_per_cluster` sharing each L2 bank.
    ///
    /// The constructor never panics: a zero or non-dividing cluster size
    /// produces a config that [`ProcessorConfig::validate`] rejects with
    /// a diagnostic at `num_l2s` (the cluster size is clamped to at
    /// least 1 to derive the L2 instance count).
    #[must_use]
    pub fn manycore(
        name: &str,
        node: TechNode,
        core: CoreConfig,
        num_cores: u32,
        cores_per_cluster: u32,
        l2_bytes_per_cluster: u64,
    ) -> ProcessorConfig {
        let num_l2s = num_cores.div_ceil(cores_per_cluster.max(1));
        let clock_hz = core.clock_hz;
        ProcessorConfig {
            name: name.to_owned(),
            node,
            device_type: DeviceType::Hp,
            temperature_k: 360.0,
            projection: WireProjection::Aggressive,
            long_channel_leakage: true,
            clock_hz,
            num_cores,
            core,
            l2: Some(SharedCacheConfig::l2(
                "l2",
                l2_bytes_per_cluster,
                cores_per_cluster,
            )),
            num_l2s,
            l3: None,
            fabric: if num_l2s <= 2 {
                FabricConfig::bus_for(num_l2s + 2)
            } else {
                FabricConfig::mesh_for(num_l2s)
            },
            mc: Some(MemCtrlConfig {
                channels: 4,
                ..MemCtrlConfig::default()
            }),
            io_bandwidth: 12.8e9,
            num_shared_fpus: 0,
            power_gating: false,
            vdd_scale: 1.0,
        }
    }

    /// The Sun Niagara (UltraSPARC T1) validation target:
    /// 8 single-issue 4-thread in-order cores, 3 MB L2 in 4 banks, a
    /// cores↔banks crossbar, 4 DDR2 channels, 90 nm, 1.2 GHz.
    /// Published: 63 W typical, 378 mm².
    #[must_use]
    pub fn niagara() -> ProcessorConfig {
        let core = CoreConfig::niagara_like();
        let mut l2 = SharedCacheConfig::l2("l2", 3 * 1024 * 1024 / 4, 8);
        l2.cache.associativity = 12;
        l2.mshr_entries = 8;
        ProcessorConfig {
            name: "niagara".into(),
            node: TechNode::N90,
            device_type: DeviceType::Hp,
            temperature_k: 360.0,
            projection: WireProjection::Conservative,
            long_channel_leakage: true,
            clock_hz: 1.2e9,
            num_cores: 8,
            core,
            l2: Some(l2),
            num_l2s: 4,
            l3: None,
            fabric: FabricConfig {
                // The Niagara 8-core ↔ 4-bank (+FPU/IO) crossbar.
                topology: Topology::Crossbar { n: 13 },
                flit_bits: 128,
                vcs_per_port: 1,
                buffers_per_vc: 2,
            },
            mc: Some(MemCtrlConfig {
                channels: 4,
                bus_bits: 128,
                peak_bw_per_channel: 6.4e9,
                read_queue_depth: 8,
                write_queue_depth: 8,
                paddr_bits: 40,
                phy_standby_override_w: None,
            }),
            io_bandwidth: 6.0e9,
            num_shared_fpus: 1,
            power_gating: false,
            vdd_scale: 1.0,
        }
    }

    /// The Sun Niagara2 (UltraSPARC T2) validation target:
    /// 8 dual-issue 8-thread cores with per-core FPUs, 4 MB L2 in 8
    /// banks, FB-DIMM memory + 10 GbE I/O, 65 nm, 1.4 GHz.
    /// Published: 84 W typical, 342 mm².
    #[must_use]
    pub fn niagara2() -> ProcessorConfig {
        let core = CoreConfig::niagara2_like();
        let mut l2 = SharedCacheConfig::l2("l2", 4 * 1024 * 1024 / 8, 8);
        l2.cache.associativity = 16;
        ProcessorConfig {
            name: "niagara2".into(),
            node: TechNode::N65,
            device_type: DeviceType::Hp,
            temperature_k: 360.0,
            projection: WireProjection::Conservative,
            long_channel_leakage: true,
            clock_hz: 1.4e9,
            num_cores: 8,
            core,
            l2: Some(l2),
            num_l2s: 8,
            l3: None,
            fabric: FabricConfig {
                // Niagara2's 8-core ↔ 8-bank crossbar.
                topology: Topology::Crossbar { n: 16 },
                flit_bits: 128,
                vcs_per_port: 1,
                buffers_per_vc: 2,
            },
            mc: Some(MemCtrlConfig {
                channels: 8, // FB-DIMM lane pairs
                bus_bits: 64,
                peak_bw_per_channel: 5.3e9,
                read_queue_depth: 16,
                write_queue_depth: 16,
                paddr_bits: 40,
                // FB-DIMM serial PHYs idle hot (AMB links stay trained).
                phy_standby_override_w: Some(1.5),
            }),
            // Dual 10 GbE + x8 PCIe + FB-DIMM SerDes overhead on die.
            io_bandwidth: 25e9,
            num_shared_fpus: 0,
            power_gating: false,
            vdd_scale: 1.0,
        }
    }

    /// The Alpha 21364 validation target: one EV68-class OoO core,
    /// 1.75 MB on-chip L2, integrated router + memory controllers,
    /// 180 nm, 1.2 GHz. Published: 125 W peak, 397 mm².
    #[must_use]
    pub fn alpha21364() -> ProcessorConfig {
        let core = CoreConfig::alpha21364_like();
        let mut l2 = SharedCacheConfig::l2("l2", 1_835_008, 1); // 1.75 MB
        l2.cache.associativity = 7;
        l2.directory_sharers = 4; // glueless multiprocessor directory
        ProcessorConfig {
            name: "alpha21364".into(),
            node: TechNode::N180,
            device_type: DeviceType::Hp,
            temperature_k: 360.0,
            projection: WireProjection::Conservative,
            long_channel_leakage: false,
            clock_hz: 1.2e9,
            num_cores: 1,
            core,
            l2: Some(l2),
            num_l2s: 1,
            l3: None,
            fabric: FabricConfig {
                // The 21364's network router (4 off-chip ports + local).
                topology: Topology::Mesh { x: 1, y: 1 },
                flit_bits: 64,
                vcs_per_port: 8,
                buffers_per_vc: 8,
            },
            mc: Some(MemCtrlConfig {
                channels: 2,
                bus_bits: 128,
                peak_bw_per_channel: 6.0e9,
                read_queue_depth: 16,
                write_queue_depth: 16,
                paddr_bits: 44,
                phy_standby_override_w: None,
            }),
            io_bandwidth: 22.0e9, // four 6.4 GB/s inter-processor links
            num_shared_fpus: 0,
            power_gating: false,
            vdd_scale: 1.0,
        }
    }

    /// The Intel Xeon Tulsa validation target: 2 NetBurst cores at
    /// 3.4 GHz, 16 MB shared L3 + per-core 1 MB L2, front-side bus,
    /// 65 nm. Published: 150 W TDP, 435 mm².
    #[must_use]
    pub fn tulsa() -> ProcessorConfig {
        let core = CoreConfig::tulsa_like();
        let mut l2 = SharedCacheConfig::l2("l2", 1024 * 1024, 1);
        l2.cache.associativity = 8;
        let mut l3 = SharedCacheConfig::l2("l3", 16 * 1024 * 1024, 2);
        l3.cache.associativity = 16;
        l3.cache.banks = 8;
        l3.mshr_entries = 24;
        ProcessorConfig {
            name: "xeon-tulsa".into(),
            node: TechNode::N65,
            device_type: DeviceType::Hp,
            temperature_k: 365.0,
            projection: WireProjection::Conservative,
            long_channel_leakage: false,
            clock_hz: 3.4e9,
            num_cores: 2,
            core,
            l2: Some(l2),
            num_l2s: 2,
            l3: Some(l3),
            fabric: FabricConfig::bus_for(4),
            mc: None,             // off-chip northbridge era
            io_bandwidth: 17.0e9, // dual independent FSBs
            num_shared_fpus: 0,
            power_gating: false,
            vdd_scale: 1.0,
        }
    }

    /// Cores sharing each L2 instance (the clustering degree).
    #[must_use]
    pub fn cores_per_cluster(&self) -> u32 {
        self.num_cores
            .checked_div(self.num_l2s)
            .unwrap_or(self.num_cores)
    }

    /// Full validation of the configuration.
    ///
    /// A collecting pass: reports **every** violated invariant and every
    /// suspicious-but-usable value, each at its component path, instead
    /// of stopping at the first problem. The model can be built iff the
    /// result has no errors ([`Diagnostics::has_errors`]); warnings are
    /// carried into the built [`crate::Processor`].
    #[must_use]
    pub fn validate(&self) -> Diagnostics {
        let mut d = Diagnostics::new();
        if self.name.is_empty() {
            d.warning("name", "unnamed configuration");
        }

        // Global operating point.
        if self.temperature_k.is_finite() {
            if !(250.0..=450.0).contains(&self.temperature_k) {
                d.error(
                    "temperature_k",
                    format!(
                        "temperature {} K is outside the modeled 250-450 K range",
                        self.temperature_k
                    ),
                );
            } else if !(300.0..=400.0).contains(&self.temperature_k) {
                d.warning(
                    "temperature_k",
                    format!(
                        "temperature {} K is outside the calibrated 300-400 K band",
                        self.temperature_k
                    ),
                );
            }
        } else {
            d.error(
                "temperature_k",
                format!("temperature must be finite, got {}", self.temperature_k),
            );
        }
        d.require_positive("clock_hz", "chip clock", self.clock_hz);
        d.require_nonnegative("io_bandwidth", "I/O bandwidth", self.io_bandwidth);
        if self.vdd_scale.is_finite() {
            if !(0.3..=1.3).contains(&self.vdd_scale) {
                d.error(
                    "vdd_scale",
                    format!(
                        "vdd_scale {} is outside the supported 0.3-1.3 range",
                        self.vdd_scale
                    ),
                );
            } else if self.vdd_scale < 0.5 {
                d.warning(
                    "vdd_scale",
                    format!(
                        "vdd_scale {} is deep near-threshold operation; timing is extrapolated",
                        self.vdd_scale
                    ),
                );
            }
        } else {
            d.error(
                "vdd_scale",
                format!("vdd_scale must be finite, got {}", self.vdd_scale),
            );
        }

        if self.device_type == DeviceType::Lstp && self.clock_hz > 1.5e9 {
            d.warning(
                "device_type",
                format!(
                    "low-standby-power devices cannot sustain {:.1} GHz; expect heavy timing relaxation",
                    self.clock_hz / 1e9
                ),
            );
        }

        // Topology of cores and caches.
        if self.num_cores == 0 {
            d.error("num_cores", "zero cores");
        }
        if self.num_shared_fpus > self.num_cores {
            d.warning(
                "num_shared_fpus",
                format!(
                    "{} shared FPUs among {} cores; each core already saturates one",
                    self.num_shared_fpus, self.num_cores
                ),
            );
        }
        if self.l2.is_some() && self.num_l2s == 0 {
            d.error("num_l2s", "L2 configured but num_l2s is 0");
        }
        if self.l2.is_none() && self.num_l2s > 0 {
            d.warning("num_l2s", "num_l2s set but no L2 configured");
        }
        if self.num_cores > 0 && self.num_l2s > 0 && !self.num_cores.is_multiple_of(self.num_l2s) {
            d.error(
                "num_l2s",
                format!(
                    "L2 instance count {} must divide core count {}",
                    self.num_l2s, self.num_cores
                ),
            );
        }

        // Fabric geometry.
        match self.fabric.topology {
            Topology::Mesh { x, y } => {
                if x == 0 || y == 0 {
                    d.error(
                        "fabric.topology",
                        format!("mesh dimensions {x}x{y} must both be positive"),
                    );
                }
            }
            Topology::Ring { n } | Topology::Bus { n } | Topology::Crossbar { n } => {
                if n == 0 {
                    d.error("fabric.topology", "fabric needs at least one endpoint");
                }
            }
        }
        if self.fabric.flit_bits == 0 {
            d.error("fabric.flit_bits", "flit width must be positive");
        }
        if self.fabric.vcs_per_port == 0 {
            d.error("fabric.vcs_per_port", "need at least one virtual channel");
        }
        if self.fabric.buffers_per_vc == 0 {
            d.error("fabric.buffers_per_vc", "need at least one buffer per VC");
        }

        // Sub-configurations, re-rooted at their component paths.
        if let Some(l2) = &self.l2 {
            l2.validate_into("l2", &mut d);
        }
        if let Some(l3) = &self.l3 {
            l3.validate_into("l3", &mut d);
        }
        if let Some(mc) = &self.mc {
            mc.validate_into("mc", &mut d);
        }
        d.merge_under("core", self.core.validate());
        d
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            ProcessorConfig::niagara(),
            ProcessorConfig::niagara2(),
            ProcessorConfig::alpha21364(),
            ProcessorConfig::tulsa(),
        ] {
            let d = cfg.validate();
            assert!(!d.has_errors(), "{}: {d}", cfg.name);
        }
    }

    #[test]
    fn manycore_clustering_divides() {
        let cfg = ProcessorConfig::manycore(
            "m",
            TechNode::N22,
            CoreConfig::generic_inorder(),
            64,
            4,
            2 * 1024 * 1024,
        );
        assert_eq!(cfg.num_l2s, 16);
        assert_eq!(cfg.cores_per_cluster(), 4);
        assert!(!cfg.validate().has_errors());
    }

    #[test]
    fn manycore_with_bad_clustering_fails_validation() {
        let cfg = ProcessorConfig::manycore(
            "m",
            TechNode::N22,
            CoreConfig::generic_inorder(),
            64,
            3,
            1024 * 1024,
        );
        let d = cfg.validate();
        assert!(d.has_errors());
        assert!(
            d.errors().any(|f| f.path == "num_l2s"),
            "expected a num_l2s finding: {d}"
        );
    }

    #[test]
    fn validation_collects_findings_across_components() {
        let mut cfg = ProcessorConfig::niagara();
        cfg.temperature_k = f64::NAN;
        cfg.fabric.flit_bits = 0;
        cfg.core.threads = 0;
        if let Some(l2) = &mut cfg.l2 {
            l2.cache.associativity = 0;
        }
        if let Some(mc) = &mut cfg.mc {
            mc.channels = 0;
        }
        let d = cfg.validate();
        assert!(d.error_count() >= 5, "wanted all findings, got: {d}");
        let paths: Vec<&str> = d.iter().map(|f| f.path.as_str()).collect();
        for p in [
            "temperature_k",
            "fabric.flit_bits",
            "core.threads",
            "l2.associativity",
            "mc.channels",
        ] {
            assert!(paths.contains(&p), "missing {p} in {paths:?}");
        }
    }

    #[test]
    fn out_of_band_temperature_warns_but_validates() {
        let mut cfg = ProcessorConfig::niagara();
        cfg.temperature_k = 290.0;
        let d = cfg.validate();
        assert!(!d.has_errors(), "{d}");
        assert!(d.warnings().any(|f| f.path == "temperature_k"), "{d}");
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = ProcessorConfig::niagara();
        let json = serde_json_like(&cfg);
        assert!(json.contains("niagara"));
    }

    // A tiny smoke check that Serialize works without pulling serde_json
    // into the dependency set: serialize to the debug of the serde data
    // model via a throwaway writer is overkill; we simply ensure the
    // trait is implemented by round-tripping through bincode-style
    // in-memory representation using serde's test-friendly `to_string`
    // of Debug (the derive itself is checked at compile time).
    fn serde_json_like(cfg: &ProcessorConfig) -> String {
        format!("{cfg:?}")
    }

    #[test]
    fn fabric_mesh_sizes_near_square() {
        let f = FabricConfig::mesh_for(12);
        match f.topology {
            Topology::Mesh { x, y } => assert!(x * y >= 12 && x * y <= 20),
            other => panic!("unexpected {other:?}"),
        }
    }
}
