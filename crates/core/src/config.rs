//! Whole-processor configuration — the analog of McPAT's XML input file
//! (serde-serializable, so it can be stored as JSON/TOML by tooling).

use mcpat_interconnect::noc::Topology;
use mcpat_mcore::config::CoreConfig;
use mcpat_tech::{DeviceType, TechNode, WireProjection};
use mcpat_uncore::memctrl::MemCtrlConfig;
use mcpat_uncore::shared_cache::SharedCacheConfig;
use serde::{Deserialize, Serialize};

/// On-chip fabric description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Topology connecting the clusters.
    pub topology: Topology,
    /// Flit width, bits.
    pub flit_bits: u32,
    /// Virtual channels per router port.
    pub vcs_per_port: u32,
    /// Buffers per VC.
    pub buffers_per_vc: u32,
}

impl FabricConfig {
    /// A mesh sized for `n` endpoints (x·y ≥ n, near-square).
    #[must_use]
    pub fn mesh_for(n: u32) -> FabricConfig {
        let x = (f64::from(n)).sqrt().ceil() as u32;
        let y = n.div_ceil(x.max(1));
        FabricConfig {
            topology: Topology::Mesh { x: x.max(1), y: y.max(1) },
            flit_bits: 128,
            vcs_per_port: 4,
            buffers_per_vc: 4,
        }
    }

    /// A shared bus among `n` endpoints.
    #[must_use]
    pub fn bus_for(n: u32) -> FabricConfig {
        FabricConfig {
            topology: Topology::Bus { n: n.max(1) },
            flit_bits: 256,
            vcs_per_port: 1,
            buffers_per_vc: 1,
        }
    }
}

/// The full description of a processor handed to [`crate::Processor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorConfig {
    /// Chip name (used in reports).
    pub name: String,
    /// Technology node.
    pub node: TechNode,
    /// Device flavor for core logic.
    pub device_type: DeviceType,
    /// Junction temperature, K.
    pub temperature_k: f64,
    /// Interconnect projection.
    pub projection: WireProjection,
    /// Use long-channel devices off the critical path.
    pub long_channel_leakage: bool,
    /// Chip clock, Hz (also the core clock).
    pub clock_hz: f64,
    /// Number of identical cores.
    pub num_cores: u32,
    /// Per-core architecture.
    pub core: CoreConfig,
    /// Shared L2 configuration (one instance per cluster), if any.
    pub l2: Option<SharedCacheConfig>,
    /// Number of L2 instances; `num_cores / num_l2s` cores share each
    /// (the case study's clustering degree).
    pub num_l2s: u32,
    /// Shared L3, if any (always chip-wide).
    pub l3: Option<SharedCacheConfig>,
    /// Fabric connecting clusters, L3 and memory controllers.
    pub fabric: FabricConfig,
    /// Integrated memory controller, if any.
    pub mc: Option<MemCtrlConfig>,
    /// Other off-chip I/O bandwidth provisioned (coherence links, PCIe,
    /// misc pads), bytes/s.
    pub io_bandwidth: f64,
    /// Chip-level shared FPUs (Niagara-style), in addition to per-core
    /// FPUs.
    pub num_shared_fpus: u32,
    /// Per-core power gating: idle cores drop to a retention state that
    /// leaks ~10% of nominal, at a small always-on area cost for the
    /// sleep transistors.
    pub power_gating: bool,
    /// Supply bias relative to the node's nominal Vdd (true DVFS:
    /// affects drive, leakage, and achievable timing). 1.0 = nominal.
    #[serde(default = "default_vdd_scale")]
    pub vdd_scale: f64,
}

fn default_vdd_scale() -> f64 {
    1.0
}

impl ProcessorConfig {
    /// A generic homogeneous manycore chip: `num_cores` copies of `core`
    /// with `cores_per_cluster` sharing each L2 bank.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or not divisible by
    /// `cores_per_cluster`.
    #[must_use]
    pub fn manycore(
        name: &str,
        node: TechNode,
        core: CoreConfig,
        num_cores: u32,
        cores_per_cluster: u32,
        l2_bytes_per_cluster: u64,
    ) -> ProcessorConfig {
        assert!(num_cores > 0, "need at least one core");
        assert!(
            cores_per_cluster > 0 && num_cores.is_multiple_of(cores_per_cluster),
            "cluster size must divide the core count"
        );
        let num_l2s = num_cores / cores_per_cluster;
        let clock_hz = core.clock_hz;
        ProcessorConfig {
            name: name.to_owned(),
            node,
            device_type: DeviceType::Hp,
            temperature_k: 360.0,
            projection: WireProjection::Aggressive,
            long_channel_leakage: true,
            clock_hz,
            num_cores,
            core,
            l2: Some(SharedCacheConfig::l2("l2", l2_bytes_per_cluster, cores_per_cluster)),
            num_l2s,
            l3: None,
            fabric: if num_l2s <= 2 {
                FabricConfig::bus_for(num_l2s + 2)
            } else {
                FabricConfig::mesh_for(num_l2s)
            },
            mc: Some(MemCtrlConfig {
                channels: 4,
                ..MemCtrlConfig::default()
            }),
            io_bandwidth: 12.8e9,
            num_shared_fpus: 0,
            power_gating: false,
            vdd_scale: 1.0,
        }
    }

    /// The Sun Niagara (UltraSPARC T1) validation target:
    /// 8 single-issue 4-thread in-order cores, 3 MB L2 in 4 banks, a
    /// cores↔banks crossbar, 4 DDR2 channels, 90 nm, 1.2 GHz.
    /// Published: 63 W typical, 378 mm².
    #[must_use]
    pub fn niagara() -> ProcessorConfig {
        let core = CoreConfig::niagara_like();
        let mut l2 = SharedCacheConfig::l2("l2", 3 * 1024 * 1024 / 4, 8);
        l2.cache.associativity = 12;
        l2.mshr_entries = 8;
        ProcessorConfig {
            name: "niagara".into(),
            node: TechNode::N90,
            device_type: DeviceType::Hp,
            temperature_k: 360.0,
            projection: WireProjection::Conservative,
            long_channel_leakage: true,
            clock_hz: 1.2e9,
            num_cores: 8,
            core,
            l2: Some(l2),
            num_l2s: 4,
            l3: None,
            fabric: FabricConfig {
                // The Niagara 8-core ↔ 4-bank (+FPU/IO) crossbar.
                topology: Topology::Crossbar { n: 13 },
                flit_bits: 128,
                vcs_per_port: 1,
                buffers_per_vc: 2,
            },
            mc: Some(MemCtrlConfig {
                channels: 4,
                bus_bits: 128,
                peak_bw_per_channel: 6.4e9,
                read_queue_depth: 8,
                write_queue_depth: 8,
                paddr_bits: 40,
                phy_standby_override_w: None,
            }),
            io_bandwidth: 6.0e9,
            num_shared_fpus: 1,
            power_gating: false,
            vdd_scale: 1.0,
        }
    }

    /// The Sun Niagara2 (UltraSPARC T2) validation target:
    /// 8 dual-issue 8-thread cores with per-core FPUs, 4 MB L2 in 8
    /// banks, FB-DIMM memory + 10 GbE I/O, 65 nm, 1.4 GHz.
    /// Published: 84 W typical, 342 mm².
    #[must_use]
    pub fn niagara2() -> ProcessorConfig {
        let core = CoreConfig::niagara2_like();
        let mut l2 = SharedCacheConfig::l2("l2", 4 * 1024 * 1024 / 8, 8);
        l2.cache.associativity = 16;
        ProcessorConfig {
            name: "niagara2".into(),
            node: TechNode::N65,
            device_type: DeviceType::Hp,
            temperature_k: 360.0,
            projection: WireProjection::Conservative,
            long_channel_leakage: true,
            clock_hz: 1.4e9,
            num_cores: 8,
            core,
            l2: Some(l2),
            num_l2s: 8,
            l3: None,
            fabric: FabricConfig {
                // Niagara2's 8-core ↔ 8-bank crossbar.
                topology: Topology::Crossbar { n: 16 },
                flit_bits: 128,
                vcs_per_port: 1,
                buffers_per_vc: 2,
            },
            mc: Some(MemCtrlConfig {
                channels: 8, // FB-DIMM lane pairs
                bus_bits: 64,
                peak_bw_per_channel: 5.3e9,
                read_queue_depth: 16,
                write_queue_depth: 16,
                paddr_bits: 40,
                // FB-DIMM serial PHYs idle hot (AMB links stay trained).
                phy_standby_override_w: Some(1.5),
            }),
            // Dual 10 GbE + x8 PCIe + FB-DIMM SerDes overhead on die.
            io_bandwidth: 25e9,
            num_shared_fpus: 0,
            power_gating: false,
            vdd_scale: 1.0,
        }
    }

    /// The Alpha 21364 validation target: one EV68-class OoO core,
    /// 1.75 MB on-chip L2, integrated router + memory controllers,
    /// 180 nm, 1.2 GHz. Published: 125 W peak, 397 mm².
    #[must_use]
    pub fn alpha21364() -> ProcessorConfig {
        let core = CoreConfig::alpha21364_like();
        let mut l2 = SharedCacheConfig::l2("l2", 1_835_008, 1); // 1.75 MB
        l2.cache.associativity = 7;
        l2.directory_sharers = 4; // glueless multiprocessor directory
        ProcessorConfig {
            name: "alpha21364".into(),
            node: TechNode::N180,
            device_type: DeviceType::Hp,
            temperature_k: 360.0,
            projection: WireProjection::Conservative,
            long_channel_leakage: false,
            clock_hz: 1.2e9,
            num_cores: 1,
            core,
            l2: Some(l2),
            num_l2s: 1,
            l3: None,
            fabric: FabricConfig {
                // The 21364's network router (4 off-chip ports + local).
                topology: Topology::Mesh { x: 1, y: 1 },
                flit_bits: 64,
                vcs_per_port: 8,
                buffers_per_vc: 8,
            },
            mc: Some(MemCtrlConfig {
                channels: 2,
                bus_bits: 128,
                peak_bw_per_channel: 6.0e9,
                read_queue_depth: 16,
                write_queue_depth: 16,
                paddr_bits: 44,
                phy_standby_override_w: None,
            }),
            io_bandwidth: 22.0e9, // four 6.4 GB/s inter-processor links
            num_shared_fpus: 0,
            power_gating: false,
            vdd_scale: 1.0,
        }
    }

    /// The Intel Xeon Tulsa validation target: 2 NetBurst cores at
    /// 3.4 GHz, 16 MB shared L3 + per-core 1 MB L2, front-side bus,
    /// 65 nm. Published: 150 W TDP, 435 mm².
    #[must_use]
    pub fn tulsa() -> ProcessorConfig {
        let core = CoreConfig::tulsa_like();
        let mut l2 = SharedCacheConfig::l2("l2", 1024 * 1024, 1);
        l2.cache.associativity = 8;
        let mut l3 = SharedCacheConfig::l2("l3", 16 * 1024 * 1024, 2);
        l3.cache.associativity = 16;
        l3.cache.banks = 8;
        l3.mshr_entries = 24;
        ProcessorConfig {
            name: "xeon-tulsa".into(),
            node: TechNode::N65,
            device_type: DeviceType::Hp,
            temperature_k: 365.0,
            projection: WireProjection::Conservative,
            long_channel_leakage: false,
            clock_hz: 3.4e9,
            num_cores: 2,
            core,
            l2: Some(l2),
            num_l2s: 2,
            l3: Some(l3),
            fabric: FabricConfig::bus_for(4),
            mc: None, // off-chip northbridge era
            io_bandwidth: 17.0e9, // dual independent FSBs
            num_shared_fpus: 0,
            power_gating: false,
            vdd_scale: 1.0,
        }
    }

    /// Cores sharing each L2 instance (the clustering degree).
    #[must_use]
    pub fn cores_per_cluster(&self) -> u32 {
        self.num_cores
            .checked_div(self.num_l2s)
            .unwrap_or(self.num_cores)
    }

    /// Basic invariants.
    ///
    /// # Errors
    ///
    /// Returns a message for the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err(format!("{}: zero cores", self.name));
        }
        if self.num_l2s > 0 && !self.num_cores.is_multiple_of(self.num_l2s) {
            return Err(format!(
                "{}: L2 instance count {} must divide core count {}",
                self.name, self.num_l2s, self.num_cores
            ));
        }
        if self.l2.is_some() && self.num_l2s == 0 {
            return Err(format!("{}: L2 configured but num_l2s is 0", self.name));
        }
        if self.vdd_scale < 0.3 || self.vdd_scale > 1.3 {
            return Err(format!(
                "{}: vdd_scale {} outside the supported 0.3-1.3 range",
                self.name, self.vdd_scale
            ));
        }
        self.core.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            ProcessorConfig::niagara(),
            ProcessorConfig::niagara2(),
            ProcessorConfig::alpha21364(),
            ProcessorConfig::tulsa(),
        ] {
            cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn manycore_clustering_divides() {
        let cfg = ProcessorConfig::manycore(
            "m",
            TechNode::N22,
            CoreConfig::generic_inorder(),
            64,
            4,
            2 * 1024 * 1024,
        );
        assert_eq!(cfg.num_l2s, 16);
        assert_eq!(cfg.cores_per_cluster(), 4);
        cfg.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn manycore_rejects_bad_clustering() {
        let _ = ProcessorConfig::manycore(
            "m",
            TechNode::N22,
            CoreConfig::generic_inorder(),
            64,
            3,
            1024 * 1024,
        );
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = ProcessorConfig::niagara();
        let json = serde_json_like(&cfg);
        assert!(json.contains("niagara"));
    }

    // A tiny smoke check that Serialize works without pulling serde_json
    // into the dependency set: serialize to the debug of the serde data
    // model via a throwaway writer is overkill; we simply ensure the
    // trait is implemented by round-tripping through bincode-style
    // in-memory representation using serde's test-friendly `to_string`
    // of Debug (the derive itself is checked at compile time).
    fn serde_json_like(cfg: &ProcessorConfig) -> String {
        format!("{cfg:?}")
    }

    #[test]
    fn fabric_mesh_sizes_near_square() {
        let f = FabricConfig::mesh_for(12);
        match f.topology {
            Topology::Mesh { x, y } => assert!(x * y >= 12 && x * y <= 20),
            other => panic!("unexpected {other:?}"),
        }
    }
}
