//! Incremental Pareto frontier over the paper's four composite metrics.
//!
//! [`crate::explore`] materializes every feasible candidate and filters
//! afterwards; that is fine for tens of points and hopeless for the
//! 10^5–10^6-candidate sweeps [`crate::dse`] streams. This module keeps
//! only the *non-dominated* points — dominance taken over the paper's
//! four composite figures of merit (EDP, ED²P, EDAP, EDA²P) — plus one
//! tracked winner per [`Metric`], so memory is O(frontier), not
//! O(candidates).
//!
//! The frontier also answers the pruning question the streaming engine
//! asks before paying for a build: given a certified *lower bound* on a
//! candidate's metrics, can any frontier point already beat it
//! everywhere? See [`ParetoFrontier::would_prune`] for the soundness
//! argument (DESIGN.md §12 restates it).

use crate::metrics::{Metric, MetricSet};

/// One design point offered to the frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Candidate name (the DSE engine uses `dse-<cursor>`).
    pub name: String,
    /// The generator cursor that produced this point; doubles as the
    /// deterministic insertion-order key.
    pub cursor: u64,
    /// Die area, m².
    pub area: f64,
    /// Peak power, W.
    pub peak_power: f64,
    /// Workload metrics from the injected evaluator.
    pub metrics: MetricSet,
}

/// The four composite metrics, in the paper's order.
fn composites(m: &MetricSet) -> [f64; 4] {
    [m.edp(), m.ed2p(), m.edap(), m.eda2p()]
}

/// True if `a` dominates `b` over the four composites: no worse on all,
/// strictly better on at least one.
fn dominates(a: &MetricSet, b: &MetricSet) -> bool {
    let (a, b) = (composites(a), composites(b));
    let le = a.iter().zip(&b).all(|(x, y)| x <= y);
    let lt = a.iter().zip(&b).any(|(x, y)| x < y);
    le && lt
}

/// An incremental Pareto frontier with per-metric winner tracking.
///
/// Points are offered in a deterministic order (the DSE cursor order);
/// given the same offer sequence the frontier's state — point set,
/// point order, winners, and counters — is bit-identical, which is what
/// makes checkpoint/resume exact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoFrontier {
    /// Non-dominated points in insertion (cursor) order.
    points: Vec<FrontierPoint>,
    /// Tracked winner per [`Metric::ALL`] entry, over every *offered*
    /// (built) candidate — including points later evicted from the
    /// frontier. `None` until the first offer.
    winners: [Option<FrontierPoint>; Metric::ALL.len()],
    /// Points offered (built candidates reaching the frontier).
    offered: u64,
    /// Offers admitted to the frontier (not dominated on arrival).
    admitted: u64,
    /// Previously admitted points evicted by a later dominating offer.
    evicted: u64,
}

impl ParetoFrontier {
    /// An empty frontier.
    #[must_use]
    pub fn new() -> ParetoFrontier {
        ParetoFrontier::default()
    }

    /// Offers a built, evaluated candidate. Returns `true` if the point
    /// was admitted (no existing point dominates it), evicting any
    /// points it dominates; `false` if it was dominated on arrival.
    ///
    /// Either way the per-metric winners are updated first, so
    /// [`ParetoFrontier::best`] ranges over every offered candidate —
    /// a min-energy point that is composite-dominated stays reachable
    /// as the [`Metric::Energy`] winner even though it never joins the
    /// frontier. Ties replace the incumbent (new ≤ current wins),
    /// matching [`crate::metrics::best_index_of`]'s last-minimal-wins
    /// resolution over the offer order.
    pub fn offer(&mut self, point: FrontierPoint) -> bool {
        self.offered += 1;
        for (slot, metric) in self.winners.iter_mut().zip(Metric::ALL) {
            let beaten = slot.as_ref().is_none_or(|w| {
                metric.of(&point.metrics).total_cmp(&metric.of(&w.metrics))
                    != std::cmp::Ordering::Greater
            });
            if beaten {
                *slot = Some(point.clone());
            }
        }
        if self
            .points
            .iter()
            .any(|p| dominates(&p.metrics, &point.metrics))
        {
            return false;
        }
        let before = self.points.len();
        self.points
            .retain(|p| !dominates(&point.metrics, &p.metrics));
        self.evicted += (before - self.points.len()) as u64;
        self.points.push(point);
        self.admitted += 1;
        true
    }

    /// True if a candidate whose metrics are bounded below by
    /// `lower_bound` can be discarded without building it.
    ///
    /// Soundness: `lower_bound` must satisfy `lb.energy ≤ energy`,
    /// `lb.delay ≤ delay`, `lb.area ≤ area` for the candidate's true
    /// (all-positive) metrics; products of positive lower bounds lower-
    /// bound all four composites. If some frontier point `P` is ≤ the
    /// bound on all four composites and strictly < on one, then `P` is
    /// ≤ the true metrics on all four, and on the strict coordinate
    /// `P < lb ≤ true` — so `P` dominates the true candidate and
    /// [`ParetoFrontier::offer`] would have rejected it anyway. The
    /// strictness is tested against the *bound*, not the true value, so
    /// a candidate that merely ties a frontier point everywhere is
    /// still built and offered (equal points are mutually non-dominated
    /// and both kept). Pruning against a stale frontier stays sound by
    /// transitivity: points are only ever evicted by points that
    /// dominate them.
    #[must_use]
    pub fn would_prune(&self, lower_bound: &MetricSet) -> bool {
        self.points
            .iter()
            .any(|p| dominates(&p.metrics, lower_bound))
    }

    /// The non-dominated points, in insertion (cursor) order.
    #[must_use]
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// The tracked winner under `metric`, over every offered candidate
    /// (see [`ParetoFrontier::offer`]). `None` until the first offer.
    ///
    /// For the four composite metrics the winning *value* always equals
    /// the minimum over all enumerated candidates, pruned ones
    /// included: a pruned candidate is ≥ some frontier point on every
    /// composite. For [`Metric::Energy`]/[`Metric::Delay`] the winner
    /// ranges over built candidates only.
    #[must_use]
    pub fn best(&self, metric: Metric) -> Option<&FrontierPoint> {
        Metric::ALL
            .iter()
            .position(|&m| m == metric)
            .and_then(|i| self.winners.get(i))
            .and_then(Option::as_ref)
    }

    /// True if every tracked composite-metric winner is itself
    /// non-dominated — the streaming analog of
    /// [`crate::explore::Exploration::winners_are_pareto`]. Raw
    /// energy/delay winners may legitimately live off the frontier, so
    /// they are exempt.
    #[must_use]
    pub fn winners_are_pareto(&self) -> bool {
        [Metric::Edp, Metric::Ed2p, Metric::Edap, Metric::Eda2p]
            .iter()
            .all(|&m| {
                self.best(m).is_none_or(|w| {
                    !self
                        .points
                        .iter()
                        .any(|p| dominates(&p.metrics, &w.metrics))
                })
            })
    }

    /// Points offered so far.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Offers admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Admitted points later evicted by dominating offers.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of points currently on the frontier.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no point has been admitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Reconstructs a frontier from checkpointed state. The caller (the
    /// DSE checkpoint codec) is responsible for round-tripping floats
    /// exactly; given that, the rebuilt frontier is bit-identical to
    /// the one serialized, so a resumed sweep continues as if never
    /// interrupted.
    #[must_use]
    pub fn from_parts(
        points: Vec<FrontierPoint>,
        winners: [Option<FrontierPoint>; Metric::ALL.len()],
        offered: u64,
        admitted: u64,
        evicted: u64,
    ) -> ParetoFrontier {
        ParetoFrontier {
            points,
            winners,
            offered,
            admitted,
            evicted,
        }
    }

    /// The tracked winners, parallel to [`Metric::ALL`] (for the
    /// checkpoint codec).
    #[must_use]
    pub fn winners(&self) -> &[Option<FrontierPoint>; Metric::ALL.len()] {
        &self.winners
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn pt(cursor: u64, d: f64, e: f64, a: f64) -> FrontierPoint {
        FrontierPoint {
            name: format!("dse-{cursor}"),
            cursor,
            area: a,
            peak_power: e / d,
            metrics: MetricSet {
                delay: d,
                energy: e,
                area: a,
            },
        }
    }

    #[test]
    fn dominated_offers_are_rejected() {
        let mut f = ParetoFrontier::new();
        assert!(f.offer(pt(0, 1.0, 1.0, 1.0)));
        assert!(!f.offer(pt(1, 2.0, 2.0, 2.0)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.offered(), 2);
        assert_eq!(f.admitted(), 1);
    }

    #[test]
    fn dominating_offers_evict() {
        let mut f = ParetoFrontier::new();
        assert!(f.offer(pt(0, 2.0, 2.0, 2.0)));
        assert!(f.offer(pt(1, 1.0, 1.0, 1.0)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.evicted(), 1);
        assert_eq!(f.points()[0].cursor, 1);
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut f = ParetoFrontier::new();
        // Fast-but-big vs slow-but-tiny: each wins some composite.
        assert!(f.offer(pt(0, 1.0, 1.0, 100.0)));
        assert!(f.offer(pt(1, 1.5, 1.0, 10.0)));
        assert_eq!(f.len(), 2);
        assert!(f.winners_are_pareto());
    }

    #[test]
    fn equal_points_are_both_kept() {
        let mut f = ParetoFrontier::new();
        assert!(f.offer(pt(0, 1.0, 1.0, 1.0)));
        assert!(f.offer(pt(1, 1.0, 1.0, 1.0)));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn winner_ties_resolve_to_the_latest_offer() {
        let mut f = ParetoFrontier::new();
        f.offer(pt(0, 1.0, 1.0, 1.0));
        f.offer(pt(1, 1.0, 1.0, 1.0));
        assert_eq!(f.best(Metric::Edp).unwrap().cursor, 1);
    }

    #[test]
    fn energy_winner_survives_composite_eviction() {
        let mut f = ParetoFrontier::new();
        // Lowest energy but badly dominated on every composite.
        f.offer(pt(0, 30.0, 0.5, 1.0));
        f.offer(pt(1, 1.0, 1.0, 1.0));
        assert_eq!(f.len(), 1);
        assert_eq!(f.best(Metric::Energy).unwrap().cursor, 0);
        assert_eq!(f.best(Metric::Edp).unwrap().cursor, 1);
    }

    #[test]
    fn would_prune_requires_strict_improvement_over_the_bound() {
        let mut f = ParetoFrontier::new();
        f.offer(pt(0, 1.0, 1.0, 1.0));
        // A bound exactly tying the frontier point must NOT prune: the
        // true candidate could tie everywhere and belongs on the
        // frontier.
        let tie = MetricSet {
            delay: 1.0,
            energy: 1.0,
            area: 1.0,
        };
        assert!(!f.would_prune(&tie));
        // A bound the point strictly beats somewhere does prune.
        let worse = MetricSet {
            delay: 1.1,
            energy: 1.0,
            area: 1.0,
        };
        assert!(f.would_prune(&worse));
    }

    #[test]
    fn from_parts_round_trips_exactly() {
        let mut f = ParetoFrontier::new();
        for (i, d) in [2.0, 1.0, 1.5, 3.0].iter().enumerate() {
            f.offer(pt(i as u64, *d, 1.0 / d, 1.0 + d));
        }
        let rebuilt = ParetoFrontier::from_parts(
            f.points().to_vec(),
            f.winners().clone(),
            f.offered(),
            f.admitted(),
            f.evicted(),
        );
        assert_eq!(rebuilt, f);
    }
}
