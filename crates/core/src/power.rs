//! Chip-level power breakdowns.

use mcpat_circuit::metrics::StaticPower;
use mcpat_mcore::core::CorePower;

/// One top-level component of the chip power breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipPowerItem {
    /// Component name (`cores`, `l2`, `l3`, `noc`, `mc`, `io`, `clock`,
    /// `shared-fpu`).
    pub name: String,
    /// Dynamic power, W.
    pub dynamic: f64,
    /// Static power, W.
    pub leakage: StaticPower,
}

impl ChipPowerItem {
    /// Total power of the item, W.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage.total()
    }
}

/// A whole-chip power result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipPower {
    /// Top-level components.
    pub items: Vec<ChipPowerItem>,
    /// The per-unit breakdown of one core (all cores are identical).
    pub core_detail: CorePower,
}

impl ChipPower {
    /// Total dynamic power, W.
    #[must_use]
    pub fn dynamic(&self) -> f64 {
        self.items.iter().map(|i| i.dynamic).sum()
    }

    /// Total leakage, W.
    #[must_use]
    pub fn leakage(&self) -> StaticPower {
        self.items.iter().map(|i| i.leakage).sum()
    }

    /// Total chip power, W.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.dynamic() + self.leakage().total()
    }

    /// Looks up a top-level item by name.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<&ChipPowerItem> {
        self.items.iter().find(|i| i.name == name)
    }

    /// The fraction of total power a component contributes.
    #[must_use]
    pub fn share(&self, name: &str) -> f64 {
        match self.component(name) {
            Some(item) if self.total() > 0.0 => item.total() / self.total(),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn item(name: &str, d: f64, l: f64) -> ChipPowerItem {
        ChipPowerItem {
            name: name.into(),
            dynamic: d,
            leakage: StaticPower::new(l, 0.0),
        }
    }

    #[test]
    fn totals_and_shares() {
        let p = ChipPower {
            items: vec![item("cores", 30.0, 10.0), item("l2", 5.0, 5.0)],
            core_detail: CorePower { items: vec![] },
        };
        assert!((p.total() - 50.0).abs() < 1e-12);
        assert!((p.share("cores") - 0.8).abs() < 1e-12);
        assert_eq!(p.share("nothing"), 0.0);
    }
}
