//! # mcpat — an integrated power, area, and timing modeling framework
//! # for multicore and manycore architectures, in Rust
//!
//! This crate is the top of the mcpat-rs stack: it assembles whole
//! processors — cores, shared caches, networks-on-chip, memory
//! controllers, off-chip I/O, and the clock distribution network — from
//! the component models in `mcpat-mcore`, `mcpat-uncore` and
//! `mcpat-interconnect`, which in turn sit on the CACTI-style array
//! solver (`mcpat-array`), circuit primitives (`mcpat-circuit`) and the
//! ITRS technology layer (`mcpat-tech`).
//!
//! Like the original McPAT (Li et al., MICRO 2009) it is:
//!
//! * **integrated** — power, area and timing come from one internal chip
//!   representation, with an optimizer choosing array partitionings under
//!   timing constraints;
//! * **decoupled from performance simulation** — you feed it a
//!   [`ProcessorConfig`] (the XML-file analog) and, for runtime power,
//!   a [`ChipStats`] produced by any performance simulator (this
//!   repository ships `mcpat-sim`);
//! * **metric-complete** — beyond power/area it computes EDP, ED²P and
//!   the area-aware EDAP / EDA²P that the paper's case study is built on.
//!
//! ## Quick start
//!
//! ```
//! use mcpat::{Processor, ProcessorConfig};
//!
//! // The Sun Niagara validation target: 8 in-order cores at 90 nm.
//! let cfg = ProcessorConfig::niagara();
//! let chip = Processor::build(&cfg)?;
//! let power = chip.peak_power();
//! println!("{}", chip.report());
//! assert!(power.total() > 20.0 && power.total() < 150.0);
//! assert!(chip.die_area_mm2() > 100.0);
//! # Ok::<(), mcpat::McpatError>(())
//! ```

pub mod config;
pub mod dse;
pub mod dvfs;
pub mod error;
pub mod explore;
pub mod floorplan;
pub mod frontier;
pub mod metrics;
pub mod power;
pub mod processor;
pub mod report;
pub mod stats;
pub mod thermal;

pub use config::ProcessorConfig;
pub use dse::{
    dse, dse_streaming, AxisGrid, DseCheckpoint, DseEvaluator, DseOptions, DsePerf, DseResult,
    WorkloadModel,
};
pub use dvfs::DvfsPoint;
pub use error::McpatError;
pub use explore::{
    explore, explore_batch, max_clock_under_power_budget, max_clock_under_power_budget_with_perf,
    register_alloc_probe, BisectionPerf, Budgets, Candidate, Exploration, ExplorePerf,
};
pub use floorplan::{Floorplan, Tile};
pub use frontier::{FrontierPoint, ParetoFrontier};
pub use metrics::{Metric, MetricSet};
pub use power::{ChipPower, ChipPowerItem};
pub use processor::{BuildPerf, Delta, Processor};
pub use stats::ChipStats;
pub use thermal::{converge, ThermalResult, ThermalSpec};

// The diagnostics vocabulary is part of this crate's public API:
// `ProcessorConfig::validate` returns `Diagnostics`, and `McpatError`
// carries them.
pub use mcpat_diag::{AtPath, Diagnostic, Diagnostics, Severity};

/// The workspace's single environment-read seam: every `MCPAT_*`
/// variable the stack honors is declared and parsed there.
pub use mcpat_par::knobs;

/// Scoped observability: collectors, spans, tracing control and the
/// JSON trace export (`Processor::build` populates
/// [`processor::Processor::trace`] while `obs::set_tracing(true)` is
/// active).
pub use mcpat_obs as obs;

/// Resource governance: deadlines, cooperative cancellation and memory
/// ceilings for long-running builds. Enter a [`guard::Budget`] around
/// any build/explore call and every checkpointed loop underneath it
/// honors the budget, surfacing trips as [`McpatError::Budget`] (or
/// [`array::ArrayError::Budget`] inside the solver). Named `guard`
/// because [`Budgets`] — the exploration area/power constraints — is an
/// unrelated, older concept.
pub use mcpat_guard as guard;

// Re-export the layers so downstream users need only one dependency.
pub use mcpat_array as array;
pub use mcpat_circuit as circuit;
pub use mcpat_interconnect as interconnect;
pub use mcpat_mcore as mcore;
pub use mcpat_par as par;
pub use mcpat_tech as tech;
pub use mcpat_uncore as uncore;
