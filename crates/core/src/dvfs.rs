//! Dynamic voltage and frequency scaling.
//!
//! McPAT supports chips with multiple clock and voltage domains; the
//! companion capability exposed here scales an evaluated power result to
//! a different (V, f) operating point using the first-order laws the
//! paper's power model implies:
//!
//! * dynamic power ∝ V² · f;
//! * subthreshold leakage ∝ V (supply on the leaking stacks; DIBL
//!   sensitivity is not modeled — a documented simplification);
//! * gate leakage ∝ V.
//!
//! The voltage floor is the retention limit: points below
//! `MIN_VDD_SCALE` are rejected because the cells no longer hold state.

use crate::power::{ChipPower, ChipPowerItem};
use crate::processor::Processor;
use crate::stats::ChipStats;

/// Lowest supported supply scale (retention limit).
pub const MIN_VDD_SCALE: f64 = 0.6;

/// One DVFS operating point, relative to nominal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsPoint {
    /// Supply scale (1.0 = nominal).
    pub vdd_scale: f64,
    /// Frequency scale (1.0 = nominal).
    pub freq_scale: f64,
}

impl DvfsPoint {
    /// The nominal operating point.
    #[must_use]
    pub fn nominal() -> DvfsPoint {
        DvfsPoint {
            vdd_scale: 1.0,
            freq_scale: 1.0,
        }
    }

    /// A conventional DVFS ladder: frequency tracks voltage linearly
    /// (the alpha-power-law approximation for V ≫ Vt).
    #[must_use]
    pub fn ladder(vdd_scale: f64) -> DvfsPoint {
        DvfsPoint {
            vdd_scale,
            freq_scale: vdd_scale,
        }
    }

    /// Whether the point is electrically valid.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.vdd_scale >= MIN_VDD_SCALE && self.vdd_scale <= 1.2 && self.freq_scale > 0.0
    }
}

/// A power result rescaled to a DVFS point.
#[derive(Debug, Clone)]
pub struct DvfsResult {
    /// The operating point.
    pub point: DvfsPoint,
    /// Rescaled power breakdown.
    pub power: ChipPower,
    /// Relative performance (≈ frequency scale for core-bound work).
    pub relative_performance: f64,
}

impl DvfsResult {
    /// Energy per unit of work relative to nominal at the same workload
    /// (power ratio over performance ratio).
    #[must_use]
    pub fn relative_energy_per_op(&self, nominal_power: f64) -> f64 {
        (self.power.total() / nominal_power) / self.relative_performance
    }
}

/// Rescales a chip power result to an operating point.
///
/// Returns `None` for invalid points (below retention or non-positive
/// frequency).
#[must_use]
pub fn scale_power(power: &ChipPower, point: DvfsPoint) -> Option<ChipPower> {
    if !point.is_valid() {
        return None;
    }
    let dyn_k = point.vdd_scale * point.vdd_scale * point.freq_scale;
    let leak_k = point.vdd_scale;
    let items = power
        .items
        .iter()
        .map(|i| ChipPowerItem {
            name: i.name.clone(),
            dynamic: i.dynamic * dyn_k,
            leakage: i.leakage.scaled(leak_k),
        })
        .collect();
    // The per-unit core breakdown scales by the same laws.
    let core_detail = mcpat_mcore::core::CorePower {
        items: power
            .core_detail
            .items
            .iter()
            .map(|i| mcpat_mcore::core::PowerItem {
                name: i.name.clone(),
                dynamic: i.dynamic * dyn_k,
                leakage: i.leakage.scaled(leak_k),
            })
            .collect(),
    };
    Some(ChipPower { items, core_detail })
}

impl Processor {
    /// Evaluates runtime power at a DVFS point.
    ///
    /// Returns `None` for invalid points.
    #[must_use]
    pub fn runtime_power_at(&self, stats: &ChipStats, point: DvfsPoint) -> Option<DvfsResult> {
        let nominal = self.runtime_power(stats);
        let power = scale_power(&nominal, point)?;
        Some(DvfsResult {
            point,
            power,
            relative_performance: point.freq_scale,
        })
    }

    /// Sweeps a DVFS ladder and returns the valid points, highest
    /// voltage first.
    #[must_use]
    pub fn dvfs_sweep(&self, stats: &ChipStats, steps: usize) -> Vec<DvfsResult> {
        let mut out = Vec::new();
        for i in 0..steps {
            let v = 1.0 - i as f64 * (1.0 - MIN_VDD_SCALE) / (steps.max(2) - 1) as f64;
            if let Some(r) = self.runtime_power_at(stats, DvfsPoint::ladder(v)) {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::ProcessorConfig;

    fn chip_and_stats() -> (Processor, ChipStats) {
        let cfg = ProcessorConfig::niagara2();
        let chip = Processor::build(&cfg).unwrap();
        let stats = ChipStats::peak(1e-3, 8, cfg.clock_hz, 2, 1);
        (chip, stats)
    }

    #[test]
    fn nominal_point_is_identity() {
        let (chip, stats) = chip_and_stats();
        let base = chip.runtime_power(&stats);
        let r = chip.runtime_power_at(&stats, DvfsPoint::nominal()).unwrap();
        assert!((r.power.total() - base.total()).abs() < 1e-9);
    }

    #[test]
    fn core_detail_scales_consistently_with_items() {
        let (chip, stats) = chip_and_stats();
        let base = chip.runtime_power(&stats);
        let r = chip
            .runtime_power_at(&stats, DvfsPoint::ladder(0.7))
            .unwrap();
        let base_core: f64 = base.core_detail.items.iter().map(|i| i.dynamic).sum();
        let low_core: f64 = r.power.core_detail.items.iter().map(|i| i.dynamic).sum();
        assert!((low_core / base_core - 0.7f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn lower_voltage_saves_cubic_dynamic_power() {
        let (chip, stats) = chip_and_stats();
        let base = chip.runtime_power(&stats);
        let half = chip
            .runtime_power_at(&stats, DvfsPoint::ladder(0.7))
            .unwrap();
        let dyn_ratio = half.power.dynamic() / base.dynamic();
        assert!((dyn_ratio - 0.7f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn dvfs_improves_energy_per_op() {
        let (chip, stats) = chip_and_stats();
        let base = chip.runtime_power(&stats);
        let low = chip
            .runtime_power_at(&stats, DvfsPoint::ladder(0.7))
            .unwrap();
        assert!(low.relative_energy_per_op(base.total()) < 1.0);
    }

    #[test]
    fn below_retention_is_rejected() {
        let (chip, stats) = chip_and_stats();
        assert!(chip
            .runtime_power_at(&stats, DvfsPoint::ladder(0.4))
            .is_none());
    }

    #[test]
    fn sweep_is_monotone_in_power() {
        let (chip, stats) = chip_and_stats();
        let sweep = chip.dvfs_sweep(&stats, 5);
        assert!(sweep.len() >= 4);
        for pair in sweep.windows(2) {
            assert!(pair[1].power.total() < pair[0].power.total());
        }
    }
}
