//! Top-level error type.

use mcpat_array::ArrayError;
use mcpat_diag::{AtPath, Diagnostic, Diagnostics};
use mcpat_guard::GuardError;
use std::fmt;

/// Errors produced while building or evaluating a processor model.
///
/// Every variant is *located*: validation failures carry the complete
/// [`Diagnostics`] pass (all findings, each with its component path),
/// and solver failures carry the path of the array that failed.
#[derive(Debug, Clone, PartialEq)]
pub enum McpatError {
    /// The configuration failed validation. Holds **every** error and
    /// warning found, not just the first.
    Invalid(Diagnostics),
    /// A storage array — located by its component path, e.g.
    /// `core.lsu.dcache-data` — could not be solved.
    Array(AtPath<ArrayError>),
    /// A resource budget (deadline, cooperative cancellation, or memory
    /// ceiling — see [`mcpat_guard`]) tripped at the named build stage.
    /// Carries partial-progress metadata; the build leaves no poisoned
    /// state behind and can simply be retried.
    Budget(AtPath<GuardError>),
}

impl McpatError {
    /// A single-finding validation error at `path` (convenience for
    /// call sites that detect one problem outside a full pass).
    pub fn config(path: impl Into<String>, message: impl Into<String>) -> McpatError {
        let mut d = Diagnostics::new();
        d.error(path, message);
        McpatError::Invalid(d)
    }

    /// The findings of a failed validation, if that is what this is.
    #[must_use]
    pub fn diagnostics(&self) -> Option<&Diagnostics> {
        match self {
            McpatError::Invalid(d) => Some(d),
            McpatError::Array(_) | McpatError::Budget(_) => None,
        }
    }

    /// The budget violation behind this error, if a deadline,
    /// cancellation, or memory ceiling is what stopped the build —
    /// whether it surfaced at a build-stage checkpoint
    /// ([`McpatError::Budget`]) or inside the array solver
    /// ([`ArrayError::Budget`]).
    #[must_use]
    pub fn guard_error(&self) -> Option<&GuardError> {
        match self {
            McpatError::Budget(e) => Some(&e.source),
            McpatError::Array(e) => match &e.source {
                ArrayError::Budget { reason, .. } => Some(reason),
                _ => None,
            },
            McpatError::Invalid(_) => None,
        }
    }

    /// Every finding this error carries, as a flat list (an `Array` or
    /// `Budget` error becomes one error-severity finding at its path).
    #[must_use]
    pub fn findings(&self) -> Vec<Diagnostic> {
        match self {
            McpatError::Invalid(d) => d.clone().into_vec(),
            McpatError::Array(e) => {
                vec![Diagnostic::error(e.path.clone(), e.source.to_string())]
            }
            McpatError::Budget(e) => {
                vec![Diagnostic::error(e.path.clone(), e.source.to_string())]
            }
        }
    }
}

impl fmt::Display for McpatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McpatError::Invalid(d) => {
                write!(
                    f,
                    "invalid configuration ({} error{}):\n{d}",
                    d.error_count(),
                    if d.error_count() == 1 { "" } else { "s" }
                )
            }
            McpatError::Array(e) => write!(f, "array solver: {e}"),
            McpatError::Budget(e) => write!(f, "budget: {e}"),
        }
    }
}

impl std::error::Error for McpatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McpatError::Invalid(_) => None,
            McpatError::Array(e) => Some(e),
            McpatError::Budget(e) => Some(e),
        }
    }
}

impl From<AtPath<GuardError>> for McpatError {
    fn from(e: AtPath<GuardError>) -> McpatError {
        McpatError::Budget(e)
    }
}

impl From<AtPath<ArrayError>> for McpatError {
    fn from(e: AtPath<ArrayError>) -> McpatError {
        McpatError::Array(e)
    }
}

impl From<Diagnostics> for McpatError {
    fn from(d: Diagnostics) -> McpatError {
        McpatError::Invalid(d)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_every_finding() {
        let mut d = Diagnostics::new();
        d.error("num_cores", "zero cores");
        d.error("clock_hz", "must be positive");
        let e = McpatError::Invalid(d);
        let text = e.to_string();
        assert!(text.contains("2 errors"), "{text}");
        assert!(text.contains("num_cores"), "{text}");
        assert!(text.contains("clock_hz"), "{text}");
    }

    #[test]
    fn array_errors_convert_with_their_path() {
        let ae = ArrayError::DegenerateSpec { name: "x".into() };
        let e: McpatError = AtPath::new("l2.tag", ae.clone()).into();
        assert_eq!(e, McpatError::Array(AtPath::new("l2.tag", ae)));
        assert!(e.to_string().contains("l2.tag"));
    }

    #[test]
    fn budget_errors_locate_and_expose_the_guard_reason() {
        let ge = GuardError::Cancelled {
            progress: mcpat_guard::Progress::default(),
        };
        let e: McpatError = AtPath::new("build.core", ge.clone()).into();
        assert_eq!(e.guard_error(), Some(&ge));
        assert!(e.to_string().contains("build.core"));
        assert_eq!(e.findings().len(), 1);
        assert_eq!(e.findings()[0].path, "build.core");

        // The solver-side variant surfaces through the same accessor.
        let ae = ArrayError::Budget {
            name: "dcache".into(),
            reason: ge.clone(),
        };
        let e = McpatError::Array(AtPath::new("core.lsu.dcache", ae));
        assert_eq!(e.guard_error(), Some(&ge));
        assert!(McpatError::config("x", "y").guard_error().is_none());
    }

    #[test]
    fn findings_flatten_both_variants() {
        let e = McpatError::config("a.b", "broken");
        assert_eq!(e.findings().len(), 1);
        assert_eq!(e.findings()[0].path, "a.b");
        let ae = ArrayError::DegenerateSpec { name: "x".into() };
        let e = McpatError::Array(AtPath::new("mc", ae));
        assert_eq!(e.findings()[0].path, "mc");
    }
}
