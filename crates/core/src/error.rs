//! Top-level error type.

use mcpat_array::ArrayError;
use std::fmt;

/// Errors produced while building or evaluating a processor model.
#[derive(Debug, Clone, PartialEq)]
pub enum McpatError {
    /// A storage-array could not be solved.
    Array(ArrayError),
    /// The configuration violates an invariant.
    Config(String),
}

impl fmt::Display for McpatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McpatError::Array(e) => write!(f, "array solver: {e}"),
            McpatError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for McpatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McpatError::Array(e) => Some(e),
            McpatError::Config(_) => None,
        }
    }
}

impl From<ArrayError> for McpatError {
    fn from(e: ArrayError) -> McpatError {
        McpatError::Array(e)
    }
}

impl From<String> for McpatError {
    fn from(msg: String) -> McpatError {
        McpatError::Config(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = McpatError::Config("zero cores".into());
        assert!(e.to_string().contains("zero cores"));
    }

    #[test]
    fn array_errors_convert() {
        let ae = ArrayError::DegenerateSpec { name: "x".into() };
        let e: McpatError = ae.clone().into();
        assert_eq!(e, McpatError::Array(ae));
    }
}
