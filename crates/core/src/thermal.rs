//! Leakage–temperature convergence.
//!
//! Leakage grows exponentially with junction temperature, and junction
//! temperature grows with total power — a feedback loop the McPAT paper
//! notes (it defers detailed thermal maps to HotSpot, but the model's
//! leakage is temperature-parameterized precisely to close this loop).
//! This module runs the fixed-point iteration with a single lumped
//! junction-to-ambient thermal resistance.

use crate::config::ProcessorConfig;
use crate::error::McpatError;
use crate::power::ChipPower;
use crate::processor::Processor;
use crate::stats::ChipStats;

/// Lumped thermal environment of the package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalSpec {
    /// Ambient (heatsink inlet) temperature, K.
    pub ambient_k: f64,
    /// Junction-to-ambient thermal resistance, K/W.
    pub theta_ja: f64,
    /// Convergence tolerance on temperature, K.
    pub tolerance_k: f64,
    /// Iteration cap.
    pub max_iterations: u32,
}

impl Default for ThermalSpec {
    fn default() -> ThermalSpec {
        ThermalSpec {
            ambient_k: 318.0, // 45 °C in-case ambient
            theta_ja: 0.35,   // server heatsink class
            tolerance_k: 0.5,
            max_iterations: 12,
        }
    }
}

impl ThermalSpec {
    /// Full sanity validation of the thermal environment.
    ///
    /// [`converge`] refuses to iterate on a spec with errors; warnings
    /// flag operating points outside the leakage model's calibrated
    /// band.
    #[must_use]
    pub fn validate(&self) -> mcpat_diag::Diagnostics {
        let mut d = mcpat_diag::Diagnostics::new();
        d.require_positive("ambient_k", "ambient temperature", self.ambient_k);
        if self.ambient_k.is_finite()
            && self.ambient_k > 0.0
            && !(250.0..=450.0).contains(&self.ambient_k)
        {
            d.warning(
                "ambient_k",
                format!(
                    "ambient {} K is outside the modeled 250-450 K range",
                    self.ambient_k
                ),
            );
        }
        d.require_nonnegative("theta_ja", "junction-to-ambient resistance", self.theta_ja);
        d.require_positive("tolerance_k", "convergence tolerance", self.tolerance_k);
        if self.max_iterations == 0 {
            d.error(
                "max_iterations",
                "the fixed point needs at least one iteration",
            );
        }
        d
    }
}

/// The converged operating point.
#[derive(Debug, Clone)]
pub struct ThermalResult {
    /// The chip rebuilt at the converged temperature.
    pub chip: Processor,
    /// The converged power.
    pub power: ChipPower,
    /// The converged junction temperature, K.
    pub junction_k: f64,
    /// Iterations used.
    pub iterations: u32,
    /// Whether the loop met the tolerance (false = hit the cap, which
    /// indicates thermal runaway for this θ_JA).
    pub converged: bool,
}

/// Runs the leakage–temperature fixed point for a configuration under
/// the given activity.
///
/// # Errors
///
/// [`McpatError::Invalid`] if the thermal spec fails
/// [`ThermalSpec::validate`]; otherwise propagates [`McpatError`] from
/// any rebuild.
pub fn converge(
    config: &ProcessorConfig,
    stats: &ChipStats,
    thermal: ThermalSpec,
) -> Result<ThermalResult, McpatError> {
    let spec_diags = thermal.validate();
    if spec_diags.has_errors() {
        return Err(McpatError::Invalid(spec_diags));
    }
    let mut temp = thermal.ambient_k.max(config.temperature_k.min(400.0));
    let mut iterations = 0;
    let mut converged = false;
    let mut chip = Processor::build(config)?;
    let mut power = chip.runtime_power(stats);

    while iterations < thermal.max_iterations {
        // One budget checkpoint per thermal iteration: convergence can
        // take many full rebuilds, so deadlines must be able to stop it
        // between them.
        crate::processor::checkpoint("thermal")?;
        iterations += 1;
        let mut cfg = config.clone();
        cfg.temperature_k = temp;
        chip = Processor::build(&cfg)?;
        power = chip.runtime_power(stats);
        let next = thermal.ambient_k + thermal.theta_ja * power.total();
        // Damped update for stability near runaway.
        let next = 0.5 * (temp + next.min(450.0));
        if (next - temp).abs() < thermal.tolerance_k {
            temp = next;
            converged = true;
            break;
        }
        temp = next;
    }

    Ok(ThermalResult {
        chip,
        power,
        junction_k: temp,
        iterations,
        converged,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::ProcessorConfig;

    fn stats_for(cfg: &ProcessorConfig) -> ChipStats {
        ChipStats::peak(
            1e-3,
            cfg.num_cores,
            cfg.clock_hz,
            cfg.core.issue_width,
            cfg.core.fp_issue_width,
        )
    }

    #[test]
    fn converges_above_ambient() {
        let cfg = ProcessorConfig::niagara2();
        let stats = stats_for(&cfg);
        let r = converge(&cfg, &stats, ThermalSpec::default()).unwrap();
        assert!(r.converged, "did not converge in {} iters", r.iterations);
        assert!(r.junction_k > 318.0);
        assert!(r.junction_k < 450.0);
    }

    #[test]
    fn worse_heatsink_runs_hotter_and_leaks_more() {
        let cfg = ProcessorConfig::niagara2();
        let stats = stats_for(&cfg);
        let good = converge(
            &cfg,
            &stats,
            ThermalSpec {
                theta_ja: 0.2,
                ..Default::default()
            },
        )
        .unwrap();
        let bad = converge(
            &cfg,
            &stats,
            ThermalSpec {
                theta_ja: 0.6,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(bad.junction_k > good.junction_k);
        assert!(bad.power.leakage().total() > good.power.leakage().total());
    }

    #[test]
    fn broken_thermal_spec_is_rejected_with_located_findings() {
        let cfg = ProcessorConfig::niagara();
        let stats = stats_for(&cfg);
        let spec = ThermalSpec {
            ambient_k: f64::NAN,
            tolerance_k: 0.0,
            max_iterations: 0,
            ..Default::default()
        };
        let err = converge(&cfg, &stats, spec).unwrap_err();
        let d = err.diagnostics().expect("a validation error");
        let paths: Vec<&str> = d.iter().map(|f| f.path.as_str()).collect();
        for p in ["ambient_k", "tolerance_k", "max_iterations"] {
            assert!(paths.contains(&p), "missing {p} in {paths:?}");
        }
    }

    #[test]
    fn converged_temperature_is_self_consistent() {
        let cfg = ProcessorConfig::niagara();
        let stats = stats_for(&cfg);
        let spec = ThermalSpec::default();
        let r = converge(&cfg, &stats, spec).unwrap();
        let implied = spec.ambient_k + spec.theta_ja * r.power.total();
        assert!(
            (implied - r.junction_k).abs() < 3.0 * spec.tolerance_k,
            "implied {implied} vs converged {}",
            r.junction_k
        );
    }
}
