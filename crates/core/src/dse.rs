//! Streaming design-space exploration over a declarative axis grid.
//!
//! [`crate::explore`] is the paper's case-study workflow for tens of
//! materialized candidates; this module is the same workflow scaled to
//! the 10^5–10^6-candidate sweeps ROADMAP item 3 calls for. Three ideas
//! keep it cheap:
//!
//! 1. **Lazy enumeration** — an [`AxisGrid`] describes the candidate
//!    set ({tech node × device flavor × core count × L2 size × clock})
//!    and candidates are generated from a cursor, never materialized.
//! 2. **Delta rebuilds** — the clock axis is innermost and the L2 axis
//!    second-innermost, so consecutive candidates differ by a
//!    [`Delta::Clock`] (or, at row boundaries, [`Delta::CacheSize`])
//!    from a per-row base chip and cost probes, not full builds.
//! 3. **Lower-bound pruning** — before a candidate is built, the
//!    evaluator produces a certified lower bound on its metrics; if the
//!    incremental [`ParetoFrontier`] already dominates the bound, the
//!    build never runs (see [`ParetoFrontier::would_prune`] for the
//!    soundness argument).
//!
//! Work streams through the persistent pool in bounded chunks routed
//! into [`crate::explore`]'s dedupe, so peak candidate storage is
//! O(frontier + chunk). The frontier plus the generator cursor
//! serialize to JSON ([`DseCheckpoint`]) at chunk boundaries, so a
//! sweep killed by the `mcpat-guard` deadline/cancel machinery resumes
//! where it stopped with a bit-identical final frontier.

use crate::config::ProcessorConfig;
use crate::error::McpatError;
use crate::explore::{assign_duplicates, Budgets};
use crate::frontier::{FrontierPoint, ParetoFrontier};
use crate::metrics::{Metric, MetricSet};
use crate::processor::{checkpoint, Delta, Processor};
use mcpat_diag::Diagnostics;
use mcpat_mcore::config::CoreConfig;
use mcpat_tech::{DeviceType, TechNode};
use serde::{Deserialize, Serialize};

/// A declarative candidate grid: the cross product of five axes around
/// a shared core template. Candidates are enumerated lazily from a
/// cursor with the clock axis innermost and the L2 axis second-
/// innermost — the order that lets the streaming engine serve
/// neighboring candidates with delta rebuilds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisGrid {
    /// Technology nodes.
    pub nodes: Vec<TechNode>,
    /// Device flavors (HP / LSTP / LOP).
    pub device_types: Vec<DeviceType>,
    /// Core counts.
    pub core_counts: Vec<u32>,
    /// L2 capacity per cluster, bytes.
    pub l2_bytes: Vec<u64>,
    /// Target clocks, Hz (the innermost axis).
    pub clocks_hz: Vec<f64>,
    /// The core template every candidate instantiates.
    pub core: CoreConfig,
}

impl AxisGrid {
    /// A grid over [`ProcessorConfig::manycore`] chips built from a
    /// generic in-order core template.
    #[must_use]
    pub fn manycore(
        nodes: Vec<TechNode>,
        device_types: Vec<DeviceType>,
        core_counts: Vec<u32>,
        l2_bytes: Vec<u64>,
        clocks_hz: Vec<f64>,
    ) -> AxisGrid {
        AxisGrid {
            nodes,
            device_types,
            core_counts,
            l2_bytes,
            clocks_hz,
            core: CoreConfig::generic_inorder(),
        }
    }

    /// Total number of candidates the grid enumerates.
    #[must_use]
    pub fn total(&self) -> u64 {
        (self.nodes.len() as u64)
            .saturating_mul(self.device_types.len() as u64)
            .saturating_mul(self.core_counts.len() as u64)
            .saturating_mul(self.l2_bytes.len() as u64)
            .saturating_mul(self.clocks_hz.len() as u64)
    }

    /// Collecting validation pass over the axes themselves (each
    /// candidate configuration is additionally validated when built).
    #[must_use]
    pub fn validate(&self) -> Diagnostics {
        let mut d = Diagnostics::new();
        if self.nodes.is_empty() {
            d.error("dse.nodes", "at least one tech node is required");
        }
        if self.device_types.is_empty() {
            d.error("dse.device_types", "at least one device flavor is required");
        }
        if self.core_counts.is_empty() {
            d.error("dse.core_counts", "at least one core count is required");
        }
        if self.l2_bytes.is_empty() {
            d.error("dse.l2_bytes", "at least one L2 size is required");
        }
        if self.clocks_hz.is_empty() {
            d.error("dse.clocks_hz", "at least one clock point is required");
        }
        for (i, &clock) in self.clocks_hz.iter().enumerate() {
            if !(clock.is_finite() && clock > 0.0) {
                d.error(
                    format!("dse.clocks_hz[{i}]"),
                    format!("clock must be a positive, finite frequency in Hz, got {clock}"),
                );
            }
        }
        d
    }

    /// Number of candidates per delta-rebuild row (the clock axis).
    fn clocks_len(&self) -> u64 {
        self.clocks_hz.len() as u64
    }

    /// The configuration at `cursor` (named `dse-<cursor>`), or `None`
    /// past the end of the grid.
    #[must_use]
    pub fn config_at(&self, cursor: u64) -> Option<ProcessorConfig> {
        if cursor >= self.total() {
            return None;
        }
        let clock = *self.clocks_hz.get((cursor % self.clocks_len()) as usize)?;
        let mut rest = cursor / self.clocks_len();
        let l2 = *self
            .l2_bytes
            .get((rest % self.l2_bytes.len() as u64) as usize)?;
        rest /= self.l2_bytes.len() as u64;
        let cores = *self
            .core_counts
            .get((rest % self.core_counts.len() as u64) as usize)?;
        rest /= self.core_counts.len() as u64;
        let device = *self
            .device_types
            .get((rest % self.device_types.len() as u64) as usize)?;
        rest /= self.device_types.len() as u64;
        let node = *self.nodes.get(rest as usize)?;
        let mut cfg = ProcessorConfig::manycore(
            &format!("dse-{cursor}"),
            node,
            self.core.clone(),
            cores,
            cores.min(2),
            l2,
        );
        cfg.device_type = device;
        cfg.clock_hz = clock;
        cfg.core.clock_hz = clock;
        Some(cfg)
    }
}

/// Knobs of one [`dse`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseOptions {
    /// Physical budgets a candidate must respect to reach the frontier.
    pub budgets: Budgets,
    /// Candidates streamed per pool batch; peak candidate storage is
    /// O(frontier + chunk).
    pub chunk: usize,
    /// Emit a checkpoint to the sink roughly every this many candidates
    /// (rounded up to chunk boundaries); 0 disables periodic
    /// checkpoints.
    pub checkpoint_every: u64,
    /// Lower-bound pruning. Disable to build every candidate — the
    /// naive-throughput baseline and exhaustive verification runs.
    pub prune: bool,
}

impl Default for DseOptions {
    fn default() -> DseOptions {
        DseOptions {
            budgets: Budgets::default(),
            chunk: 256,
            checkpoint_every: 0,
            prune: true,
        }
    }
}

/// How a sweep spent its candidates. Serialized into checkpoints so a
/// resumed sweep's totals continue from the interrupted run's.
///
/// After a resume, `full_builds`/`cache_rebuilds` can differ slightly
/// from an uninterrupted run (the first row after the resume point
/// re-anchors with a full build instead of a cache delta); the frontier
/// and every decision-relevant counter (`candidates`, `pruned`,
/// `rejected`) stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DsePerf {
    /// Candidates enumerated (the cursor advanced past them).
    pub candidates: u64,
    /// Candidates discarded by the frontier's lower-bound prune before
    /// any build ran.
    pub pruned: u64,
    /// Candidates outside [`DseOptions::budgets`] (rejected before the
    /// build when the exact clock-invariant area already exceeds the
    /// area budget, after it otherwise).
    pub rejected: u64,
    /// Candidates served by an incremental clock probe
    /// ([`Delta::Clock`]) off a row base.
    pub probes: u64,
    /// Row bases advanced with an L2 resize ([`Delta::CacheSize`])
    /// instead of a full build.
    pub cache_rebuilds: u64,
    /// Full [`Processor::build`] runs (row-base anchors, plus probes
    /// forced through the fallback by `core.enforce_timing`).
    pub full_builds: u64,
    /// Candidates served by another chunk member's identical build
    /// (routed through [`crate::explore`]'s dedupe).
    pub deduped: u64,
}

/// The outcome of a completed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// The incremental Pareto frontier with per-metric winners.
    pub frontier: ParetoFrontier,
    /// Build/prune accounting.
    pub perf: DsePerf,
}

impl DseResult {
    /// Serializes the finished sweep in the checkpoint format (cursor at
    /// the end of the grid), so the final frontier can be archived or
    /// diffed with the same tooling as in-flight checkpoints.
    #[must_use]
    pub fn final_checkpoint(&self, grid: &AxisGrid) -> DseCheckpoint {
        DseCheckpoint::capture(grid, grid.total(), &self.frontier, self.perf)
    }
}

/// Workload evaluation injected into the streaming engine.
///
/// Implementations must be deterministic: the frontier spot-check tests
/// and checkpoint/resume bit-identity both rely on `evaluate` producing
/// the same bits for the same chip.
pub trait DseEvaluator {
    /// Workload metrics of a built chip (the analog of [`crate::explore`]'s
    /// evaluator closure).
    fn evaluate(&mut self, chip: &Processor) -> MetricSet;

    /// A certified lower bound on the metrics of the (unbuilt)
    /// candidate at `cfg`, given its row `base` — a built chip
    /// identical to the candidate except for the clock. Every field
    /// must be ≤ the value [`DseEvaluator::evaluate`] would produce,
    /// and positive. Return `None` to skip pruning for this candidate.
    fn lower_bound(&self, base: &Processor, cfg: &ProcessorConfig) -> Option<MetricSet>;
}

/// The default throughput-workload model: a fixed amount of work spread
/// perfectly over the cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Total work, core-cycles: delay = work / (num_cores × clock).
    pub work: f64,
}

impl Default for WorkloadModel {
    fn default() -> WorkloadModel {
        WorkloadModel { work: 1e12 }
    }
}

impl DseEvaluator for WorkloadModel {
    fn evaluate(&mut self, chip: &Processor) -> MetricSet {
        let n = f64::from(chip.config.num_cores).max(1.0);
        let delay = self.work / (n * chip.config.clock_hz);
        MetricSet::from_power(chip.peak_power().total(), delay, chip.die_area())
    }

    fn lower_bound(&self, base: &Processor, cfg: &ProcessorConfig) -> Option<MetricSet> {
        let n = f64::from(cfg.num_cores).max(1.0);
        let delay = self.work / (n * cfg.clock_hz);
        // Die area is clock-invariant (the clock network sizes its
        // drivers from switched capacitance, not frequency), so the row
        // base's area is this candidate's exact area; leakage is
        // likewise clock-invariant and bounds peak power from below, so
        // leakage × delay lower-bounds energy.
        Some(MetricSet {
            delay,
            energy: base.total_leakage().total() * delay,
            area: base.die_area(),
        })
    }
}

/// Bit-exact JSON image of one frontier point: every float is stored as
/// its IEEE-754 bit pattern (a u64, which JSON integers carry exactly),
/// so a resumed frontier is indistinguishable from the serialized one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct PointRepr {
    name: String,
    cursor: u64,
    area_bits: u64,
    peak_power_bits: u64,
    delay_bits: u64,
    energy_bits: u64,
    metric_area_bits: u64,
}

impl PointRepr {
    fn from_point(p: &FrontierPoint) -> PointRepr {
        PointRepr {
            name: p.name.clone(),
            cursor: p.cursor,
            area_bits: p.area.to_bits(),
            peak_power_bits: p.peak_power.to_bits(),
            delay_bits: p.metrics.delay.to_bits(),
            energy_bits: p.metrics.energy.to_bits(),
            metric_area_bits: p.metrics.area.to_bits(),
        }
    }

    fn into_point(self) -> FrontierPoint {
        FrontierPoint {
            name: self.name,
            cursor: self.cursor,
            area: f64::from_bits(self.area_bits),
            peak_power: f64::from_bits(self.peak_power_bits),
            metrics: MetricSet {
                delay: f64::from_bits(self.delay_bits),
                energy: f64::from_bits(self.energy_bits),
                area: f64::from_bits(self.metric_area_bits),
            },
        }
    }
}

/// The checkpoint schema identifier.
const CHECKPOINT_SCHEMA: &str = "mcpat-dse-checkpoint-v1";

/// A resumable image of an in-flight sweep: the grid (echoed for
/// validation), the generator cursor (always a chunk boundary), the
/// counters, and the frontier with its tracked winners.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseCheckpoint {
    schema: String,
    grid: AxisGrid,
    cursor: u64,
    perf: DsePerf,
    offered: u64,
    admitted: u64,
    evicted: u64,
    frontier: Vec<PointRepr>,
    winners: Vec<Option<PointRepr>>,
}

impl DseCheckpoint {
    fn capture(
        grid: &AxisGrid,
        cursor: u64,
        frontier: &ParetoFrontier,
        perf: DsePerf,
    ) -> DseCheckpoint {
        DseCheckpoint {
            schema: CHECKPOINT_SCHEMA.to_owned(),
            grid: grid.clone(),
            cursor,
            perf,
            offered: frontier.offered(),
            admitted: frontier.admitted(),
            evicted: frontier.evicted(),
            frontier: frontier
                .points()
                .iter()
                .map(PointRepr::from_point)
                .collect(),
            winners: frontier
                .winners()
                .iter()
                .map(|w| w.as_ref().map(PointRepr::from_point))
                .collect(),
        }
    }

    /// The generator cursor the sweep will resume from.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The counters accumulated up to [`DseCheckpoint::cursor`].
    #[must_use]
    pub fn perf(&self) -> DsePerf {
        self.perf
    }

    /// Reconstructs the frontier exactly as serialized.
    #[must_use]
    pub fn frontier(&self) -> ParetoFrontier {
        let mut winners: [Option<FrontierPoint>; Metric::ALL.len()] = Default::default();
        for (slot, w) in winners.iter_mut().zip(self.winners.iter()) {
            *slot = w.clone().map(PointRepr::into_point);
        }
        ParetoFrontier::from_parts(
            self.frontier
                .iter()
                .cloned()
                .map(PointRepr::into_point)
                .collect(),
            winners,
            self.offered,
            self.admitted,
            self.evicted,
        )
    }

    /// Serializes the checkpoint as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// [`McpatError::Invalid`] if serialization fails (it cannot for
    /// this self-describing schema, but the error is surfaced rather
    /// than swallowed).
    pub fn to_json(&self) -> Result<String, McpatError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| McpatError::config("dse.checkpoint", format!("serialize: {e}")))
    }

    /// Parses a checkpoint produced by [`DseCheckpoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`McpatError::Invalid`] on malformed JSON or a schema mismatch.
    pub fn from_json(text: &str) -> Result<DseCheckpoint, McpatError> {
        let cp: DseCheckpoint = serde_json::from_str(text)
            .map_err(|e| McpatError::config("dse.checkpoint", format!("parse: {e}")))?;
        if cp.schema != CHECKPOINT_SCHEMA {
            return Err(McpatError::config(
                "dse.checkpoint.schema",
                format!("expected {CHECKPOINT_SCHEMA}, got {}", cp.schema),
            ));
        }
        Ok(cp)
    }
}

/// Runs a complete streaming sweep with no checkpointing; see
/// [`dse_streaming`].
///
/// # Errors
///
/// Propagates [`McpatError`] exactly like [`dse_streaming`].
pub fn dse<E: DseEvaluator>(
    grid: &AxisGrid,
    opts: &DseOptions,
    evaluator: &mut E,
) -> Result<DseResult, McpatError> {
    dse_streaming(grid, opts, evaluator, None, |_| Ok(()))
}

/// One in-flight candidate of a chunk, between enumeration and its
/// probe.
struct Pending {
    cursor: u64,
    cfg: ProcessorConfig,
    /// Index into the chunk's row-base table.
    base_slot: usize,
}

/// The streaming engine: enumerates `grid` from the resume cursor (or
/// 0), streams candidates through the pool in `opts.chunk`-sized
/// batches, offers survivors to the incremental frontier, and emits a
/// [`DseCheckpoint`] to `on_checkpoint` at the configured cadence
/// (chunk-aligned, so a resumed sweep replays no partial chunk and its
/// final frontier is bit-identical to an uninterrupted run's).
///
/// # Errors
///
/// [`McpatError::Invalid`] for a malformed grid or a resume checkpoint
/// whose grid echo does not match; [`McpatError::Budget`] when the
/// active `mcpat-guard` budget trips (the sweep can be resumed from the
/// last emitted checkpoint); any build error from a candidate,
/// propagated in cursor order within the failing chunk.
pub fn dse_streaming<E, S>(
    grid: &AxisGrid,
    opts: &DseOptions,
    evaluator: &mut E,
    resume: Option<&DseCheckpoint>,
    mut on_checkpoint: S,
) -> Result<DseResult, McpatError>
where
    E: DseEvaluator,
    S: FnMut(&DseCheckpoint) -> Result<(), McpatError>,
{
    let _span = mcpat_obs::span("dse");
    grid.validate().into_result().map_err(McpatError::Invalid)?;
    let (mut cursor, mut frontier, mut perf) = match resume {
        Some(cp) => {
            if cp.grid != *grid {
                return Err(McpatError::config(
                    "dse.checkpoint.grid",
                    "checkpoint was taken over a different axis grid",
                ));
            }
            (cp.cursor, cp.frontier(), cp.perf)
        }
        None => (0, ParetoFrontier::new(), DsePerf::default()),
    };

    let total = grid.total();
    let chunk = opts.chunk.max(1) as u64;
    // Base chips always sit at the row's first clock point; within one
    // (node, flavor, cores) group consecutive rows differ only in L2
    // size, so the base advances by a CacheSize delta instead of a full
    // build. `(row, chip)`, carried across chunks.
    let mut last_base: Option<(u64, Processor)> = None;
    let mut since_checkpoint = 0u64;

    while cursor < total {
        checkpoint("dse")?;
        let end = (cursor + chunk).min(total);
        run_chunk(
            grid,
            opts,
            evaluator,
            cursor..end,
            &mut last_base,
            &mut frontier,
            &mut perf,
        )?;
        since_checkpoint += end - cursor;
        cursor = end;
        mcpat_guard::note_span();
        if opts.checkpoint_every > 0 && since_checkpoint >= opts.checkpoint_every {
            since_checkpoint = 0;
            on_checkpoint(&DseCheckpoint::capture(grid, cursor, &frontier, perf))?;
        }
    }
    Ok(DseResult { frontier, perf })
}

/// Streams one chunk: enumerate, prune, dedupe, probe in parallel,
/// offer in cursor order.
fn run_chunk<E: DseEvaluator>(
    grid: &AxisGrid,
    opts: &DseOptions,
    evaluator: &mut E,
    range: std::ops::Range<u64>,
    last_base: &mut Option<(u64, Processor)>,
    frontier: &mut ParetoFrontier,
    perf: &mut DsePerf,
) -> Result<(), McpatError> {
    let clocks_len = grid.clocks_len();
    let l2_len = grid.l2_bytes.len() as u64;
    let mut bases: Vec<Processor> = Vec::new();
    let mut base_slots: Vec<u64> = Vec::new(); // row of each base slot
    let mut pending: Vec<Pending> = Vec::new();

    for cursor in range {
        checkpoint("dse.enumerate")?;
        perf.candidates += 1;
        let Some(cfg) = grid.config_at(cursor) else {
            continue;
        };
        let row = cursor / clocks_len;
        let base_slot = match base_slots.iter().position(|&r| r == row) {
            Some(slot) => slot,
            None => {
                let chip = advance_base(grid, row, clocks_len, l2_len, last_base, perf)?;
                bases.push(chip.clone());
                base_slots.push(row);
                *last_base = Some((row, chip));
                bases.len() - 1
            }
        };
        let Some(base) = bases.get(base_slot) else {
            continue;
        };
        // Exact early budget rejection: die area is clock-invariant, so
        // the base's area IS this candidate's area.
        if base.die_area() > opts.budgets.max_area {
            perf.rejected += 1;
            continue;
        }
        if opts.prune {
            if let Some(lb) = evaluator.lower_bound(base, &cfg) {
                if frontier.would_prune(&lb) {
                    perf.pruned += 1;
                    mcpat_obs::record_dse_pruned(1);
                    continue;
                }
            }
        }
        pending.push(Pending {
            cursor,
            cfg,
            base_slot,
        });
    }
    if pending.is_empty() {
        return Ok(());
    }

    // Route the chunk through the same dedupe key explore_batch uses:
    // identical configurations (up to the name) probe once and share.
    let cfgs: Vec<ProcessorConfig> = pending.iter().map(|p| p.cfg.clone()).collect();
    let mut assignment = vec![0usize; cfgs.len()];
    let rep_ids = assign_duplicates(&cfgs, &mut assignment);
    perf.deduped += (pending.len() - rep_ids.len()) as u64;
    let reps: Vec<&Pending> = rep_ids.iter().filter_map(|&i| pending.get(i)).collect();

    // Probe the representatives concurrently through the pool. Each
    // probe is a clock delta off its row base (bit-identical to a full
    // build of the candidate's configuration).
    let probes = mcpat_par::par_map(&reps, 2, |_, p| {
        checkpoint("dse.probe")?;
        let base = bases.get(p.base_slot).ok_or_else(|| {
            McpatError::config("dse.probe", "candidate references a missing row base")
        })?;
        let r = base.rebuild_with(Delta::Clock(p.cfg.clock_hz));
        if r.is_ok() {
            mcpat_guard::note_candidate();
        }
        r
    })
    .map_err(|e| {
        McpatError::Array(mcpat_diag::AtPath::new(
            "dse",
            mcpat_array::ArrayError::Worker {
                name: String::from("dse"),
                detail: e.to_string(),
            },
        ))
    })?;
    let mut chips = Vec::with_capacity(probes.len());
    for (built, p) in probes.into_iter().zip(reps.iter()) {
        if p.cfg.core.enforce_timing {
            perf.full_builds += 1;
            mcpat_obs::record_dse_full_builds(1);
        } else {
            perf.probes += 1;
            mcpat_obs::record_dse_probes(1);
        }
        chips.push(built?);
    }

    // Offer in cursor order so the frontier (ties, winners, counters)
    // is deterministic. Duplicates observe their representative's chip
    // relabeled in place — same values, their own name.
    for (p, &slot) in pending.iter().zip(assignment.iter()) {
        let Some(chip) = chips.get_mut(slot) else {
            continue;
        };
        chip.config.name.clone_from(&p.cfg.name);
        let area = chip.die_area();
        let peak = chip.peak_power().total();
        if area > opts.budgets.max_area || peak > opts.budgets.max_peak_power {
            perf.rejected += 1;
            continue;
        }
        let metrics = evaluator.evaluate(chip);
        frontier.offer(FrontierPoint {
            name: p.cfg.name.clone(),
            cursor: p.cursor,
            area,
            peak_power: peak,
            metrics,
        });
    }
    Ok(())
}

/// Produces the base chip for `row` (the row's configuration at its
/// first clock point): a [`Delta::CacheSize`] rebuild of the previous
/// base when only the L2 axis moved, a full build otherwise.
fn advance_base(
    grid: &AxisGrid,
    row: u64,
    clocks_len: u64,
    l2_len: u64,
    last_base: &Option<(u64, Processor)>,
    perf: &mut DsePerf,
) -> Result<Processor, McpatError> {
    let base_cfg = grid
        .config_at(row * clocks_len)
        .ok_or_else(|| McpatError::config("dse.base", format!("row {row} is outside the grid")))?;
    if let Some((prev_row, chip)) = last_base {
        // A row that spans a chunk boundary carries its base over for
        // free.
        if *prev_row == row {
            return Ok(chip.clone());
        }
        let same_group = l2_len > 0 && prev_row / l2_len == row / l2_len;
        if same_group && !base_cfg.core.enforce_timing {
            if let Some(l2) = &base_cfg.l2 {
                perf.cache_rebuilds += 1;
                mcpat_obs::record_dse_probes(1);
                return chip.rebuild_with(Delta::CacheSize(l2.cache.capacity));
            }
        }
    }
    perf.full_builds += 1;
    mcpat_obs::record_dse_full_builds(1);
    Processor::build(&base_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> AxisGrid {
        AxisGrid::manycore(
            vec![TechNode::N45, TechNode::N32],
            vec![DeviceType::Hp],
            vec![2, 4],
            vec![1 << 20, 2 << 20],
            vec![1.0e9, 1.5e9, 2.0e9],
        )
    }

    #[test]
    fn cursor_enumeration_is_a_clock_innermost_cross_product() {
        let grid = tiny_grid();
        assert_eq!(grid.total(), 2 * 1 * 2 * 2 * 3);
        let first = grid.config_at(0).expect("cursor 0");
        assert_eq!(first.name, "dse-0");
        assert_eq!(first.node, TechNode::N45);
        assert_eq!(first.num_cores, 2);
        assert!((first.clock_hz - 1.0e9).abs() < 1.0);
        // Adjacent cursors differ only in clock until the row rolls over.
        let second = grid.config_at(1).expect("cursor 1");
        assert!((second.clock_hz - 1.5e9).abs() < 1.0);
        assert_eq!(second.num_cores, first.num_cores);
        // The row after the clock axis rolls over moves the L2 axis.
        let next_row = grid.config_at(3).expect("cursor 3");
        assert_eq!(
            next_row.l2.as_ref().map(|l2| l2.cache.capacity),
            Some(2 << 20)
        );
        // Past the end there is nothing.
        assert!(grid.config_at(grid.total()).is_none());
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut grid = tiny_grid();
        grid.clocks_hz.clear();
        let d = grid.validate();
        assert!(d.has_errors());
        let mut bad = tiny_grid();
        bad.clocks_hz = vec![0.0];
        assert!(bad.validate().has_errors());
    }

    /// The naive reference: full-build every candidate in cursor order
    /// and offer it to a fresh frontier. The streaming engine must land
    /// on the exact same frontier bits.
    fn naive_frontier(grid: &AxisGrid, evaluator: &mut WorkloadModel) -> ParetoFrontier {
        let mut frontier = ParetoFrontier::new();
        for cursor in 0..grid.total() {
            let cfg = grid.config_at(cursor).expect("in range");
            let chip = Processor::build(&cfg).expect("naive build");
            let metrics = evaluator.evaluate(&chip);
            frontier.offer(FrontierPoint {
                name: cfg.name.clone(),
                cursor,
                area: chip.die_area(),
                peak_power: chip.peak_power().total(),
                metrics,
            });
        }
        frontier
    }

    fn assert_frontiers_bit_identical(a: &ParetoFrontier, b: &ParetoFrontier) {
        assert_eq!(a.len(), b.len(), "frontier sizes differ");
        for (x, y) in a.points().iter().zip(b.points().iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.cursor, y.cursor);
            assert_eq!(x.area.to_bits(), y.area.to_bits());
            assert_eq!(x.peak_power.to_bits(), y.peak_power.to_bits());
            assert_eq!(x.metrics.delay.to_bits(), y.metrics.delay.to_bits());
            assert_eq!(x.metrics.energy.to_bits(), y.metrics.energy.to_bits());
            assert_eq!(x.metrics.area.to_bits(), y.metrics.area.to_bits());
        }
        for (metric, (wa, wb)) in Metric::ALL.iter().zip(a.winners().iter().zip(b.winners())) {
            match (wa, wb) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.cursor, y.cursor, "winner for {metric:?} differs");
                    assert_eq!(
                        metric.of(&x.metrics).to_bits(),
                        metric.of(&y.metrics).to_bits(),
                        "winning value for {metric:?} differs"
                    );
                }
                (None, None) => {}
                _ => panic!("winner presence for {metric:?} differs"),
            }
        }
    }

    #[test]
    fn streaming_sweep_matches_the_naive_full_build_sweep_bit_for_bit() {
        let grid = tiny_grid();
        let opts = DseOptions {
            chunk: 5, // force several chunks and base handoffs across them
            ..DseOptions::default()
        };
        let result = dse(&grid, &opts, &mut WorkloadModel::default()).expect("streaming sweep");
        assert_eq!(result.perf.candidates, grid.total());
        // Every candidate either pruned, rejected, or offered.
        assert_eq!(
            result.frontier.offered() + result.perf.pruned + result.perf.rejected,
            grid.total()
        );
        // Delta rebuilds did the bulk of the work: one full build per
        // (node, flavor, cores) group, cache deltas inside a group.
        assert_eq!(result.perf.full_builds, 4);
        assert_eq!(result.perf.cache_rebuilds, 4);
        let naive = naive_frontier(&grid, &mut WorkloadModel::default());
        assert_frontiers_bit_identical(&result.frontier, &naive);
        // With pruning disabled the frontier is identical too (pruning
        // only skips work, never changes the surviving set).
        let unpruned = dse(
            &grid,
            &DseOptions {
                prune: false,
                ..opts
            },
            &mut WorkloadModel::default(),
        )
        .expect("unpruned sweep");
        assert_eq!(unpruned.perf.pruned, 0);
        assert_frontiers_bit_identical(&unpruned.frontier, &naive);
    }

    #[test]
    fn frontier_survivors_are_bit_identical_to_from_scratch_builds() {
        let grid = tiny_grid();
        let result = dse(&grid, &DseOptions::default(), &mut WorkloadModel::default())
            .expect("streaming sweep");
        assert!(!result.frontier.is_empty());
        for point in result.frontier.points() {
            let cfg = grid.config_at(point.cursor).expect("survivor in range");
            let chip = Processor::build(&cfg).expect("from-scratch build");
            let metrics = WorkloadModel::default().evaluate(&chip);
            assert_eq!(point.area.to_bits(), chip.die_area().to_bits());
            assert_eq!(
                point.peak_power.to_bits(),
                chip.peak_power().total().to_bits()
            );
            assert_eq!(point.metrics.energy.to_bits(), metrics.energy.to_bits());
            assert_eq!(point.metrics.delay.to_bits(), metrics.delay.to_bits());
        }
    }

    #[test]
    fn checkpoints_round_trip_through_json_exactly() {
        let grid = tiny_grid();
        let mut checkpoints: Vec<DseCheckpoint> = Vec::new();
        let opts = DseOptions {
            chunk: 4,
            checkpoint_every: 8,
            ..DseOptions::default()
        };
        let result = dse_streaming(&grid, &opts, &mut WorkloadModel::default(), None, |cp| {
            checkpoints.push(cp.clone());
            Ok(())
        })
        .expect("sweep with checkpoints");
        assert!(!checkpoints.is_empty());
        for cp in &checkpoints {
            let json = cp.to_json().expect("serialize");
            let back = DseCheckpoint::from_json(&json).expect("parse");
            assert_eq!(*cp, back);
            assert_frontiers_bit_identical(&cp.frontier(), &back.frontier());
        }
        // Resuming the final run from each checkpoint converges on the
        // same frontier bits as the uninterrupted sweep.
        for cp in &checkpoints {
            let resumed = dse_streaming(
                &grid,
                &opts,
                &mut WorkloadModel::default(),
                Some(cp),
                |_| Ok(()),
            )
            .expect("resumed sweep");
            assert_frontiers_bit_identical(&resumed.frontier, &result.frontier);
            assert_eq!(resumed.perf.candidates, result.perf.candidates);
            assert_eq!(resumed.perf.pruned, result.perf.pruned);
            assert_eq!(resumed.perf.rejected, result.perf.rejected);
        }
    }

    #[test]
    fn resume_rejects_a_checkpoint_from_a_different_grid() {
        let grid = tiny_grid();
        let mut checkpoints = Vec::new();
        let opts = DseOptions {
            chunk: 6,
            checkpoint_every: 6,
            ..DseOptions::default()
        };
        dse_streaming(&grid, &opts, &mut WorkloadModel::default(), None, |cp| {
            checkpoints.push(cp.clone());
            Ok(())
        })
        .expect("sweep");
        let cp = checkpoints.first().expect("at least one checkpoint");
        let mut other = tiny_grid();
        other.clocks_hz.push(3.0e9);
        let err = dse_streaming(
            &other,
            &opts,
            &mut WorkloadModel::default(),
            Some(cp),
            |_| Ok(()),
        )
        .expect_err("grid mismatch must be rejected");
        assert!(err.to_string().contains("different axis grid"));
        // Schema guard: corrupted text and wrong schema both fail.
        assert!(DseCheckpoint::from_json("{").is_err());
        let wrong = cp.to_json().expect("json").replace(CHECKPOINT_SCHEMA, "v0");
        assert!(DseCheckpoint::from_json(&wrong).is_err());
    }

    #[test]
    fn budgets_reject_candidates_before_they_reach_the_frontier() {
        let grid = tiny_grid();
        let opts = DseOptions {
            budgets: Budgets {
                max_area: 1e-9, // everything is over budget
                max_peak_power: f64::INFINITY,
            },
            ..DseOptions::default()
        };
        let result = dse(&grid, &opts, &mut WorkloadModel::default()).expect("sweep");
        assert!(result.frontier.is_empty());
        assert_eq!(result.perf.rejected, grid.total());
        // The exact clock-invariant area bound rejects whole rows before
        // any probe runs: only the row bases were ever built.
        assert_eq!(result.perf.probes, 0);
    }

    #[test]
    fn pruning_counts_and_dedupe_are_reported() {
        let mut grid = tiny_grid();
        // Duplicate clock points exercise the chunk dedupe.
        grid.clocks_hz = vec![1.0e9, 1.0e9, 2.0e9];
        let result =
            dse(&grid, &DseOptions::default(), &mut WorkloadModel::default()).expect("sweep");
        assert!(result.perf.deduped > 0);
        assert_eq!(
            result.frontier.offered() + result.perf.pruned + result.perf.rejected,
            grid.total()
        );
    }
}
