//! A simple slicing floorplanner for the internal chip representation.
//!
//! McPAT keeps an internal chip representation with enough physical
//! structure to estimate global wire lengths; this module makes that
//! structure explicit: clusters (cores + their shared L2) are placed in
//! a near-square grid, the L3 (if any) as a strip below them, and the
//! memory controllers / I/O on the bottom edge — the classic
//! server-chip layout. The result supports Manhattan-distance wire
//! estimates and an ASCII rendering for reports.

use crate::processor::Processor;

/// One placed rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    /// Component name (`core0`, `l2-3`, `l3`, `mc`, `io`, ...).
    pub name: String,
    /// Left edge, m.
    pub x: f64,
    /// Bottom edge, m.
    pub y: f64,
    /// Width, m.
    pub w: f64,
    /// Height, m.
    pub h: f64,
}

impl Tile {
    /// Center coordinates, m.
    #[must_use]
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Area, m².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// True if the interiors of two tiles overlap.
    #[must_use]
    pub fn overlaps(&self, other: &Tile) -> bool {
        let eps = 1e-12;
        self.x + eps < other.x + other.w
            && other.x + eps < self.x + self.w
            && self.y + eps < other.y + other.h
            && other.y + eps < self.y + self.h
    }
}

/// A placed chip.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// All placed tiles.
    pub tiles: Vec<Tile>,
    /// Active-area width, m.
    pub width: f64,
    /// Active-area height, m.
    pub height: f64,
}

impl Floorplan {
    /// Finds a tile by name.
    #[must_use]
    pub fn tile(&self, name: &str) -> Option<&Tile> {
        self.tiles.iter().find(|t| t.name == name)
    }

    /// Manhattan distance between two tiles' centers, m.
    #[must_use]
    pub fn distance(&self, a: &str, b: &str) -> Option<f64> {
        let ta = self.tile(a)?.center();
        let tb = self.tile(b)?.center();
        Some((ta.0 - tb.0).abs() + (ta.1 - tb.1).abs())
    }

    /// Mean Manhattan distance from each core to its cluster's L2, m.
    #[must_use]
    pub fn average_core_l2_distance(&self) -> f64 {
        // Cores sit adjacent to their cluster's L2, so the nearest L2
        // tile is the cluster's L2.
        let mut total = 0.0;
        let mut n = 0u32;
        for t in self.tiles.iter().filter(|t| t.name.starts_with("core")) {
            let (cx, cy) = t.center();
            let nearest = self
                .tiles
                .iter()
                .filter(|c| c.name.starts_with("l2-"))
                .map(|l2| {
                    let (lx, ly) = l2.center();
                    (lx - cx).abs() + (ly - cy).abs()
                })
                .min_by(f64::total_cmp);
            if let Some(d) = nearest {
                total += d;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / f64::from(n)
        }
    }

    /// Renders the plan as a coarse ASCII grid (`cols × rows`
    /// characters); each cell shows the initial of the tile covering its
    /// center.
    #[must_use]
    pub fn render(&self, cols: usize, rows: usize) -> String {
        let mut out = String::with_capacity((cols + 1) * rows);
        for r in (0..rows).rev() {
            for c in 0..cols {
                let x = (c as f64 + 0.5) / cols as f64 * self.width;
                let y = (r as f64 + 0.5) / rows as f64 * self.height;
                let ch = self
                    .tiles
                    .iter()
                    .find(|t| x >= t.x && x < t.x + t.w && y >= t.y && y < t.y + t.h)
                    .and_then(|t| t.name.chars().next())
                    .unwrap_or('.');
                out.push(ch.to_ascii_uppercase());
            }
            out.push('\n');
        }
        out
    }
}

impl Processor {
    /// Places the chip's components with the slicing heuristic described
    /// in the module docs.
    #[must_use]
    pub fn floorplan(&self) -> Floorplan {
        let c = &self.config;
        let core_area = self.core.area();
        let l2_area = self.l2.as_ref().map_or(0.0, |l| l.area());
        let l3_area = self.l3.as_ref().map_or(0.0, |l| l.area());
        let mc_area = self.mc.as_ref().map_or(0.0, |m| m.area());
        let io_area = self.io.area;

        let cores_per_cluster = c.cores_per_cluster().max(1);
        let num_clusters = c.num_l2s.max(1);
        let cluster_area = core_area * f64::from(cores_per_cluster) + l2_area;

        // Near-square cluster grid.
        let gx = (f64::from(num_clusters)).sqrt().ceil() as u32;
        let gy = num_clusters.div_ceil(gx);
        let cluster_width = cluster_area.sqrt();
        let cluster_h = cluster_area / cluster_width;
        let grid_width = f64::from(gx) * cluster_width;

        let mut tiles = Vec::new();
        let mut core_id = 0u32;
        for k in 0..num_clusters {
            let cx = f64::from(k % gx) * cluster_width;
            let cy = f64::from(k / gx) * cluster_h;
            // Cores in a column on the left, the L2 filling the right.
            let core_frac = (core_area * f64::from(cores_per_cluster) / cluster_area).min(1.0);
            let core_col_width = cluster_width * core_frac;
            let core_h = cluster_h / f64::from(cores_per_cluster);
            for i in 0..cores_per_cluster {
                tiles.push(Tile {
                    name: format!("core{core_id}"),
                    x: cx,
                    y: cy + f64::from(i) * core_h,
                    w: core_col_width,
                    h: core_h,
                });
                core_id += 1;
            }
            if l2_area > 0.0 {
                tiles.push(Tile {
                    name: format!("l2-{k}"),
                    x: cx + core_col_width,
                    y: cy,
                    w: cluster_width - core_col_width,
                    h: cluster_h,
                });
            }
        }

        let mut y_cursor = f64::from(gy) * cluster_h;
        let strip = |name: &str, area: f64, y: &mut f64| {
            if area <= 0.0 {
                return None;
            }
            let h = area / grid_width;
            let t = Tile {
                name: name.to_owned(),
                x: 0.0,
                y: *y,
                w: grid_width,
                h,
            };
            *y += h;
            Some(t)
        };
        if let Some(t) = strip("l3", l3_area, &mut y_cursor) {
            tiles.push(t);
        }
        if let Some(t) = strip("mc", mc_area, &mut y_cursor) {
            tiles.push(t);
        }
        if let Some(t) = strip("io", io_area + self.noc.area(), &mut y_cursor) {
            tiles.push(t);
        }

        Floorplan {
            tiles,
            width: grid_width,
            height: y_cursor,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::ProcessorConfig;

    fn plan_for(cfg: &ProcessorConfig) -> (Processor, Floorplan) {
        let chip = Processor::build(cfg).unwrap();
        let plan = chip.floorplan();
        (chip, plan)
    }

    #[test]
    fn tiles_do_not_overlap() {
        let (_, plan) = plan_for(&ProcessorConfig::niagara());
        for (i, a) in plan.tiles.iter().enumerate() {
            for b in &plan.tiles[i + 1..] {
                assert!(!a.overlaps(b), "{} overlaps {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn every_tile_fits_in_the_plan() {
        let (_, plan) = plan_for(&ProcessorConfig::tulsa());
        for t in &plan.tiles {
            assert!(t.x >= -1e-12 && t.y >= -1e-12, "{}", t.name);
            assert!(t.x + t.w <= plan.width + 1e-9, "{}", t.name);
            assert!(t.y + t.h <= plan.height + 1e-9, "{}", t.name);
        }
    }

    #[test]
    fn plan_area_matches_component_sum() {
        let (chip, plan) = plan_for(&ProcessorConfig::niagara2());
        let tile_area: f64 = plan.tiles.iter().map(Tile::area).sum();
        let c = &chip.config;
        let expected = chip.core.area() * f64::from(c.num_cores)
            + chip.l2.as_ref().map_or(0.0, |l| l.area()) * f64::from(c.num_l2s)
            + chip.l3.as_ref().map_or(0.0, |l| l.area())
            + chip.mc.as_ref().map_or(0.0, |m| m.area())
            + chip.io.area
            + chip.noc.area();
        assert!(
            (tile_area - expected).abs() < expected * 0.01,
            "tiles {tile_area:e} vs components {expected:e}"
        );
    }

    #[test]
    fn all_cores_and_l2s_are_placed() {
        let cfg = ProcessorConfig::niagara();
        let (_, plan) = plan_for(&cfg);
        for i in 0..cfg.num_cores {
            assert!(plan.tile(&format!("core{i}")).is_some(), "core{i} missing");
        }
        for k in 0..cfg.num_l2s {
            assert!(plan.tile(&format!("l2-{k}")).is_some(), "l2-{k} missing");
        }
    }

    #[test]
    fn core_to_l2_distance_is_intra_cluster_scale() {
        let (_, plan) = plan_for(&ProcessorConfig::niagara());
        let d = plan.average_core_l2_distance();
        assert!(d > 0.0);
        // Must be far below the die edge (cores sit next to their L2).
        assert!(d < plan.width, "distance {d} vs width {}", plan.width);
    }

    #[test]
    fn ascii_render_shows_every_region() {
        let (_, plan) = plan_for(&ProcessorConfig::tulsa());
        let pic = plan.render(48, 20);
        assert!(pic.contains('C'), "cores missing:\n{pic}");
        assert!(pic.contains('L'), "caches missing:\n{pic}");
        assert!(pic.contains('I'), "io missing:\n{pic}");
        assert_eq!(pic.lines().count(), 20);
    }
}
