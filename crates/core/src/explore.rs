//! Design-space exploration: feasibility filtering, Pareto fronts, and
//! per-metric winners over a set of candidate configurations.
//!
//! This is the workflow the McPAT paper's case study performs by hand —
//! build many chips, evaluate each under the metrics, and compare —
//! packaged as a reusable utility. Performance evaluation is injected as
//! a closure so the explorer does not depend on any particular
//! performance simulator.

use crate::config::ProcessorConfig;
use crate::error::McpatError;
use crate::metrics::{best_index, Metric, MetricSet};
use crate::processor::Processor;

/// Physical budgets a candidate must respect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budgets {
    /// Maximum die area, m² (`f64::INFINITY` to disable).
    pub max_area: f64,
    /// Maximum peak power, W (`f64::INFINITY` to disable).
    pub max_peak_power: f64,
}

impl Default for Budgets {
    fn default() -> Budgets {
        Budgets {
            max_area: f64::INFINITY,
            max_peak_power: f64::INFINITY,
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Configuration name.
    pub name: String,
    /// Die area, m².
    pub area: f64,
    /// Peak power, W.
    pub peak_power: f64,
    /// The (energy, delay, area) triple from the injected evaluator.
    pub metrics: MetricSet,
}

/// The exploration result.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Candidates inside the budgets, in input order.
    pub feasible: Vec<Candidate>,
    /// Names of candidates rejected by the budgets.
    pub rejected: Vec<String>,
    /// Indices (into `feasible`) of the energy/delay/area Pareto front.
    pub pareto: Vec<usize>,
}

impl Exploration {
    /// The feasible candidate minimizing a metric.
    #[must_use]
    pub fn best(&self, metric: Metric) -> Option<&Candidate> {
        let sets: Vec<MetricSet> = self.feasible.iter().map(|c| c.metrics).collect();
        best_index(&sets, metric).and_then(|i| self.feasible.get(i))
    }

    /// True if every per-metric winner lies on the Pareto front
    /// (a consistency invariant of correct dominance filtering).
    #[must_use]
    pub fn winners_are_pareto(&self) -> bool {
        let sets: Vec<MetricSet> = self.feasible.iter().map(|c| c.metrics).collect();
        Metric::ALL
            .iter()
            .all(|&m| best_index(&sets, m).is_none_or(|i| self.pareto.contains(&i)))
    }
}

/// True if `a` dominates `b` (no worse on all axes, better on one).
fn dominates(a: &MetricSet, b: &MetricSet) -> bool {
    let le = a.energy <= b.energy && a.delay <= b.delay && a.area <= b.area;
    let lt = a.energy < b.energy || a.delay < b.delay || a.area < b.area;
    le && lt
}

/// Builds and evaluates every candidate, filters by budgets, and
/// computes the Pareto front over (energy, delay, area).
///
/// `evaluate` receives the built chip and must return the workload
/// metrics (typically from `mcpat-sim`).
///
/// # Errors
///
/// Propagates the first build failure ([`McpatError`]) in candidate
/// order, whatever order the parallel builds finish in; candidates that
/// merely exceed the budgets are reported in `rejected`, not errors.
pub fn explore<F>(
    candidates: &[ProcessorConfig],
    budgets: Budgets,
    mut evaluate: F,
) -> Result<Exploration, McpatError>
where
    F: FnMut(&Processor) -> MetricSet,
{
    // Candidate chips are independent: build them all concurrently,
    // then walk the results serially so budget filtering, the injected
    // (FnMut) evaluator, and error propagation all see input order.
    let builds =
        mcpat_par::par_map(candidates, 2, |_, cfg| Processor::build(cfg)).map_err(|e| {
            McpatError::Array(mcpat_diag::AtPath::new(
                "explore",
                mcpat_array::ArrayError::Worker {
                    name: String::from("explore"),
                    detail: e.to_string(),
                },
            ))
        })?;

    let mut feasible = Vec::new();
    let mut rejected = Vec::new();
    for (cfg, built) in candidates.iter().zip(builds) {
        let chip = built?;
        let area = chip.die_area();
        let peak = chip.peak_power().total();
        if area > budgets.max_area || peak > budgets.max_peak_power {
            rejected.push(cfg.name.clone());
            continue;
        }
        let metrics = evaluate(&chip);
        feasible.push(Candidate {
            name: cfg.name.clone(),
            area,
            peak_power: peak,
            metrics,
        });
    }

    let pareto = feasible
        .iter()
        .enumerate()
        .filter(|&(i, cand)| {
            !feasible
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(&other.metrics, &cand.metrics))
        })
        .map(|(i, _)| i)
        .collect();

    Ok(Exploration {
        feasible,
        rejected,
        pareto,
    })
}

/// Finds the highest clock (within `lo..hi` Hz) at which the chip's
/// peak power stays within `budget_w`, by bisection (12 iterations,
/// ≈0.02% resolution). Returns `None` if even `lo` violates the budget.
///
/// This is the inverse question McPAT's integrated model makes cheap:
/// instead of "what does this clock cost", "what clock does this budget
/// buy".
///
/// # Errors
///
/// Propagates [`McpatError`] from any rebuild.
pub fn max_clock_under_power_budget(
    config: &ProcessorConfig,
    budget_w: f64,
    lo_hz: f64,
    hi_hz: f64,
) -> Result<Option<f64>, McpatError> {
    let power_at = |clock: f64| -> Result<f64, McpatError> {
        let mut cfg = config.clone();
        cfg.clock_hz = clock;
        cfg.core.clock_hz = clock;
        Ok(Processor::build(&cfg)?.peak_power().total())
    };
    if power_at(lo_hz)? > budget_w {
        return Ok(None);
    }
    if power_at(hi_hz)? <= budget_w {
        return Ok(Some(hi_hz));
    }
    let (mut lo, mut hi) = (lo_hz, hi_hz);
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if power_at(mid)? <= budget_w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_mcore::config::CoreConfig;
    use mcpat_tech::TechNode;

    fn candidates() -> Vec<ProcessorConfig> {
        [2u32, 4, 8]
            .into_iter()
            .map(|n| {
                ProcessorConfig::manycore(
                    &format!("m{n}"),
                    TechNode::N32,
                    CoreConfig::generic_inorder(),
                    n,
                    n.min(2),
                    1024 * 1024,
                )
            })
            .collect()
    }

    fn fake_eval(chip: &Processor) -> MetricSet {
        // Deterministic pseudo-workload: delay inversely proportional to
        // core count, power proportional.
        let n = f64::from(chip.config.num_cores);
        MetricSet::from_power(10.0 * n, 1.0 / n, chip.die_area())
    }

    #[test]
    fn budgets_reject_big_chips() {
        let cands = candidates();
        let tight = Budgets {
            max_area: 40e-6, // 40 mm²
            max_peak_power: f64::INFINITY,
        };
        let ex = explore(&cands, tight, fake_eval).unwrap();
        assert!(!ex.rejected.is_empty());
        assert!(ex.feasible.len() < cands.len());
    }

    #[test]
    fn pareto_front_is_nonempty_and_contains_winners() {
        let cands = candidates();
        let ex = explore(&cands, Budgets::default(), fake_eval).unwrap();
        assert!(!ex.pareto.is_empty());
        assert!(ex.winners_are_pareto());
    }

    #[test]
    fn dominated_points_are_excluded() {
        let a = MetricSet {
            energy: 1.0,
            delay: 1.0,
            area: 1.0,
        };
        let b = MetricSet {
            energy: 2.0,
            delay: 2.0,
            area: 2.0,
        };
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &a));
    }

    #[test]
    fn clock_bisection_respects_the_budget() {
        let cfg = ProcessorConfig::manycore(
            "clk",
            TechNode::N32,
            CoreConfig::generic_inorder(),
            4,
            2,
            1024 * 1024,
        );
        let budget = 25.0;
        let clock = max_clock_under_power_budget(&cfg, budget, 0.5e9, 6.0e9)
            .unwrap()
            .expect("a feasible clock exists");
        let mut at = cfg.clone();
        at.clock_hz = clock;
        at.core.clock_hz = clock;
        let p = Processor::build(&at).unwrap().peak_power().total();
        assert!(p <= budget * 1.001, "power {p} at {clock:e} Hz");
        // And the budget is actually *used*: 10% more clock violates it.
        let mut over = cfg.clone();
        over.clock_hz = clock * 1.1;
        over.core.clock_hz = clock * 1.1;
        let p_over = Processor::build(&over).unwrap().peak_power().total();
        assert!(p_over > budget, "budget not saturated: {p_over}");
    }

    #[test]
    fn impossible_budget_returns_none() {
        let cfg = ProcessorConfig::manycore(
            "clk",
            TechNode::N32,
            CoreConfig::generic_inorder(),
            4,
            2,
            1024 * 1024,
        );
        assert_eq!(
            max_clock_under_power_budget(&cfg, 0.1, 0.5e9, 6.0e9).unwrap(),
            None
        );
    }

    #[test]
    fn best_metric_lookup_works() {
        let cands = candidates();
        let ex = explore(&cands, Budgets::default(), fake_eval).unwrap();
        // Delay-optimal = the biggest chip; energy-optimal = the smallest.
        assert_eq!(ex.best(Metric::Delay).unwrap().name, "m8");
        assert_eq!(ex.best(Metric::Energy).unwrap().name, "m2");
    }
}
