//! Design-space exploration: feasibility filtering, Pareto fronts, and
//! per-metric winners over a set of candidate configurations.
//!
//! This is the workflow the McPAT paper's case study performs by hand —
//! build many chips, evaluate each under the metrics, and compare —
//! packaged as a reusable utility. Performance evaluation is injected as
//! a closure so the explorer does not depend on any particular
//! performance simulator.

use crate::config::ProcessorConfig;
use crate::error::McpatError;
use crate::metrics::{best_index_of, Metric, MetricSet};
use crate::processor::Processor;

// The allocation-count probe now lives in `mcpat-obs` (allocations are
// billed to scoped collectors, not differenced globally); the
// registration entry point stays re-exported here for compatibility.
pub use mcpat_obs::register_alloc_probe;

/// Physical budgets a candidate must respect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budgets {
    /// Maximum die area, m² (`f64::INFINITY` to disable).
    pub max_area: f64,
    /// Maximum peak power, W (`f64::INFINITY` to disable).
    pub max_peak_power: f64,
}

impl Default for Budgets {
    fn default() -> Budgets {
        Budgets {
            max_area: f64::INFINITY,
            max_peak_power: f64::INFINITY,
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Configuration name.
    pub name: String,
    /// Die area, m².
    pub area: f64,
    /// Peak power, W.
    pub peak_power: f64,
    /// The (energy, delay, area) triple from the injected evaluator.
    pub metrics: MetricSet,
}

/// The exploration result.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Candidates inside the budgets, in input order.
    pub feasible: Vec<Candidate>,
    /// Names of candidates rejected by the budgets.
    pub rejected: Vec<String>,
    /// Indices (into `feasible`) of the energy/delay/area Pareto front.
    pub pareto: Vec<usize>,
}

impl Exploration {
    /// The feasible candidate minimizing a metric.
    ///
    /// **Scaling note (soft-deprecated for large sweeps):** this scans
    /// the fully materialized `feasible` Vec, so it costs O(candidates)
    /// memory held for the whole exploration. For the 10^5+-candidate
    /// sweeps the paper's case study implies, use the streaming engine
    /// instead — [`crate::dse::dse`] keeps memory at
    /// O(frontier + chunk) and [`crate::frontier::ParetoFrontier::best`]
    /// answers the same question from tracked winners without a scan.
    #[must_use]
    pub fn best(&self, metric: Metric) -> Option<&Candidate> {
        best_index_of(self.feasible.iter().map(|c| &c.metrics), metric)
            .and_then(|i| self.feasible.get(i))
    }

    /// True if every per-metric winner lies on the Pareto front
    /// (a consistency invariant of correct dominance filtering).
    ///
    /// **Scaling note (soft-deprecated for large sweeps):** like
    /// [`Exploration::best`] this assumes the materialized `feasible`
    /// Vec; the streaming analog is
    /// [`crate::frontier::ParetoFrontier::winners_are_pareto`].
    #[must_use]
    pub fn winners_are_pareto(&self) -> bool {
        Metric::ALL.iter().all(|&m| {
            best_index_of(self.feasible.iter().map(|c| &c.metrics), m)
                .is_none_or(|i| self.pareto.contains(&i))
        })
    }
}

/// True if `a` dominates `b` (no worse on all axes, better on one).
fn dominates(a: &MetricSet, b: &MetricSet) -> bool {
    let le = a.energy <= b.energy && a.delay <= b.delay && a.area <= b.area;
    let lt = a.energy < b.energy || a.delay < b.delay || a.area < b.area;
    le && lt
}

/// Indices (into `feasible`) of the non-dominated points.
fn pareto_front(feasible: &[Candidate]) -> Vec<usize> {
    feasible
        .iter()
        .enumerate()
        .filter(|&(i, cand)| {
            !feasible
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(&other.metrics, &cand.metrics))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Builds and evaluates every candidate, filters by budgets, and
/// computes the Pareto front over (energy, delay, area).
///
/// `evaluate` receives the built chip and must return the workload
/// metrics (typically from `mcpat-sim`).
///
/// # Errors
///
/// Propagates the first build failure ([`McpatError`]) in candidate
/// order, whatever order the parallel builds finish in; candidates that
/// merely exceed the budgets are reported in `rejected`, not errors.
pub fn explore<F>(
    candidates: &[ProcessorConfig],
    budgets: Budgets,
    mut evaluate: F,
) -> Result<Exploration, McpatError>
where
    F: FnMut(&Processor) -> MetricSet,
{
    let _span = mcpat_obs::span("explore");
    // Candidate chips are independent: build them all concurrently,
    // then walk the results serially so budget filtering, the injected
    // (FnMut) evaluator, and error propagation all see input order.
    let builds = mcpat_par::par_map(candidates, 2, |_, cfg| {
        // One budget checkpoint per candidate, before its build starts.
        crate::processor::checkpoint("explore")?;
        let r = Processor::build(cfg);
        if r.is_ok() {
            mcpat_guard::note_candidate();
        }
        r
    })
    .map_err(|e| {
        McpatError::Array(mcpat_diag::AtPath::new(
            "explore",
            mcpat_array::ArrayError::Worker {
                name: String::from("explore"),
                detail: e.to_string(),
            },
        ))
    })?;

    let mut feasible = Vec::new();
    let mut rejected = Vec::new();
    for built in builds {
        // The built chip echoes its config, so its name can be moved
        // out instead of cloned from the input slice.
        let chip = built?;
        let area = chip.die_area();
        let peak = chip.peak_power().total();
        if area > budgets.max_area || peak > budgets.max_peak_power {
            rejected.push(chip.config.name);
            continue;
        }
        let metrics = evaluate(&chip);
        feasible.push(Candidate {
            name: chip.config.name,
            area,
            peak_power: peak,
            metrics,
        });
    }

    let pareto = pareto_front(&feasible);
    Ok(Exploration {
        feasible,
        rejected,
        pareto,
    })
}

/// How a [`explore_batch`] call performed: where its builds went and
/// what the caches and the thread pool did on its behalf.
///
/// The counters come from a scoped [`mcpat_obs::Collector`] entered for
/// the duration of the call, so each call reports exactly its own
/// traffic even when several run concurrently on separate threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExplorePerf {
    /// Worker threads the fan-out could use.
    pub threads: usize,
    /// Candidates submitted.
    pub candidates: usize,
    /// Distinct configurations actually built.
    pub unique_builds: usize,
    /// Candidates served by another candidate's build (identical
    /// configuration up to the name).
    pub deduped: usize,
    /// Array solves answered by the content-addressed cache.
    pub solve_cache_hits: u64,
    /// Array solves that ran the optimizer.
    pub solve_cache_misses: u64,
    /// Tasks stolen between pool workers while building.
    pub pool_steals: u64,
    /// Fan-out elements executed inline (serial cutoffs and nested
    /// calls that never reached the pool).
    pub pool_inline: u64,
    /// Heap allocations over the call, if a probe is registered (see
    /// [`register_alloc_probe`]); 0 otherwise.
    pub allocs: u64,
}

/// True if two configurations describe the same chip, ignoring the
/// report name.
fn eq_ignoring_name(a: &ProcessorConfig, b: &ProcessorConfig) -> bool {
    // Exhaustive destructure: adding a field to `ProcessorConfig`
    // breaks this compile, forcing the dedup key to be revisited — a
    // silently stale key would merge genuinely different candidates.
    let ProcessorConfig {
        name,
        node,
        device_type,
        temperature_k,
        projection,
        long_channel_leakage,
        clock_hz,
        num_cores,
        core,
        l2,
        num_l2s,
        l3,
        fabric,
        mc,
        io_bandwidth,
        num_shared_fpus,
        power_gating,
        vdd_scale,
    } = a;
    // An empty name changes validation warnings, so emptiness (though
    // not the name itself) must match for the builds to be identical.
    name.is_empty() == b.name.is_empty()
        && *node == b.node
        && *device_type == b.device_type
        && *temperature_k == b.temperature_k
        && *projection == b.projection
        && *long_channel_leakage == b.long_channel_leakage
        && *clock_hz == b.clock_hz
        && *num_cores == b.num_cores
        && *core == b.core
        && *l2 == b.l2
        && *num_l2s == b.num_l2s
        && *l3 == b.l3
        && *fabric == b.fabric
        && *mc == b.mc
        && *io_bandwidth == b.io_bandwidth
        && *num_shared_fpus == b.num_shared_fpus
        && *power_gating == b.power_gating
        && *vdd_scale == b.vdd_scale
}

/// Groups candidates by configuration identity (up to the name):
/// writes each candidate's representative slot into `assignment` and
/// returns the representatives' candidate indices in first-occurrence
/// order. Shared by [`explore_batch`] and the streaming DSE engine
/// ([`crate::dse`]) so both dedupe with the same key.
pub(crate) fn assign_duplicates(
    candidates: &[ProcessorConfig],
    assignment: &mut [usize],
) -> Vec<usize> {
    let mut reps: Vec<usize> = Vec::new();
    for (i, (cfg, slot_out)) in candidates.iter().zip(assignment.iter_mut()).enumerate() {
        *slot_out = reps
            .iter()
            .position(|&r| {
                candidates
                    .get(r)
                    .is_some_and(|rep| eq_ignoring_name(rep, cfg))
            })
            .unwrap_or_else(|| {
                reps.push(i);
                reps.len() - 1
            });
    }
    reps
}

/// [`explore`], batched: identical candidate configurations (up to the
/// name) are built once and shared, pre-warming nothing and skipping
/// the redundant builds outright instead of rediscovering them solve by
/// solve in the array cache.
///
/// Results stream in input order and are field-for-field identical to
/// calling [`explore`] on the same slice: budget filtering, the
/// injected evaluator, and error propagation all observe the same
/// chips in the same order (duplicates are re-labeled with their own
/// candidate's name before the evaluator sees them).
///
/// The second return value reports how the batch performed; see
/// [`ExplorePerf`].
///
/// # Errors
///
/// Propagates the first build failure in candidate order, exactly like
/// [`explore`].
pub fn explore_batch<F>(
    candidates: &[ProcessorConfig],
    budgets: Budgets,
    mut evaluate: F,
) -> Result<(Exploration, ExplorePerf), McpatError>
where
    F: FnMut(&Processor) -> MetricSet,
{
    // Scope the whole batch: builds fan out to pool workers, but every
    // task carries this scope's chain, so the counters below are this
    // call's own traffic — never a concurrent caller's.
    let collector = mcpat_obs::Collector::new();
    let result = {
        let _scope = collector.enter();
        let _span = mcpat_obs::span("explore_batch");
        explore_batch_scoped(candidates, budgets, &mut evaluate)
    };
    let snap = collector.snapshot();
    let (exploration, unique_builds) = result?;
    let perf = ExplorePerf {
        threads: mcpat_par::threads(),
        candidates: candidates.len(),
        unique_builds,
        deduped: candidates.len() - unique_builds,
        solve_cache_hits: snap.solve_cache_hits,
        solve_cache_misses: snap.solve_cache_misses,
        pool_steals: snap.pool_steals,
        pool_inline: snap.pool_inline,
        allocs: snap.allocs,
    };
    Ok((exploration, perf))
}

/// The body of [`explore_batch`], run inside its collector scope.
/// Returns the exploration plus the number of unique builds.
fn explore_batch_scoped<F>(
    candidates: &[ProcessorConfig],
    budgets: Budgets,
    evaluate: &mut F,
) -> Result<(Exploration, usize), McpatError>
where
    F: FnMut(&Processor) -> MetricSet,
{
    // Assign every candidate to the first candidate with the same
    // configuration; representatives build, the rest share. The
    // assignment table is batch-scoped scratch: it lives in the
    // thread-local arena and its memory is reused by the per-candidate
    // build scopes of later batches.
    mcpat_arena::scratch(|scratch| {
        let assignment = scratch.alloc_fill(candidates.len(), 0usize);
        let unique: Vec<&ProcessorConfig> = assign_duplicates(candidates, assignment)
            .into_iter()
            .filter_map(|i| candidates.get(i))
            .collect();

        let builds = mcpat_par::par_map(&unique, 2, |_, cfg| {
            // One budget checkpoint per representative candidate.
            crate::processor::checkpoint("explore")?;
            let r = Processor::build(cfg);
            if r.is_ok() {
                mcpat_guard::note_candidate();
            }
            r
        })
        .map_err(|e| {
            McpatError::Array(mcpat_diag::AtPath::new(
                "explore",
                mcpat_array::ArrayError::Worker {
                    name: String::from("explore"),
                    detail: e.to_string(),
                },
            ))
        })?;
        // Error priority matches `explore`: representatives are in
        // first-occurrence order, and duplicates of a failing config
        // fail identically, so the first failing representative is the
        // first failing candidate.
        let mut chips = Vec::with_capacity(builds.len());
        for built in builds {
            chips.push(built?);
        }

        let mut feasible = Vec::new();
        let mut rejected = Vec::new();
        for (cfg, &slot) in candidates.iter().zip(assignment.iter()) {
            // Every slot indexes a built representative by construction.
            let Some(rep) = chips.get(slot) else { continue };
            // Duplicates get a re-labeled copy so the evaluator and the
            // result rows observe exactly the chip `explore` would hand
            // them — same values, this candidate's name.
            let relabeled;
            let chip: &Processor = if rep.config.name == cfg.name {
                rep
            } else {
                let mut c = rep.clone();
                c.config.name.clone_from(&cfg.name);
                relabeled = c;
                &relabeled
            };
            let area = chip.die_area();
            let peak = chip.peak_power().total();
            if area > budgets.max_area || peak > budgets.max_peak_power {
                rejected.push(cfg.name.clone());
                continue;
            }
            let metrics = evaluate(chip);
            feasible.push(Candidate {
                name: cfg.name.clone(),
                area,
                peak_power: peak,
                metrics,
            });
        }

        let pareto = pareto_front(&feasible);
        Ok((
            Exploration {
                feasible,
                rejected,
                pareto,
            },
            unique.len(),
        ))
    })
}

/// Probe accounting of [`max_clock_under_power_budget_with_perf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BisectionPerf {
    /// Full `Processor::build` runs: the anchoring base build, plus one
    /// per probe when `core.enforce_timing` forces the fallback.
    pub full_builds: u64,
    /// Probes served by the incremental clock-only rebuild
    /// ([`Processor::rebuild_with_clock`]).
    pub incremental_probes: u64,
}

/// Finds the highest clock (within `lo..hi` Hz) at which the chip's
/// peak power stays within `budget_w`, by bisection (12 iterations,
/// ≈0.02% resolution). Returns `None` if even `lo` violates the budget.
///
/// This is the inverse question McPAT's integrated model makes cheap:
/// instead of "what does this clock cost", "what clock does this budget
/// buy". One full build anchors the clock-invariant array geometry;
/// every probe — `lo`, `hi`, and all midpoints — then re-evaluates
/// through [`Processor::rebuild_with_clock`] instead of re-solving the
/// chip.
///
/// # Errors
///
/// Propagates [`McpatError`] from the base build or any probe.
pub fn max_clock_under_power_budget(
    config: &ProcessorConfig,
    budget_w: f64,
    lo_hz: f64,
    hi_hz: f64,
) -> Result<Option<f64>, McpatError> {
    max_clock_under_power_budget_with_perf(config, budget_w, lo_hz, hi_hz).map(|(r, _)| r)
}

/// [`max_clock_under_power_budget`] with probe accounting; see
/// [`BisectionPerf`].
///
/// # Errors
///
/// Propagates [`McpatError`] from the base build or any probe.
pub fn max_clock_under_power_budget_with_perf(
    config: &ProcessorConfig,
    budget_w: f64,
    lo_hz: f64,
    hi_hz: f64,
) -> Result<(Option<f64>, BisectionPerf), McpatError> {
    let _span = mcpat_obs::span("clock_bisection");
    let base = Processor::build(config)?;
    let mut perf = BisectionPerf {
        full_builds: 1,
        incremental_probes: 0,
    };
    let mut power_at = |clock: f64| -> Result<f64, McpatError> {
        // One budget checkpoint per bisection probe.
        crate::processor::checkpoint("clock_bisection")?;
        if config.core.enforce_timing {
            perf.full_builds += 1;
        } else {
            perf.incremental_probes += 1;
        }
        Ok(base.rebuild_with_clock(clock)?.peak_power().total())
    };
    if power_at(lo_hz)? > budget_w {
        return Ok((None, perf));
    }
    if power_at(hi_hz)? <= budget_w {
        return Ok((Some(hi_hz), perf));
    }
    let (mut lo, mut hi) = (lo_hz, hi_hz);
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if power_at(mid)? <= budget_w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok((Some(lo), perf))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use mcpat_mcore::config::CoreConfig;
    use mcpat_tech::TechNode;

    fn candidates() -> Vec<ProcessorConfig> {
        [2u32, 4, 8]
            .into_iter()
            .map(|n| {
                ProcessorConfig::manycore(
                    &format!("m{n}"),
                    TechNode::N32,
                    CoreConfig::generic_inorder(),
                    n,
                    n.min(2),
                    1024 * 1024,
                )
            })
            .collect()
    }

    fn fake_eval(chip: &Processor) -> MetricSet {
        // Deterministic pseudo-workload: delay inversely proportional to
        // core count, power proportional.
        let n = f64::from(chip.config.num_cores);
        MetricSet::from_power(10.0 * n, 1.0 / n, chip.die_area())
    }

    #[test]
    fn budgets_reject_big_chips() {
        let cands = candidates();
        let tight = Budgets {
            max_area: 40e-6, // 40 mm²
            max_peak_power: f64::INFINITY,
        };
        let ex = explore(&cands, tight, fake_eval).unwrap();
        assert!(!ex.rejected.is_empty());
        assert!(ex.feasible.len() < cands.len());
    }

    #[test]
    fn pareto_front_is_nonempty_and_contains_winners() {
        let cands = candidates();
        let ex = explore(&cands, Budgets::default(), fake_eval).unwrap();
        assert!(!ex.pareto.is_empty());
        assert!(ex.winners_are_pareto());
    }

    #[test]
    fn dominated_points_are_excluded() {
        let a = MetricSet {
            energy: 1.0,
            delay: 1.0,
            area: 1.0,
        };
        let b = MetricSet {
            energy: 2.0,
            delay: 2.0,
            area: 2.0,
        };
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &a));
    }

    #[test]
    fn clock_bisection_respects_the_budget() {
        let cfg = ProcessorConfig::manycore(
            "clk",
            TechNode::N32,
            CoreConfig::generic_inorder(),
            4,
            2,
            1024 * 1024,
        );
        let budget = 25.0;
        let clock = max_clock_under_power_budget(&cfg, budget, 0.5e9, 6.0e9)
            .unwrap()
            .expect("a feasible clock exists");
        let mut at = cfg.clone();
        at.clock_hz = clock;
        at.core.clock_hz = clock;
        let p = Processor::build(&at).unwrap().peak_power().total();
        assert!(p <= budget * 1.001, "power {p} at {clock:e} Hz");
        // And the budget is actually *used*: 10% more clock violates it.
        let mut over = cfg.clone();
        over.clock_hz = clock * 1.1;
        over.core.clock_hz = clock * 1.1;
        let p_over = Processor::build(&over).unwrap().peak_power().total();
        assert!(p_over > budget, "budget not saturated: {p_over}");
    }

    #[test]
    fn explore_batch_matches_explore_field_for_field() {
        let mut cands = candidates();
        let mut dup = cands[1].clone();
        dup.name = String::from("m4-copy");
        cands.push(dup);
        let serial = explore(&cands, Budgets::default(), fake_eval).unwrap();
        let (batched, perf) = explore_batch(&cands, Budgets::default(), fake_eval).unwrap();
        assert_eq!(perf.candidates, 4);
        assert_eq!(perf.unique_builds, 3);
        assert_eq!(perf.deduped, 1);
        assert_eq!(serial.rejected, batched.rejected);
        assert_eq!(serial.pareto, batched.pareto);
        assert_eq!(serial.feasible.len(), batched.feasible.len());
        for (a, b) in serial.feasible.iter().zip(&batched.feasible) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.area.to_bits(), b.area.to_bits());
            assert_eq!(a.peak_power.to_bits(), b.peak_power.to_bits());
            assert_eq!(a.metrics.energy.to_bits(), b.metrics.energy.to_bits());
            assert_eq!(a.metrics.delay.to_bits(), b.metrics.delay.to_bits());
            assert_eq!(a.metrics.area.to_bits(), b.metrics.area.to_bits());
        }
    }

    #[test]
    fn deduped_candidates_are_relabeled_for_the_evaluator() {
        let mut cands = candidates();
        let mut dup = cands[0].clone();
        dup.name = String::from("m2-copy");
        cands.push(dup);
        let mut seen = Vec::new();
        let (ex, _) = explore_batch(&cands, Budgets::default(), |chip| {
            seen.push(chip.config.name.clone());
            fake_eval(chip)
        })
        .unwrap();
        assert_eq!(seen, ["m2", "m4", "m8", "m2-copy"]);
        assert_eq!(ex.feasible.len(), 4);
    }

    #[test]
    fn bisection_probes_are_incremental() {
        let cfg = ProcessorConfig::manycore(
            "clk",
            TechNode::N32,
            CoreConfig::generic_inorder(),
            4,
            2,
            1024 * 1024,
        );
        let (clock, perf) =
            max_clock_under_power_budget_with_perf(&cfg, 25.0, 0.5e9, 6.0e9).unwrap();
        assert!(clock.is_some());
        // One anchoring build; lo, hi, and all 12 midpoints re-evaluate
        // incrementally.
        assert_eq!(perf.full_builds, 1);
        assert_eq!(perf.incremental_probes, 14);
    }

    #[test]
    fn impossible_budget_returns_none() {
        let cfg = ProcessorConfig::manycore(
            "clk",
            TechNode::N32,
            CoreConfig::generic_inorder(),
            4,
            2,
            1024 * 1024,
        );
        assert_eq!(
            max_clock_under_power_budget(&cfg, 0.1, 0.5e9, 6.0e9).unwrap(),
            None
        );
    }

    #[test]
    fn best_metric_lookup_works() {
        let cands = candidates();
        let ex = explore(&cands, Budgets::default(), fake_eval).unwrap();
        // Delay-optimal = the biggest chip; energy-optimal = the smallest.
        assert_eq!(ex.best(Metric::Delay).unwrap().name, "m8");
        assert_eq!(ex.best(Metric::Energy).unwrap().name, "m2");
    }
}
