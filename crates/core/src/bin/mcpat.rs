//! The `mcpat` command-line front-end — the analog of the original
//! McPAT executable, with JSON instead of XML as the interface format.
//!
//! ```text
//! mcpat --preset niagara                 # model a built-in preset
//! mcpat --preset niagara --floorplan     # + ASCII floorplan sketch
//! mcpat --preset niagara --emit-config   # dump its JSON config template
//! mcpat --preset niagara --validate      # diagnostics only, no build
//! mcpat chip.json                        # model a JSON configuration
//! mcpat chip.json --stats stats.json     # + runtime power from stats
//! mcpat --preset tulsa --trace t.json    # + JSON build trace (spans)
//! ```
//!
//! Exit codes: 0 success, 2 usage error, 3 invalid configuration,
//! 4 infeasible model (an array could not be solved), 5 budget
//! exceeded (`--deadline-ms` elapsed or the build was cancelled).

use mcpat::{ChipStats, Processor, ProcessorConfig};
use std::process::ExitCode;
use std::time::Duration;

/// A classified CLI failure; the variant picks the exit code.
enum CliError {
    /// Bad invocation: unknown flag, missing operand, no config. Exit 2.
    Usage(String),
    /// The configuration is unreadable, malformed, or fails
    /// validation. Exit 3.
    InvalidConfig(String),
    /// The configuration is well-formed but no feasible model exists
    /// (the array solver exhausted its relaxation ladder). Exit 4.
    Infeasible(String),
    /// The build tripped a resource budget: `--deadline-ms` elapsed or
    /// a `--cancel-on-signal` signal arrived. Exit 5.
    Budget(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Usage(_) => ExitCode::from(2),
            CliError::InvalidConfig(_) => ExitCode::from(3),
            CliError::Infeasible(_) => ExitCode::from(4),
            CliError::Budget(_) => ExitCode::from(5),
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::InvalidConfig(m)
            | CliError::Infeasible(m)
            | CliError::Budget(m) => m,
        }
    }
}

/// Minimal SIGINT/SIGTERM hook for `--cancel-on-signal`: instead of the
/// default process kill, a signal flips every live budget's cancel flag
/// so the in-flight build unwinds through its checkpoints and exits
/// with the typed budget error (exit 5) and no partial report.
#[cfg(unix)]
mod sig {
    /// C `sighandler_t` shape (`void (*)(int)`).
    type Handler = extern "C" fn(i32);
    extern "C" {
        // From libc, which every `*-linux-gnu`/`*-apple-*` binary
        // already links; declared directly to avoid a dependency.
        fn signal(signum: i32, handler: Handler) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" fn on_signal(_sig: i32) {
        // A single atomic fetch-add: async-signal-safe.
        mcpat::guard::cancel_all();
    }
    pub fn install() {
        // SAFETY: `signal` with a non-returning-into-Rust, async-signal-
        // safe handler function pointer is the documented C contract.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

fn preset(name: &str) -> Option<ProcessorConfig> {
    match name {
        "niagara" => Some(ProcessorConfig::niagara()),
        "niagara2" => Some(ProcessorConfig::niagara2()),
        "alpha21364" => Some(ProcessorConfig::alpha21364()),
        "tulsa" | "xeon-tulsa" => Some(ProcessorConfig::tulsa()),
        _ => None,
    }
}

fn usage() -> &'static str {
    "usage: mcpat [--preset <niagara|niagara2|alpha21364|tulsa>] [options]\n\
     \x20      mcpat <config.json> [options]\n\
     \n\
     options:\n\
     \x20 --stats <file>   evaluate runtime power from a mcpat::ChipStats JSON file\n\
     \x20 --validate       print every validation diagnostic, do not build\n\
     \x20 --emit-config    dump the configuration as a JSON template and exit\n\
     \x20 --floorplan      append an ASCII floorplan sketch to the report\n\
     \x20 --trace <file>   enable build tracing and write the span trace as JSON\n\
     \x20 --deadline-ms <n> abort the build if it runs longer than n milliseconds\n\
     \x20 --cancel-on-signal  SIGINT/SIGTERM cancels the build cooperatively\n\
     \n\
     Models the configured processor and prints the power/area/timing\n\
     report. Exit codes: 0 success, 2 usage error, 3 invalid\n\
     configuration, 4 infeasible model, 5 budget exceeded (deadline\n\
     elapsed or cancelled)."
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let first = args.first().map(String::as_str);
    if matches!(first, None | Some("--help" | "-h")) {
        println!("{}", usage());
        return Ok(());
    }

    let mut emit_config = false;
    let mut validate_only = false;
    let mut show_floorplan = false;
    let mut trace_path: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut cancel_on_signal = false;
    let mut config: Option<ProcessorConfig> = None;
    let mut stats: Option<ChipStats> = None;
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--preset" => {
                let name = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--preset needs a name".into()))?;
                config = Some(
                    preset(name)
                        .ok_or_else(|| CliError::Usage(format!("unknown preset `{name}`")))?,
                );
                i += 2;
            }
            "--stats" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--stats needs a file path".into()))?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::InvalidConfig(format!("cannot read `{path}`: {e}")))?;
                stats = Some(serde_json::from_str(&text).map_err(|e| {
                    CliError::InvalidConfig(format!("`{path}` is not a valid stats file: {e}"))
                })?);
                i += 2;
            }
            "--emit-config" => {
                emit_config = true;
                i += 1;
            }
            "--validate" => {
                validate_only = true;
                i += 1;
            }
            "--floorplan" => {
                show_floorplan = true;
                i += 1;
            }
            "--trace" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--trace needs a file path".into()))?;
                trace_path = Some(path.clone());
                i += 2;
            }
            "--deadline-ms" => {
                let ms = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--deadline-ms needs a number".into()))?;
                deadline_ms = Some(ms.parse().map_err(|_| {
                    CliError::Usage(format!("--deadline-ms: `{ms}` is not a number"))
                })?);
                i += 2;
            }
            "--cancel-on-signal" => {
                cancel_on_signal = true;
                i += 1;
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "unknown flag `{flag}`\n{}",
                    usage()
                )));
            }
            path => {
                if config.is_some() {
                    return Err(CliError::Usage(format!(
                        "unexpected operand `{path}` (use --stats <file> for a stats file)\n{}",
                        usage()
                    )));
                }
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::InvalidConfig(format!("cannot read `{path}`: {e}")))?;
                config = Some(serde_json::from_str(&text).map_err(|e| {
                    CliError::InvalidConfig(format!("`{path}` is not a valid config: {e}"))
                })?);
                i += 1;
            }
        }
    }

    let config =
        config.ok_or_else(|| CliError::Usage(format!("no configuration given\n{}", usage())))?;
    if emit_config {
        let json = serde_json::to_string_pretty(&config)
            .map_err(|e| CliError::InvalidConfig(format!("serialization failed: {e}")))?;
        println!("{json}");
        return Ok(());
    }

    if validate_only {
        let diags = config.validate();
        if diags.is_empty() {
            println!("{}: configuration is valid", config.name);
            return Ok(());
        }
        println!(
            "{}: {} finding{} ({} error{}):",
            config.name,
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            diags.error_count(),
            if diags.error_count() == 1 { "" } else { "s" },
        );
        println!("{diags}");
        if diags.has_errors() {
            return Err(CliError::InvalidConfig(
                "configuration failed validation".into(),
            ));
        }
        return Ok(());
    }

    if trace_path.is_some() {
        mcpat::obs::set_tracing(true);
    }
    #[cfg(unix)]
    if cancel_on_signal {
        sig::install();
    }
    #[cfg(not(unix))]
    let _ = cancel_on_signal;
    // A budget scope is opened whenever either governance flag is set:
    // a plain `--cancel-on-signal` run gets an unbounded budget that a
    // signal can cancel.
    let budget = match deadline_ms {
        Some(ms) => Some(mcpat::guard::Budget::with_deadline(Duration::from_millis(
            ms,
        ))),
        None if cancel_on_signal => Some(mcpat::guard::Budget::unbounded()),
        None => None,
    };
    let _budget_scope = budget.as_ref().map(mcpat::guard::Budget::enter);
    let chip = Processor::build(&config).map_err(|e| {
        if e.guard_error().is_some() {
            CliError::Budget(e.to_string())
        } else {
            match e {
                mcpat::McpatError::Invalid(_) => CliError::InvalidConfig(e.to_string()),
                mcpat::McpatError::Array(_) | mcpat::McpatError::Budget(_) => {
                    CliError::Infeasible(e.to_string())
                }
            }
        }
    })?;
    if let Some(path) = &trace_path {
        let json = chip
            .trace
            .as_ref()
            .map_or_else(|| mcpat::obs::Trace::default().to_json(), |t| t.to_json());
        std::fs::write(path, json)
            .map_err(|e| CliError::InvalidConfig(format!("cannot write `{path}`: {e}")))?;
    }
    println!("{}", chip.report());
    if show_floorplan {
        println!("Floorplan:");
        println!("{}", chip.floorplan_sketch());
    }

    if let Some(stats) = stats {
        let p = chip.runtime_power(&stats);
        println!(
            "Runtime power over {:.3e} s: {:.2} W",
            stats.duration_s,
            p.total()
        );
        for item in &p.items {
            println!(
                "  {:<12} {:>7.2} W (dyn {:>6.2}, leak {:>6.2})",
                item.name,
                item.total(),
                item.dynamic,
                item.leakage.total()
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mcpat: {}", e.message());
            e.exit_code()
        }
    }
}
