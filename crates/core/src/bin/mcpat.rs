//! The `mcpat` command-line front-end — the analog of the original
//! McPAT executable, with JSON instead of XML as the interface format.
//!
//! ```text
//! mcpat --preset niagara                 # model a built-in preset
//! mcpat --preset niagara --floorplan     # + ASCII floorplan sketch
//! mcpat --preset niagara --emit-config   # dump its JSON config template
//! mcpat chip.json                        # model a JSON configuration
//! mcpat chip.json stats.json             # + runtime power from stats
//! ```

use mcpat::{ChipStats, Processor, ProcessorConfig};
use std::process::ExitCode;

fn preset(name: &str) -> Option<ProcessorConfig> {
    match name {
        "niagara" => Some(ProcessorConfig::niagara()),
        "niagara2" => Some(ProcessorConfig::niagara2()),
        "alpha21364" => Some(ProcessorConfig::alpha21364()),
        "tulsa" | "xeon-tulsa" => Some(ProcessorConfig::tulsa()),
        _ => None,
    }
}

fn usage() -> &'static str {
    "usage: mcpat [--preset <niagara|niagara2|alpha21364|tulsa>] [--emit-config]\n\
     \x20      mcpat <config.json> [stats.json]\n\
     \n\
     Models the configured processor and prints the power/area/timing\n\
     report (--floorplan adds an ASCII floorplan sketch). With a stats\n\
     file (mcpat::ChipStats as JSON), also prints runtime power for\n\
     that interval."
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{}", usage());
        return Ok(());
    }

    let mut emit_config = false;
    let mut show_floorplan = false;
    let mut config: Option<ProcessorConfig> = None;
    let mut stats: Option<ChipStats> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--preset" => {
                let name = args
                    .get(i + 1)
                    .ok_or_else(|| "--preset needs a name".to_owned())?;
                config = Some(preset(name).ok_or_else(|| format!("unknown preset `{name}`"))?);
                i += 2;
            }
            "--emit-config" => {
                emit_config = true;
                i += 1;
            }
            "--floorplan" => {
                show_floorplan = true;
                i += 1;
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{}", usage()));
            }
            path => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{path}`: {e}"))?;
                if config.is_none() {
                    config = Some(
                        serde_json::from_str(&text)
                            .map_err(|e| format!("`{path}` is not a valid config: {e}"))?,
                    );
                } else {
                    stats = Some(
                        serde_json::from_str(&text)
                            .map_err(|e| format!("`{path}` is not a valid stats file: {e}"))?,
                    );
                }
                i += 1;
            }
        }
    }

    let config = config.ok_or_else(|| format!("no configuration given\n{}", usage()))?;
    if emit_config {
        let json = serde_json::to_string_pretty(&config)
            .map_err(|e| format!("serialization failed: {e}"))?;
        println!("{json}");
        return Ok(());
    }

    let chip = Processor::build(&config).map_err(|e| e.to_string())?;
    println!("{}", chip.report());
    if show_floorplan {
        println!("Floorplan:");
        println!("{}", chip.floorplan_sketch());
    }

    if let Some(stats) = stats {
        let p = chip.runtime_power(&stats);
        println!("Runtime power over {:.3e} s: {:.2} W", stats.duration_s, p.total());
        for item in &p.items {
            println!(
                "  {:<12} {:>7.2} W (dyn {:>6.2}, leak {:>6.2})",
                item.name,
                item.total(),
                item.dynamic,
                item.leakage.total()
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mcpat: {msg}");
            ExitCode::FAILURE
        }
    }
}
