#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Property-based tests for the whole-chip assembly.

use mcpat::{
    explore, explore_batch, Budgets, ChipStats, Delta, DvfsPoint, MetricSet, Processor,
    ProcessorConfig,
};
use mcpat_mcore::config::CoreConfig;
use mcpat_tech::TechNode;
use proptest::prelude::*;

fn batch_eval(chip: &Processor) -> MetricSet {
    let n = f64::from(chip.config.num_cores.max(1));
    MetricSet::from_power(10.0 * n, 1.0 / n, chip.die_area())
}

fn any_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(TechNode::SCALING_STUDY.to_vec())
}

fn any_manycore() -> impl Strategy<Value = ProcessorConfig> {
    (
        any_node(),
        prop::sample::select(vec![1u32, 2, 4, 8, 16]),
        prop::sample::select(vec![1u32, 2, 4]),
        prop::bool::ANY,
    )
        .prop_filter_map("cluster divides cores", |(node, cores, cluster, ooo)| {
            if !cores.is_multiple_of(cluster) {
                return None;
            }
            let core = if ooo {
                CoreConfig::generic_ooo()
            } else {
                CoreConfig::generic_inorder()
            };
            Some(ProcessorConfig::manycore(
                "prop-chip",
                node,
                core,
                cores,
                cluster,
                u64::from(cluster) * 1024 * 1024,
            ))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_manycore_config_builds_sanely(cfg in any_manycore()) {
        let chip = Processor::build(&cfg).unwrap();
        let p = chip.peak_power();
        prop_assert!(p.total() > 0.0 && p.total().is_finite());
        prop_assert!(p.dynamic() > 0.0);
        prop_assert!(p.leakage().total() > 0.0);
        prop_assert!(chip.die_area_mm2() > 1.0 && chip.die_area_mm2() < 3000.0);
        // The breakdown must sum to the total.
        let sum: f64 = p.items.iter().map(|i| i.dynamic + i.leakage.total()).sum();
        prop_assert!((sum - p.total()).abs() < 1e-9 * p.total());
    }

    #[test]
    fn area_breakdown_sums_below_die_area(cfg in any_manycore()) {
        let chip = Processor::build(&cfg).unwrap();
        let components: f64 = chip.area_breakdown().iter().map(|i| i.area).sum();
        // Die area includes overheads, so it strictly exceeds the sum;
        // the pad ring adds a fixed perimeter term that dominates tiny
        // dies, hence the constant allowance.
        prop_assert!(chip.die_area() > components);
        prop_assert!(chip.die_area() < components * 2.0 + 30e-6);
    }

    #[test]
    fn runtime_power_is_bounded_by_peak_scaled(cfg in any_manycore(), busy in 0.05..1.0f64) {
        let chip = Processor::build(&cfg).unwrap();
        let mut stats = ChipStats::peak(
            1e-3,
            cfg.num_cores,
            cfg.clock_hz,
            cfg.core.issue_width,
            cfg.core.fp_issue_width,
        );
        for core in &mut stats.cores {
            core.idle_cycles = ((1.0 - busy) * core.cycles as f64) as u64;
        }
        let p = chip.runtime_power(&stats);
        let peak = chip.peak_power();
        prop_assert!(p.total() <= peak.total() * 1.05);
        prop_assert!(p.total() >= p.leakage().total() * 0.5);
    }

    #[test]
    fn dvfs_total_power_is_monotone_in_voltage(cfg in any_manycore(), v in 0.6..0.95f64) {
        let chip = Processor::build(&cfg).unwrap();
        let stats = ChipStats::peak(
            1e-3,
            cfg.num_cores,
            cfg.clock_hz,
            cfg.core.issue_width,
            cfg.core.fp_issue_width,
        );
        let low = chip.runtime_power_at(&stats, DvfsPoint::ladder(v)).unwrap();
        let high = chip.runtime_power_at(&stats, DvfsPoint::ladder(v + 0.05)).unwrap();
        prop_assert!(high.power.total() > low.power.total());
    }

    #[test]
    fn explore_batch_equals_per_candidate_explore(
        a in any_manycore(),
        b in any_manycore(),
        take_second in prop::bool::ANY,
        dup_first in prop::bool::ANY,
    ) {
        let mut cands: Vec<ProcessorConfig> = vec![a];
        if take_second {
            cands.push(b);
        }
        for (i, c) in cands.iter_mut().enumerate() {
            c.name = format!("cand{i}");
        }
        if dup_first {
            if let Some(mut d) = cands.first().cloned() {
                d.name = String::from("cand-dup");
                cands.push(d);
            }
        }
        let serial = explore(&cands, Budgets::default(), batch_eval).unwrap();
        let (batched, perf) = explore_batch(&cands, Budgets::default(), batch_eval).unwrap();
        prop_assert_eq!(perf.candidates, cands.len());
        prop_assert!(perf.unique_builds + perf.deduped == cands.len());
        if dup_first {
            prop_assert!(perf.deduped >= 1);
        }
        prop_assert_eq!(&serial.rejected, &batched.rejected);
        prop_assert_eq!(&serial.pareto, &batched.pareto);
        prop_assert_eq!(serial.feasible.len(), batched.feasible.len());
        for (a, b) in serial.feasible.iter().zip(&batched.feasible) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.area.to_bits(), b.area.to_bits());
            prop_assert_eq!(a.peak_power.to_bits(), b.peak_power.to_bits());
            prop_assert_eq!(a.metrics.energy.to_bits(), b.metrics.energy.to_bits());
            prop_assert_eq!(a.metrics.delay.to_bits(), b.metrics.delay.to_bits());
            prop_assert_eq!(a.metrics.area.to_bits(), b.metrics.area.to_bits());
        }
    }

    #[test]
    fn rebuild_with_clock_equals_full_build(cfg in any_manycore(), scale in 0.5..2.0f64) {
        let base = Processor::build(&cfg).unwrap();
        let clock = cfg.clock_hz * scale;
        let fast = base.rebuild_with_clock(clock).unwrap();
        let mut patched = cfg.clone();
        patched.clock_hz = clock;
        patched.core.clock_hz = clock;
        let full = Processor::build(&patched).unwrap();
        prop_assert_eq!(
            fast.peak_power().total().to_bits(),
            full.peak_power().total().to_bits()
        );
        prop_assert_eq!(fast.die_area().to_bits(), full.die_area().to_bits());
        prop_assert_eq!(fast.warnings.len(), full.warnings.len());
    }

    /// Mirrors `rebuild_with_clock_equals_full_build` for the other
    /// delta axes: a `rebuild_with` result must be indistinguishable —
    /// report bits, warning set and all — from a from-scratch build of
    /// the delta-patched configuration, on every shipped preset.
    #[test]
    fn rebuild_with_delta_equals_full_build(
        preset in prop::sample::select(vec![
            ProcessorConfig::niagara(),
            ProcessorConfig::niagara2(),
            ProcessorConfig::alpha21364(),
            ProcessorConfig::tulsa(),
        ]),
        which in 0..3usize,
        vdd_scale in 0.7..1.2f64,
        kelvin in 320.0..380.0f64,
        l2_shift in 1u32..4,
    ) {
        let delta = match which {
            0 => Delta::Vdd(vdd_scale),
            1 => Delta::Temperature(kelvin),
            // Scale the preset's own L2 capacity by a power of two so
            // non-power-of-two way counts (niagara is 12-way) keep a
            // whole number of sets.
            _ => Delta::CacheSize(
                preset.l2.as_ref().map_or(1 << 20, |l2| l2.cache.capacity) << l2_shift,
            ),
        };
        let base = Processor::build(&preset).unwrap();
        let fast = base.rebuild_with(delta).unwrap();
        let full = Processor::build(&delta.apply(&preset)).unwrap();
        prop_assert_eq!(
            fast.peak_power().total().to_bits(),
            full.peak_power().total().to_bits()
        );
        prop_assert_eq!(fast.die_area().to_bits(), full.die_area().to_bits());
        prop_assert_eq!(fast.total_leakage().total().to_bits(), full.total_leakage().total().to_bits());
        // Field-for-field: the rendered reports carry every modeled
        // quantity, so byte equality is the strongest practical check.
        // The `Build:` line reports how the chip was produced (solve
        // cache hits, threads), not what was modeled, so it is the one
        // line allowed to differ between a delta rebuild and a full
        // build.
        let modeled = |report: String| -> String {
            report
                .lines()
                .filter(|l| !l.trim_start().starts_with("Build:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        prop_assert_eq!(modeled(fast.report()), modeled(full.report()));
        prop_assert_eq!(fast.warnings.len(), full.warnings.len());
        for (a, b) in fast.warnings.iter().zip(full.warnings.iter()) {
            prop_assert_eq!(&a.path, &b.path);
            prop_assert_eq!(&a.message, &b.message);
        }
    }

    #[test]
    fn serde_round_trip_for_random_configs(cfg in any_manycore()) {
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ProcessorConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(cfg, back);
    }
}
