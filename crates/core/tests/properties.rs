#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Property-based tests for the whole-chip assembly.

use mcpat::{ChipStats, DvfsPoint, Processor, ProcessorConfig};
use mcpat_mcore::config::CoreConfig;
use mcpat_tech::TechNode;
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(TechNode::SCALING_STUDY.to_vec())
}

fn any_manycore() -> impl Strategy<Value = ProcessorConfig> {
    (
        any_node(),
        prop::sample::select(vec![1u32, 2, 4, 8, 16]),
        prop::sample::select(vec![1u32, 2, 4]),
        prop::bool::ANY,
    )
        .prop_filter_map("cluster divides cores", |(node, cores, cluster, ooo)| {
            if !cores.is_multiple_of(cluster) {
                return None;
            }
            let core = if ooo {
                CoreConfig::generic_ooo()
            } else {
                CoreConfig::generic_inorder()
            };
            Some(ProcessorConfig::manycore(
                "prop-chip",
                node,
                core,
                cores,
                cluster,
                u64::from(cluster) * 1024 * 1024,
            ))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_manycore_config_builds_sanely(cfg in any_manycore()) {
        let chip = Processor::build(&cfg).unwrap();
        let p = chip.peak_power();
        prop_assert!(p.total() > 0.0 && p.total().is_finite());
        prop_assert!(p.dynamic() > 0.0);
        prop_assert!(p.leakage().total() > 0.0);
        prop_assert!(chip.die_area_mm2() > 1.0 && chip.die_area_mm2() < 3000.0);
        // The breakdown must sum to the total.
        let sum: f64 = p.items.iter().map(|i| i.dynamic + i.leakage.total()).sum();
        prop_assert!((sum - p.total()).abs() < 1e-9 * p.total());
    }

    #[test]
    fn area_breakdown_sums_below_die_area(cfg in any_manycore()) {
        let chip = Processor::build(&cfg).unwrap();
        let components: f64 = chip.area_breakdown().iter().map(|i| i.area).sum();
        // Die area includes overheads, so it strictly exceeds the sum;
        // the pad ring adds a fixed perimeter term that dominates tiny
        // dies, hence the constant allowance.
        prop_assert!(chip.die_area() > components);
        prop_assert!(chip.die_area() < components * 2.0 + 30e-6);
    }

    #[test]
    fn runtime_power_is_bounded_by_peak_scaled(cfg in any_manycore(), busy in 0.05..1.0f64) {
        let chip = Processor::build(&cfg).unwrap();
        let mut stats = ChipStats::peak(
            1e-3,
            cfg.num_cores,
            cfg.clock_hz,
            cfg.core.issue_width,
            cfg.core.fp_issue_width,
        );
        for core in &mut stats.cores {
            core.idle_cycles = ((1.0 - busy) * core.cycles as f64) as u64;
        }
        let p = chip.runtime_power(&stats);
        let peak = chip.peak_power();
        prop_assert!(p.total() <= peak.total() * 1.05);
        prop_assert!(p.total() >= p.leakage().total() * 0.5);
    }

    #[test]
    fn dvfs_total_power_is_monotone_in_voltage(cfg in any_manycore(), v in 0.6..0.95f64) {
        let chip = Processor::build(&cfg).unwrap();
        let stats = ChipStats::peak(
            1e-3,
            cfg.num_cores,
            cfg.clock_hz,
            cfg.core.issue_width,
            cfg.core.fp_issue_width,
        );
        let low = chip.runtime_power_at(&stats, DvfsPoint::ladder(v)).unwrap();
        let high = chip.runtime_power_at(&stats, DvfsPoint::ladder(v + 0.05)).unwrap();
        prop_assert!(high.power.total() > low.power.total());
    }

    #[test]
    fn serde_round_trip_for_random_configs(cfg in any_manycore()) {
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ProcessorConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(cfg, back);
    }
}
