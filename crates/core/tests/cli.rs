//! Integration tests for the `mcpat` command-line front-end.

use std::process::Command;

fn mcpat_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mcpat"))
}

#[test]
fn preset_produces_a_report() {
    let out = mcpat_bin().args(["--preset", "niagara"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("McPAT-rs report: niagara"));
    assert!(text.contains("Peak power"));
    assert!(text.contains("Die area"));
}

#[test]
fn emit_config_round_trips_through_a_file() {
    let out = mcpat_bin()
        .args(["--preset", "tulsa", "--emit-config"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"xeon-tulsa\""));

    let dir = std::env::temp_dir();
    let path = dir.join("mcpat-cli-test-config.json");
    std::fs::write(&path, &json).unwrap();
    let out2 = mcpat_bin().arg(&path).output().unwrap();
    assert!(out2.status.success());
    let text = String::from_utf8(out2.stdout).unwrap();
    assert!(text.contains("McPAT-rs report: xeon-tulsa"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_preset_fails_with_message() {
    let out = mcpat_bin().args(["--preset", "pentium"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown preset"));
}

#[test]
fn invalid_config_file_fails_cleanly() {
    let dir = std::env::temp_dir();
    let path = dir.join("mcpat-cli-test-garbage.json");
    std::fs::write(&path, "{ not json }").unwrap();
    let out = mcpat_bin().arg(&path).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("not a valid config"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_flag_fails_with_usage() {
    let out = mcpat_bin().args(["--perset", "niagara"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown flag"), "{err}");
    assert!(err.contains("usage:"));
}

#[test]
fn help_flag_prints_usage() {
    let out = mcpat_bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("usage: mcpat"));
}

#[test]
fn stats_file_adds_runtime_section() {
    // Build a stats file from the library, then feed it to the CLI.
    let cfg = mcpat::ProcessorConfig::niagara();
    let stats = mcpat::ChipStats::peak(1e-3, 8, cfg.clock_hz, 1, 1);
    let dir = std::env::temp_dir();
    let cfg_path = dir.join("mcpat-cli-test-n.json");
    let stats_path = dir.join("mcpat-cli-test-s.json");
    std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();
    std::fs::write(&stats_path, serde_json::to_string(&stats).unwrap()).unwrap();
    let out = mcpat_bin().arg(&cfg_path).arg(&stats_path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Runtime power"), "{text}");
    let _ = std::fs::remove_file(&cfg_path);
    let _ = std::fs::remove_file(&stats_path);
}
