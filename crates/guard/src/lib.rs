//! # mcpat-guard — deadlines, cooperative cancellation, memory budgets
//!
//! The modeling stack is embedded in outer control loops (design-space
//! exploration, DVFS governors, a future `mcpat-serve` daemon) that
//! need predictable *worst-case* latency, not just good medians. This
//! crate provides the resource-governance primitive those loops share:
//! a cheap-clone [`Budget`] handle carrying an optional deadline, a
//! cooperative cancel flag, and an optional memory ceiling.
//!
//! Budgets thread through the **same scope-chain mechanism** that
//! `mcpat-obs` collectors use: [`Budget::enter`] pushes the budget onto
//! a thread-local chain, [`current_chain`] captures the chain so a work
//! item submitted to the `mcpat-par` pool can re-activate it on
//! whichever worker steals the task ([`BudgetChain::activate`]). Every
//! long-running loop in the stack calls the free function [`check`] at
//! its checkpoints; when no budget is active the call is a single
//! thread-local load, and benchline gates a fully live chain (an
//! entered unbounded budget, every checkpoint walking it) at ≤ 3% of a
//! cold build (~1.5% measured).
//!
//! Exceeding a budget yields a typed [`GuardError`] carrying
//! partial-progress metadata ([`Progress`]: candidates completed, spans
//! finished). Checkpoints are *cooperative*: nothing is interrupted
//! mid-expression, so an aborted build leaves zero poisoned state —
//! the pool keeps serving and the solve cache only ever contains
//! fully-materialized entries (budget errors are never cached).
//!
//! Cancellation has two scopes: [`Budget::cancel`] flips one handle's
//! flag, and [`cancel_all`] bumps a process-global generation that
//! every *live* budget observes (a budget created **after** the bump is
//! unaffected). `cancel_all` is a single lock-free `fetch_add`, safe to
//! call from a signal handler — the CLI's `--cancel-on-signal` does
//! exactly that.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Partial-progress metadata attached to every [`GuardError`]: how far
/// the failing scope got before the budget tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Progress {
    /// Candidates (array partition blocks, exploration configs,
    /// bisection probes) completed under this budget.
    pub candidates_done: u64,
    /// Build spans (validate/core/l2/...) finished under this budget.
    pub spans_done: u64,
}

/// A budget violation, raised by [`check`] at a cooperative checkpoint.
///
/// `Clone + PartialEq` so the error can ride inside the existing typed
/// error enums (`ArrayError`, `McpatError`) unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardError {
    /// The budget's deadline passed.
    DeadlineExceeded {
        /// The configured deadline, in microseconds.
        budget_us: u64,
        /// Wall time elapsed when the checkpoint fired, in microseconds.
        elapsed_us: u64,
        /// Progress at the moment the budget tripped.
        progress: Progress,
    },
    /// The budget was cancelled ([`Budget::cancel`] or [`cancel_all`]).
    Cancelled {
        /// Progress at the moment the budget tripped.
        progress: Progress,
    },
    /// Cooperatively-charged memory exceeded the configured ceiling.
    MemoryBudget {
        /// The configured ceiling, in bytes.
        limit_bytes: u64,
        /// Bytes charged when the checkpoint fired.
        used_bytes: u64,
        /// Progress at the moment the budget tripped.
        progress: Progress,
    },
}

impl GuardError {
    /// The progress metadata, whichever variant.
    #[must_use]
    pub fn progress(&self) -> Progress {
        match self {
            GuardError::DeadlineExceeded { progress, .. }
            | GuardError::Cancelled { progress }
            | GuardError::MemoryBudget { progress, .. } => *progress,
        }
    }

    /// A stable machine-readable name for the violation variant — the
    /// `error.kind` vocabulary the serve daemon's wire protocol and
    /// other tooling match on, kept independent of the `Display` text.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            GuardError::DeadlineExceeded { .. } => "DeadlineExceeded",
            GuardError::Cancelled { .. } => "Cancelled",
            GuardError::MemoryBudget { .. } => "MemoryBudget",
        }
    }
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::DeadlineExceeded {
                budget_us,
                elapsed_us,
                progress,
            } => write!(
                f,
                "deadline exceeded: {elapsed_us} us elapsed against a {budget_us} us budget \
                 ({} candidate(s), {} span(s) completed)",
                progress.candidates_done, progress.spans_done
            ),
            GuardError::Cancelled { progress } => write!(
                f,
                "cancelled ({} candidate(s), {} span(s) completed)",
                progress.candidates_done, progress.spans_done
            ),
            GuardError::MemoryBudget {
                limit_bytes,
                used_bytes,
                progress,
            } => write!(
                f,
                "memory budget exceeded: {used_bytes} B charged against a {limit_bytes} B \
                 ceiling ({} candidate(s), {} span(s) completed)",
                progress.candidates_done, progress.spans_done
            ),
        }
    }
}

impl std::error::Error for GuardError {}

/// Process-global cancel generation. [`cancel_all`] bumps it; a budget
/// snapshots it at creation and considers itself cancelled once the
/// global value moves past the snapshot.
static CANCEL_GENERATION: AtomicU64 = AtomicU64::new(0);

/// Cancels every budget currently alive in the process (budgets created
/// afterwards are unaffected). Lock-free and async-signal-safe — the
/// CLI's `--cancel-on-signal` calls this from a SIGINT/SIGTERM handler.
pub fn cancel_all() {
    CANCEL_GENERATION.fetch_add(1, Ordering::SeqCst);
}

struct Inner {
    started: Instant,
    deadline: Option<Instant>,
    budget_us: u64,
    cancelled: AtomicBool,
    /// [`CANCEL_GENERATION`] at creation; a later global bump cancels us.
    cancel_snapshot: u64,
    memory_limit: Option<u64>,
    memory_used: AtomicU64,
    candidates_done: AtomicU64,
    spans_done: AtomicU64,
    /// Chaos-testing hook: when > 0, the countdown decrements on every
    /// [`Budget::check_self`]; hitting zero flips the cancel flag. Lets
    /// tests cancel deterministically at the Nth checkpoint.
    cancel_after_checks: AtomicU64,
}

/// A cheap-clone (one `Arc`) resource budget: optional deadline,
/// cooperative cancel flag, optional memory ceiling, plus progress
/// counters. Clones share all state.
#[derive(Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budget")
            .field("deadline_us", &self.inner.budget_us)
            .field("cancelled", &self.is_cancelled())
            .field("memory_limit", &self.inner.memory_limit)
            .finish()
    }
}

impl Budget {
    /// A budget with the given limits; `None` everywhere means
    /// cancellation-only.
    #[must_use]
    pub fn with_limits(deadline: Option<Duration>, memory_limit_bytes: Option<u64>) -> Budget {
        let started = Instant::now();
        let budget_us = deadline.map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
        Budget {
            inner: Arc::new(Inner {
                started,
                deadline: deadline.and_then(|d| started.checked_add(d)),
                budget_us,
                cancelled: AtomicBool::new(false),
                cancel_snapshot: CANCEL_GENERATION.load(Ordering::SeqCst),
                memory_limit: memory_limit_bytes,
                memory_used: AtomicU64::new(0),
                candidates_done: AtomicU64::new(0),
                spans_done: AtomicU64::new(0),
                cancel_after_checks: AtomicU64::new(0),
            }),
        }
    }

    /// A budget with no deadline and no memory ceiling — still
    /// cancellable (per-handle or via [`cancel_all`]).
    #[must_use]
    pub fn unbounded() -> Budget {
        Budget::with_limits(None, None)
    }

    /// A budget that trips [`GuardError::DeadlineExceeded`] once `d`
    /// wall time has elapsed.
    #[must_use]
    pub fn with_deadline(d: Duration) -> Budget {
        Budget::with_limits(Some(d), None)
    }

    /// Flips this budget's (and all its clones') cancel flag.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// True if cancelled per-handle or by a [`cancel_all`] issued after
    /// this budget was created.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
            || CANCEL_GENERATION.load(Ordering::SeqCst) > self.inner.cancel_snapshot
    }

    /// Progress recorded so far ([`note_candidate`] / [`note_span`]).
    #[must_use]
    pub fn progress(&self) -> Progress {
        Progress {
            candidates_done: self.inner.candidates_done.load(Ordering::Relaxed),
            spans_done: self.inner.spans_done.load(Ordering::Relaxed),
        }
    }

    /// Cooperatively charges `bytes` against the memory ceiling (the
    /// next [`check`] trips if the ceiling is exceeded).
    pub fn charge(&self, bytes: u64) {
        self.inner.memory_used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Chaos-testing hook: cancel this budget at its `n`-th
    /// [`check_self`](Budget::check_self) call (0 disarms). Lets the
    /// chaos harness cancel deterministically at a randomized
    /// checkpoint without timing races.
    #[doc(hidden)]
    pub fn cancel_after_checks(&self, n: u64) {
        self.inner.cancel_after_checks.store(n, Ordering::SeqCst);
    }

    /// Checks this budget alone (cancel flag, then deadline, then
    /// memory ceiling). Most code should call the free [`check`], which
    /// walks the whole active chain.
    ///
    /// # Errors
    ///
    /// The corresponding [`GuardError`] when a limit has been exceeded.
    pub fn check_self(&self) -> Result<(), GuardError> {
        let armed = self.inner.cancel_after_checks.load(Ordering::SeqCst);
        if armed > 0
            && self
                .inner
                .cancel_after_checks
                .fetch_sub(1, Ordering::SeqCst)
                == 1
        {
            self.cancel();
        }
        if self.is_cancelled() {
            return Err(GuardError::Cancelled {
                progress: self.progress(),
            });
        }
        if let Some(deadline) = self.inner.deadline {
            let now = Instant::now();
            if now >= deadline {
                let elapsed_us = u64::try_from(now.duration_since(self.inner.started).as_micros())
                    .unwrap_or(u64::MAX);
                return Err(GuardError::DeadlineExceeded {
                    budget_us: self.inner.budget_us,
                    elapsed_us,
                    progress: self.progress(),
                });
            }
        }
        if let Some(limit) = self.inner.memory_limit {
            let used = self.inner.memory_used.load(Ordering::Relaxed);
            if used > limit {
                return Err(GuardError::MemoryBudget {
                    limit_bytes: limit,
                    used_bytes: used,
                    progress: self.progress(),
                });
            }
        }
        Ok(())
    }

    /// Pushes this budget onto the calling thread's scope chain; the
    /// guard pops it on drop. Guards are `!Send` and must drop in LIFO
    /// order (enforced by scoping, exactly like `mcpat-obs` scopes).
    #[must_use]
    pub fn enter(&self) -> BudgetGuard {
        let node = HEAD.with(|head| {
            let mut head = head.borrow_mut();
            let node = Arc::new(Node {
                budget: self.clone(),
                parent: head.take(),
            });
            *head = Some(Arc::clone(&node));
            node
        });
        BudgetGuard {
            node,
            _not_send: std::marker::PhantomData,
        }
    }
}

/// One link in a thread's budget chain (persistent linked list — the
/// same shape `mcpat-obs` uses for collector scopes).
struct Node {
    budget: Budget,
    parent: Option<Arc<Node>>,
}

thread_local! {
    /// The calling thread's innermost active budget scope.
    static HEAD: RefCell<Option<Arc<Node>>> = const { RefCell::new(None) };
}

/// Scope guard returned by [`Budget::enter`]; pops the budget on drop.
pub struct BudgetGuard {
    node: Arc<Node>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        HEAD.with(|head| {
            *head.borrow_mut() = self.node.parent.clone();
        });
    }
}

/// A captured budget chain: `Send + Sync`, cheap to clone, re-activated
/// on another thread with [`BudgetChain::activate`]. The `mcpat-par`
/// pool captures the submitter's chain at submission so stolen tasks
/// inherit the submitter's budget, exactly like collector chains.
#[derive(Clone, Default)]
pub struct BudgetChain {
    head: Option<Arc<Node>>,
}

impl BudgetChain {
    /// Installs this chain as the calling thread's active chain until
    /// the returned guard drops (restoring the previous chain).
    #[must_use]
    pub fn activate(&self) -> ChainGuard {
        let prev = HEAD.with(|head| head.replace(self.head.clone()));
        ChainGuard {
            prev,
            _not_send: std::marker::PhantomData,
        }
    }

    /// True when the chain carries no budget at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }
}

/// Captures the calling thread's current budget chain.
#[must_use]
pub fn current_chain() -> BudgetChain {
    BudgetChain {
        head: HEAD.with(|head| head.borrow().clone()),
    }
}

/// Guard returned by [`BudgetChain::activate`]; restores the previous
/// chain on drop.
pub struct ChainGuard {
    prev: Option<Arc<Node>>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ChainGuard {
    fn drop(&mut self) {
        HEAD.with(|head| {
            *head.borrow_mut() = self.prev.take();
        });
    }
}

/// The checkpoint every long-running loop calls: checks every budget on
/// the calling thread's chain, innermost first. When no budget is
/// active this is a single thread-local load; with an entered unbounded
/// budget the full chain walk is benchline-gated at ≤ 3% of a cold chip
/// build (~1.5% measured).
///
/// # Errors
///
/// The first [`GuardError`] raised by any budget on the chain.
pub fn check() -> Result<(), GuardError> {
    HEAD.with(|head| {
        let head = head.borrow();
        let mut node = head.as_deref();
        while let Some(n) = node {
            n.budget.check_self()?;
            node = n.parent.as_ref().map(Arc::as_ref);
        }
        Ok(())
    })
}

/// True when at least one budget is active on this thread — lets hot
/// paths skip per-item bookkeeping entirely when unguarded.
#[must_use]
pub fn active() -> bool {
    HEAD.with(|head| head.borrow().is_some())
}

/// Records one completed candidate (partition block, exploration
/// config, bisection probe) on every budget in the active chain.
pub fn note_candidate() {
    bill(|b| {
        b.inner.candidates_done.fetch_add(1, Ordering::Relaxed);
    });
}

/// Records one finished build span on every budget in the active chain.
pub fn note_span() {
    bill(|b| {
        b.inner.spans_done.fetch_add(1, Ordering::Relaxed);
    });
}

/// Cooperatively charges `bytes` against every budget in the active
/// chain's memory ceiling.
pub fn charge(bytes: u64) {
    bill(|b| {
        b.inner.memory_used.fetch_add(bytes, Ordering::Relaxed);
    });
}

fn bill(f: impl Fn(&Budget)) {
    HEAD.with(|head| {
        let head = head.borrow();
        let mut node = head.as_deref();
        while let Some(n) = node {
            f(&n.budget);
            node = n.parent.as_ref().map(Arc::as_ref);
        }
    });
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_means_check_passes() {
        assert!(check().is_ok());
        assert!(!active());
    }

    #[test]
    fn deadline_trips_and_reports_progress() {
        let b = Budget::with_deadline(Duration::from_micros(0));
        let _scope = b.enter();
        note_candidate();
        note_candidate();
        note_span();
        std::thread::sleep(Duration::from_millis(1));
        let err = check().unwrap_err();
        match err {
            GuardError::DeadlineExceeded { progress, .. } => {
                assert_eq!(progress.candidates_done, 2);
                assert_eq!(progress.spans_done, 1);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn cancel_trips_all_clones() {
        let b = Budget::unbounded();
        let clone = b.clone();
        let _scope = clone.enter();
        assert!(check().is_ok());
        b.cancel();
        assert!(matches!(check(), Err(GuardError::Cancelled { .. })));
    }

    #[test]
    fn memory_ceiling_trips_after_charge() {
        let b = Budget::with_limits(None, Some(1024));
        let _scope = b.enter();
        charge(512);
        assert!(check().is_ok());
        charge(1024);
        let err = check().unwrap_err();
        assert!(
            matches!(
                err,
                GuardError::MemoryBudget {
                    used_bytes: 1536,
                    limit_bytes: 1024,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = Budget::unbounded();
        {
            let _o = outer.enter();
            let inner = Budget::with_deadline(Duration::from_secs(3600));
            {
                let _i = inner.enter();
                assert!(check().is_ok());
                note_candidate();
            }
            // Inner popped; outer still records.
            note_candidate();
        }
        assert!(!active());
        assert_eq!(outer.progress().candidates_done, 2);
        // The inner budget saw only the note made while it was active.
    }

    #[test]
    fn chain_activates_across_threads() {
        let b = Budget::unbounded();
        let chain = {
            let _scope = b.enter();
            current_chain()
        };
        let b2 = b.clone();
        std::thread::spawn(move || {
            let _active = chain.activate();
            assert!(check().is_ok());
            note_candidate();
            b2.cancel();
            assert!(matches!(check(), Err(GuardError::Cancelled { .. })));
        })
        .join()
        .unwrap();
        assert_eq!(b.progress().candidates_done, 1);
        assert!(!active());
    }

    #[test]
    fn cancel_after_checks_fires_at_nth_checkpoint() {
        let b = Budget::unbounded();
        b.cancel_after_checks(3);
        let _scope = b.enter();
        assert!(check().is_ok());
        assert!(check().is_ok());
        assert!(matches!(check(), Err(GuardError::Cancelled { .. })));
    }

    #[test]
    fn cancel_all_hits_live_budgets_only() {
        let before = Budget::unbounded();
        cancel_all();
        let after = Budget::unbounded();
        assert!(before.is_cancelled());
        assert!(!after.is_cancelled());
    }

    #[test]
    fn errors_render_and_compare() {
        let p = Progress {
            candidates_done: 4,
            spans_done: 2,
        };
        let e = GuardError::Cancelled { progress: p };
        assert_eq!(e, e.clone());
        assert!(e.to_string().contains("4 candidate(s)"), "{e}");
        let d = GuardError::DeadlineExceeded {
            budget_us: 100,
            elapsed_us: 250,
            progress: p,
        };
        assert!(d.to_string().contains("250 us"), "{d}");
        assert_eq!(d.progress(), p);
    }
}
