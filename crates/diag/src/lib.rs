//! Structured diagnostics for the modeling stack.
//!
//! Every validation and build step in the workspace reports problems as
//! [`Diagnostic`]s: a severity, a *component path* naming the exact knob
//! or unit involved (`core[0].icache.tag_array`), and a human-readable
//! message. A [`Diagnostics`] pass collects **all** findings instead of
//! stopping at the first, so one run of `--validate` shows everything
//! that needs fixing.
//!
//! Errors raised mid-build (after validation) carry their location via
//! [`AtPath`], a thin wrapper that pairs any error with the component
//! path it came from; [`ResultExt::at`] attaches the path at the call
//! site.
//!
//! ```
//! use mcpat_diag::Diagnostics;
//!
//! let mut diags = Diagnostics::new();
//! diags.require_positive("core.clock_hz", "clock", f64::NAN);
//! diags.warning("core.vdd_scale", "0.31 is at the edge of the model's fit range");
//! assert!(diags.has_errors());
//! assert_eq!(diags.warning_count(), 1);
//! ```

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The model can still be built; the result deserves scrutiny.
    Warning,
    /// The configuration or model is unusable as given.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: severity, component path, message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Dotted component path, e.g. `core[0].icache.tag_array`.
    /// Empty means "the configuration as a whole".
    pub path: String,
    /// Human-readable description of the problem.
    pub message: String,
}

impl Diagnostic {
    /// An error finding at `path`.
    pub fn error(path: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            path: path.into(),
            message: message.into(),
        }
    }

    /// A warning finding at `path`.
    pub fn warning(path: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            path: path.into(),
            message: message.into(),
        }
    }

    /// Re-roots the path under `prefix` (`prefix.path`).
    #[must_use]
    pub fn under(mut self, prefix: &str) -> Diagnostic {
        self.path = join_path(prefix, &self.path);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}: {}", self.severity, self.message)
        } else {
            write!(f, "{}: {}: {}", self.severity, self.path, self.message)
        }
    }
}

/// Joins two path segments, tolerating either being empty.
#[must_use]
pub fn join_path(prefix: &str, rest: &str) -> String {
    match (prefix.is_empty(), rest.is_empty()) {
        (true, _) => rest.to_owned(),
        (_, true) => prefix.to_owned(),
        _ => format!("{prefix}.{rest}"),
    }
}

/// An accumulating collection of findings — the result of a validation
/// pass. Unlike a `Result`, it keeps going after the first error so the
/// caller sees the complete picture.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    #[must_use]
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Records an error at `path`.
    pub fn error(&mut self, path: impl Into<String>, message: impl Into<String>) {
        self.items.push(Diagnostic::error(path, message));
    }

    /// Records a warning at `path`.
    pub fn warning(&mut self, path: impl Into<String>, message: impl Into<String>) {
        self.items.push(Diagnostic::warning(path, message));
    }

    /// Appends a prebuilt finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Absorbs every finding from `other`.
    pub fn merge(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Absorbs `other` with every path re-rooted under `prefix`
    /// (used when a sub-config validates itself with relative paths).
    pub fn merge_under(&mut self, prefix: &str, other: Diagnostics) {
        self.items
            .extend(other.items.into_iter().map(|d| d.under(prefix)));
    }

    /// Errors if `v` is NaN or infinite. Returns whether the check passed.
    pub fn require_finite(&mut self, path: impl Into<String>, label: &str, v: f64) -> bool {
        if v.is_finite() {
            true
        } else {
            self.error(path, format!("{label} must be finite, got {v}"));
            false
        }
    }

    /// Errors unless `v` is finite and strictly positive.
    pub fn require_positive(&mut self, path: impl Into<String>, label: &str, v: f64) -> bool {
        if v.is_finite() && v > 0.0 {
            true
        } else {
            self.error(
                path,
                format!("{label} must be positive and finite, got {v}"),
            );
            false
        }
    }

    /// Errors unless `v` is finite and non-negative.
    pub fn require_nonnegative(&mut self, path: impl Into<String>, label: &str, v: f64) -> bool {
        if v.is_finite() && v >= 0.0 {
            true
        } else {
            self.error(
                path,
                format!("{label} must be non-negative and finite, got {v}"),
            );
            false
        }
    }

    /// True if any finding is an [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// True if nothing was recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total findings recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Number of errors.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warnings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// All findings in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Only the errors.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Only the warnings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// `Ok(self)` when there are no errors (warnings may remain),
    /// `Err(self)` otherwise.
    ///
    /// # Errors
    ///
    /// Returns the collection itself when it contains at least one error.
    pub fn into_result(self) -> Result<Diagnostics, Diagnostics> {
        if self.has_errors() {
            Err(self)
        } else {
            Ok(self)
        }
    }

    /// Consumes into the raw finding list.
    #[must_use]
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Diagnostics {
        Diagnostics {
            items: iter.into_iter().collect(),
        }
    }
}

/// An error `source` located at component `path`.
///
/// Build steps deeper in the stack return plain error types; callers
/// attach the path as the error bubbles up ([`ResultExt::at`]), and
/// outer layers extend it ([`AtPath::under`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtPath<E> {
    /// Dotted component path, e.g. `l2[1].tag_array`.
    pub path: String,
    /// The underlying error.
    pub source: E,
}

impl<E> AtPath<E> {
    /// Wraps `source` with its component path.
    pub fn new(path: impl Into<String>, source: E) -> AtPath<E> {
        AtPath {
            path: path.into(),
            source,
        }
    }

    /// Re-roots the path under `prefix`.
    #[must_use]
    pub fn under(mut self, prefix: &str) -> AtPath<E> {
        self.path = join_path(prefix, &self.path);
        self
    }
}

impl<E: fmt::Display> fmt::Display for AtPath<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            self.source.fmt(f)
        } else {
            write!(f, "{}: {}", self.path, self.source)
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for AtPath<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Attaches component paths to `Result` errors.
pub trait ResultExt<T, E> {
    /// Wraps the error, if any, with the component path it came from.
    ///
    /// # Errors
    ///
    /// Propagates the original error wrapped in [`AtPath`].
    fn at(self, path: impl Into<String>) -> Result<T, AtPath<E>>;
}

impl<T, E> ResultExt<T, E> for Result<T, E> {
    fn at(self, path: impl Into<String>) -> Result<T, AtPath<E>> {
        self.map_err(|e| AtPath::new(path, e))
    }
}

/// Re-attaches an outer prefix to an [`AtPath`] result.
pub trait NestExt<T, E> {
    /// Prepends `prefix` to the error's existing path.
    ///
    /// # Errors
    ///
    /// Propagates the original error with the extended path.
    fn nested(self, prefix: &str) -> Result<T, AtPath<E>>;
}

impl<T, E> NestExt<T, E> for Result<T, AtPath<E>> {
    fn nested(self, prefix: &str) -> Result<T, AtPath<E>> {
        self.map_err(|e| e.under(prefix))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn collects_multiple_findings() {
        let mut d = Diagnostics::new();
        d.error("a", "first");
        d.warning("b", "second");
        d.error("c.d", "third");
        assert_eq!(d.len(), 3);
        assert_eq!(d.error_count(), 2);
        assert_eq!(d.warning_count(), 1);
        assert!(d.has_errors());
    }

    #[test]
    fn numeric_checks_catch_non_finite() {
        let mut d = Diagnostics::new();
        assert!(d.require_finite("x", "x", 1.0));
        assert!(!d.require_finite("x", "x", f64::NAN));
        assert!(!d.require_positive("y", "y", 0.0));
        assert!(!d.require_positive("y", "y", f64::INFINITY));
        assert!(!d.require_nonnegative("z", "z", -1.0));
        assert!(d.require_nonnegative("z", "z", 0.0));
        assert_eq!(d.error_count(), 4);
    }

    #[test]
    fn merge_under_prefixes_paths() {
        let mut inner = Diagnostics::new();
        inner.error("icache.size", "zero");
        inner.error("", "whole thing");
        let mut outer = Diagnostics::new();
        outer.merge_under("core[0]", inner);
        let paths: Vec<&str> = outer.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, ["core[0].icache.size", "core[0]"]);
    }

    #[test]
    fn into_result_splits_on_errors() {
        let mut warn_only = Diagnostics::new();
        warn_only.warning("w", "take care");
        assert!(warn_only.clone().into_result().is_ok());
        warn_only.error("e", "broken");
        assert!(warn_only.into_result().is_err());
    }

    #[test]
    fn display_formats_one_per_line() {
        let mut d = Diagnostics::new();
        d.error("core.clock_hz", "must be positive");
        d.warning("", "global note");
        let text = d.to_string();
        assert_eq!(
            text,
            "error: core.clock_hz: must be positive\nwarning: global note"
        );
    }

    #[test]
    fn at_path_wraps_and_nests() {
        #[derive(Debug, PartialEq)]
        struct Boom;
        impl fmt::Display for Boom {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("boom")
            }
        }
        let r: Result<(), Boom> = Err(Boom);
        let e = r.at("tag_array").nested("l2[1]").unwrap_err();
        assert_eq!(e.path, "l2[1].tag_array");
        assert_eq!(e.to_string(), "l2[1].tag_array: boom");
    }

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }
}
