//! `mcpat-lint` command-line entry point.
//!
//! ```text
//! cargo lint                              # alias; human-readable, exit 1 on violations
//! cargo run -p mcpat-lint -- --json       # JSON report on stdout
//! cargo run -p mcpat-lint -- --out f.json # also write the JSON report to f.json
//! cargo run -p mcpat-lint -- --sarif f    # also write a SARIF 2.1.0 report to f
//! cargo run -p mcpat-lint -- --cache f    # incremental: reuse facts for unchanged files
//! cargo run -p mcpat-lint -- --deny-warnings # exit 1 on warnings too (unused allows)
//! cargo run -p mcpat-lint -- --root DIR   # lint a different workspace root
//! ```
//!
//! Exit codes: 0 clean, 1 violations found (warnings count only under
//! `--deny-warnings`), 2 usage or I/O error.

use std::path::PathBuf;

struct Options {
    json: bool,
    out: Option<PathBuf>,
    sarif: Option<PathBuf>,
    cache: Option<PathBuf>,
    deny_warnings: bool,
    root: PathBuf,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        out: None,
        sarif: None,
        cache: None,
        deny_warnings: false,
        root: mcpat_lint::default_root(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // `cargo lint` is an alias ending in `--`, so `cargo lint -- --json`
            // hands us a literal separator; swallow it.
            "--" => {}
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--out" => {
                let path = it.next().ok_or("--out requires a file path")?;
                opts.out = Some(PathBuf::from(path));
            }
            "--sarif" => {
                let path = it.next().ok_or("--sarif requires a file path")?;
                opts.sarif = Some(PathBuf::from(path));
            }
            "--cache" => {
                let path = it.next().ok_or("--cache requires a file path")?;
                opts.cache = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = it.next().ok_or("--root requires a directory path")?;
                opts.root = PathBuf::from(path);
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: mcpat-lint [--json] [--out FILE] [--sarif FILE] \
                     [--cache FILE] [--deny-warnings] [--root DIR]",
                ))
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let lint_result = match &opts.cache {
        Some(cache_path) => mcpat_lint::lint_workspace_cached(&opts.root, cache_path),
        None => mcpat_lint::lint_workspace(&opts.root),
    };
    let report = match lint_result {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "mcpat-lint: cannot read workspace at {}: {e}",
                opts.root.display()
            );
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("mcpat-lint: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, report.to_sarif()) {
            eprintln!("mcpat-lint: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }

    if opts.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }

    let fail = report.has_errors() || (opts.deny_warnings && !report.findings.is_empty());
    std::process::exit(i32::from(fail));
}
