//! `mcpat-lint` command-line entry point.
//!
//! ```text
//! cargo run -p mcpat-lint                # human-readable, exit 1 on violations
//! cargo run -p mcpat-lint -- --json      # JSON report on stdout
//! cargo run -p mcpat-lint -- --out f.json# also write the JSON report to f.json
//! cargo run -p mcpat-lint -- --root DIR  # lint a different workspace root
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 violations found, 2 usage
//! or I/O error.

use std::path::PathBuf;

struct Options {
    json: bool,
    out: Option<PathBuf>,
    root: PathBuf,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        out: None,
        root: mcpat_lint::default_root(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--out" => {
                let path = it.next().ok_or("--out requires a file path")?;
                opts.out = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = it.next().ok_or("--root requires a directory path")?;
                opts.root = PathBuf::from(path);
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: mcpat-lint [--json] [--out FILE] [--root DIR]",
                ))
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let report = match mcpat_lint::lint_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "mcpat-lint: cannot read workspace at {}: {e}",
                opts.root.display()
            );
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("mcpat-lint: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }

    if opts.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }

    std::process::exit(i32::from(report.has_errors()));
}
