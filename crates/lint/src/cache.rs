//! The content-hash incremental cache (`--cache FILE`).
//!
//! Linting is a pure function of a file's bytes — per-file findings,
//! allow annotations, and the facts the cross-file passes consume
//! (L004 struct/validate evidence, L008/L012 function summaries). So
//! the cache stores exactly that: one entry per file keyed by an
//! FNV-1a hash of its contents. On a warm run an unchanged file skips
//! lex/parse/analyze entirely; the cross-file passes always re-run
//! over the (cheap) facts, which keeps interprocedural results correct
//! when *another* file changed.
//!
//! The format is a single JSON document with a version stamp.
//! [`FORMAT_VERSION`] must be bumped whenever rule logic or the facts
//! shape changes — a mismatched or unreadable cache degrades to a cold
//! run, never an error.

use crate::callgraph::CallRef;
use crate::json::Val;
use crate::rules::{Allow, FileAnalysis, Finding, FnFact, LoopFact, Rule, StructDef};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Bump on any change to rule logic or the serialized facts shape.
pub const FORMAT_VERSION: usize = 1;

/// FNV-1a over the file's bytes — fast, dependency-free, and stable
/// across runs and platforms (unlike `DefaultHasher`).
#[must_use]
pub fn content_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache: prior-run entries consulted by [`Cache::take`], and the
/// current run's entries accumulated for [`Cache::store`]. Files that
/// disappeared from the workspace are pruned for free — only files
/// seen this run are written back.
#[derive(Debug, Default)]
pub struct Cache {
    old: BTreeMap<String, (u64, FileAnalysis)>,
    new: BTreeMap<String, (u64, FileAnalysis)>,
    /// Files served from the cache this run.
    pub hits: usize,
    /// Files re-analyzed this run.
    pub misses: usize,
}

impl Cache {
    /// Loads a cache file; any read/parse/version problem yields an
    /// empty (cold) cache.
    #[must_use]
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::default();
        };
        let Some(doc) = Val::parse(&text) else {
            return Cache::default();
        };
        if doc.get("version").and_then(Val::as_usize) != Some(FORMAT_VERSION) {
            return Cache::default();
        }
        let mut old = BTreeMap::new();
        for (file, entry) in doc.get("files").and_then(Val::entries).unwrap_or_default() {
            let hash = entry
                .get("hash")
                .and_then(Val::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok());
            let facts = entry.get("facts").and_then(|v| facts_from_val(file, v));
            if let (Some(hash), Some(facts)) = (hash, facts) {
                old.insert(file.clone(), (hash, facts));
            }
        }
        Cache {
            old,
            ..Cache::default()
        }
    }

    /// Consults the prior run: on a hash match the stored facts are
    /// recorded into the current run and returned; otherwise the
    /// caller must analyze and [`Cache::put`] the result.
    pub fn take(&mut self, file: &str, hash: u64) -> Option<FileAnalysis> {
        match self.old.get(file) {
            Some((h, facts)) if *h == hash => {
                self.hits = self.hits.saturating_add(1);
                let facts = facts.clone();
                self.new.insert(file.to_owned(), (hash, facts.clone()));
                Some(facts)
            }
            _ => {
                self.misses = self.misses.saturating_add(1);
                None
            }
        }
    }

    /// Records a freshly analyzed file into the current run.
    pub fn put(&mut self, file: &str, hash: u64, facts: &FileAnalysis) {
        self.new.insert(file.to_owned(), (hash, facts.clone()));
    }

    /// Writes the current run's entries back.
    ///
    /// # Errors
    ///
    /// An [`std::io::Error`] if the file cannot be written.
    pub fn store(&self, path: &Path) -> std::io::Result<()> {
        let files = self
            .new
            .iter()
            .map(|(file, (hash, facts))| {
                (
                    file.clone(),
                    Val::Obj(vec![
                        (String::from("hash"), Val::Str(format!("{hash:016x}"))),
                        (String::from("facts"), facts_to_val(facts)),
                    ]),
                )
            })
            .collect();
        let doc = Val::Obj(vec![
            (String::from("version"), num(FORMAT_VERSION)),
            (String::from("files"), Val::Obj(files)),
        ]);
        std::fs::write(path, doc.render())
    }
}

fn num(n: usize) -> Val {
    Val::Num(n as f64)
}

fn strv(s: &str) -> Val {
    Val::Str(s.to_owned())
}

fn finding_to_val(f: &Finding) -> Val {
    Val::Obj(vec![
        (String::from("r"), strv(f.rule.id())),
        (String::from("l"), num(f.line)),
        (String::from("a"), f.alt_line.map_or(Val::Null, num)),
        (String::from("m"), strv(&f.message)),
    ])
}

fn finding_from_val(file: &str, v: &Val) -> Option<Finding> {
    let rule = parse_rule(v.get("r")?.as_str()?)?;
    Some(Finding {
        rule,
        severity: rule.severity(),
        file: file.to_owned(),
        line: v.get("l")?.as_usize()?,
        alt_line: v.get("a").and_then(Val::as_usize),
        message: v.get("m")?.as_str()?.to_owned(),
    })
}

/// [`Rule::from_id`] plus the annotation pseudo-rule, which appears in
/// cached annotation warnings.
fn parse_rule(id: &str) -> Option<Rule> {
    if id == Rule::Allowance.id() {
        return Some(Rule::Allowance);
    }
    Rule::from_id(id)
}

fn call_to_val(c: &CallRef) -> Val {
    Val::Obj(vec![
        (String::from("n"), strv(&c.name)),
        (
            String::from("p"),
            Val::Arr(c.path.iter().map(|s| strv(s)).collect()),
        ),
    ])
}

fn call_from_val(v: &Val) -> Option<CallRef> {
    Some(CallRef {
        name: v.get("n")?.as_str()?.to_owned(),
        path: v
            .get("p")?
            .as_arr()?
            .iter()
            .map(|s| s.as_str().map(str::to_owned))
            .collect::<Option<Vec<String>>>()?,
    })
}

fn facts_to_val(a: &FileAnalysis) -> Val {
    Val::Obj(vec![
        (
            String::from("findings"),
            Val::Arr(a.findings.iter().map(finding_to_val).collect()),
        ),
        (
            String::from("warnings"),
            Val::Arr(a.annotation_warnings.iter().map(finding_to_val).collect()),
        ),
        (
            String::from("allows"),
            Val::Arr(
                a.allows
                    .iter()
                    .map(|al| {
                        Val::Obj(vec![
                            (String::from("r"), strv(al.rule.id())),
                            (String::from("why"), strv(&al.reason)),
                            (String::from("t"), num(al.target_line)),
                            (String::from("c"), num(al.comment_line)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            String::from("structs"),
            Val::Arr(
                a.structs
                    .iter()
                    .map(|s| {
                        Val::Obj(vec![
                            (String::from("n"), strv(&s.name)),
                            (String::from("l"), num(s.line)),
                            (
                                String::from("f"),
                                Val::Arr(
                                    s.fields
                                        .iter()
                                        .map(|(n, l)| Val::Arr(vec![strv(n), num(*l)]))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            String::from("validate_idents"),
            Val::Arr(a.validate_idents.iter().map(|s| strv(s)).collect()),
        ),
        (String::from("has_validate"), Val::Bool(a.has_validate)),
        (
            String::from("fns"),
            Val::Arr(
                a.fns
                    .iter()
                    .map(|f| {
                        Val::Obj(vec![
                            (String::from("n"), strv(&f.name)),
                            (
                                String::from("i"),
                                f.impl_type.as_deref().map_or(Val::Null, strv),
                            ),
                            (String::from("l"), num(f.line)),
                            (String::from("t"), Val::Bool(f.is_test)),
                            (
                                String::from("c"),
                                Val::Arr(f.calls.iter().map(call_to_val).collect()),
                            ),
                            (
                                String::from("lp"),
                                Val::Arr(
                                    f.loops
                                        .iter()
                                        .map(|l| {
                                            Val::Obj(vec![
                                                (String::from("l"), num(l.line)),
                                                (
                                                    String::from("b"),
                                                    Val::Arr(
                                                        l.budgeted
                                                            .iter()
                                                            .map(|s| strv(s))
                                                            .collect(),
                                                    ),
                                                ),
                                                (String::from("d"), Val::Bool(l.direct_checkpoint)),
                                                (
                                                    String::from("c"),
                                                    Val::Arr(
                                                        l.calls.iter().map(call_to_val).collect(),
                                                    ),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn facts_from_val(file: &str, v: &Val) -> Option<FileAnalysis> {
    let findings = v
        .get("findings")?
        .as_arr()?
        .iter()
        .map(|f| finding_from_val(file, f))
        .collect::<Option<Vec<Finding>>>()?;
    let annotation_warnings = v
        .get("warnings")?
        .as_arr()?
        .iter()
        .map(|f| finding_from_val(file, f))
        .collect::<Option<Vec<Finding>>>()?;
    let allows = v
        .get("allows")?
        .as_arr()?
        .iter()
        .map(|al| {
            Some(Allow {
                rule: parse_rule(al.get("r")?.as_str()?)?,
                reason: al.get("why")?.as_str()?.to_owned(),
                target_line: al.get("t")?.as_usize()?,
                comment_line: al.get("c")?.as_usize()?,
            })
        })
        .collect::<Option<Vec<Allow>>>()?;
    let structs = v
        .get("structs")?
        .as_arr()?
        .iter()
        .map(|s| {
            Some(StructDef {
                name: s.get("n")?.as_str()?.to_owned(),
                file: file.to_owned(),
                line: s.get("l")?.as_usize()?,
                fields: s
                    .get("f")?
                    .as_arr()?
                    .iter()
                    .map(|pair| {
                        let items = pair.as_arr()?;
                        Some((
                            items.first()?.as_str()?.to_owned(),
                            items.get(1)?.as_usize()?,
                        ))
                    })
                    .collect::<Option<Vec<(String, usize)>>>()?,
            })
        })
        .collect::<Option<Vec<StructDef>>>()?;
    let validate_idents: BTreeSet<String> = v
        .get("validate_idents")?
        .as_arr()?
        .iter()
        .map(|s| s.as_str().map(str::to_owned))
        .collect::<Option<BTreeSet<String>>>()?;
    let has_validate = v.get("has_validate")?.as_bool()?;
    let fns = v
        .get("fns")?
        .as_arr()?
        .iter()
        .map(|f| {
            Some(FnFact {
                name: f.get("n")?.as_str()?.to_owned(),
                impl_type: match f.get("i")? {
                    Val::Null => None,
                    other => Some(other.as_str()?.to_owned()),
                },
                line: f.get("l")?.as_usize()?,
                is_test: f.get("t")?.as_bool()?,
                calls: f
                    .get("c")?
                    .as_arr()?
                    .iter()
                    .map(call_from_val)
                    .collect::<Option<Vec<CallRef>>>()?,
                loops: f
                    .get("lp")?
                    .as_arr()?
                    .iter()
                    .map(|l| {
                        Some(LoopFact {
                            line: l.get("l")?.as_usize()?,
                            budgeted: l
                                .get("b")?
                                .as_arr()?
                                .iter()
                                .map(|s| s.as_str().map(str::to_owned))
                                .collect::<Option<Vec<String>>>()?,
                            direct_checkpoint: l.get("d")?.as_bool()?,
                            calls: l
                                .get("c")?
                                .as_arr()?
                                .iter()
                                .map(call_from_val)
                                .collect::<Option<Vec<CallRef>>>()?,
                        })
                    })
                    .collect::<Option<Vec<LoopFact>>>()?,
            })
        })
        .collect::<Option<Vec<FnFact>>>()?;
    Some(FileAnalysis {
        findings,
        allows,
        annotation_warnings,
        structs,
        validate_idents,
        has_validate,
        fns,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash("fn main() {}"), content_hash("fn main() {}"));
        assert_ne!(content_hash("fn main() {}"), content_hash("fn main() { }"));
    }

    #[test]
    fn facts_round_trip_through_the_value_tree() {
        let lexed = crate::lexer::lex(
            "// lint: allow(L001, audited scratch index)\n\
             pub struct CoreConfig { pub width: usize }\n\
             pub fn validate(c: &CoreConfig) -> bool { c.width > 0 }\n\
             impl Runner { fn run(&self) { for x in 0..3 { solve(x); check(); } } }\n\
             fn bad(v: &[u32]) -> u32 { v[0] }\n",
        );
        let ir = crate::parse::parse(&lexed);
        let facts = crate::rules::analyze(
            "crates/demo/src/lib.rs",
            &lexed,
            &ir,
            crate::rules::AnalyzeOptions::default(),
        );
        let v = facts_to_val(&facts);
        let text = v.render();
        let back = facts_from_val("crates/demo/src/lib.rs", &Val::parse(&text).expect("parse"))
            .expect("facts");
        assert_eq!(back, facts);
        assert!(!back.fns.is_empty());
        assert!(back.fns.iter().any(|f| !f.loops.is_empty()));
    }

    #[test]
    fn cache_take_hits_only_on_matching_hash() {
        let dir = std::env::temp_dir().join("mcpat_lint_cache_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.json");

        let lexed = crate::lexer::lex("pub fn ok() {}\n");
        let ir = crate::parse::parse(&lexed);
        let facts =
            crate::rules::analyze("a.rs", &lexed, &ir, crate::rules::AnalyzeOptions::default());
        let hash = content_hash("pub fn ok() {}\n");

        let mut cache = Cache::default();
        assert!(cache.take("a.rs", hash).is_none());
        cache.put("a.rs", hash, &facts);
        cache.store(&path).expect("store");

        let mut warm = Cache::load(&path);
        assert_eq!(warm.take("a.rs", hash), Some(facts));
        assert!(warm.take("a.rs", hash.wrapping_add(1)).is_none());
        assert!(warm.take("missing.rs", hash).is_none());
        assert_eq!(warm.hits, 1);
        assert_eq!(warm.misses, 2);

        // Corruption and version skew degrade to a cold cache.
        std::fs::write(&path, "{not json").expect("write");
        assert!(Cache::load(&path).old.is_empty());
        std::fs::write(&path, "{\"version\": 999, \"files\": {}}").expect("write");
        assert!(Cache::load(&path).old.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
