//! SARIF 2.1.0 rendering (`--sarif FILE`) so CI can upload the lint
//! report as code-scanning annotations.
//!
//! The document is the minimal shape GitHub's `upload-sarif` action
//! accepts: one run, a tool driver carrying the rule table (id + one
//! line invariant), and one result per finding with a physical
//! location. Severities map 1:1 (`error` → `error`, warnings —
//! annotation hygiene — → `warning`).

use crate::json::Val;
use crate::rules::Rule;
use crate::Report;
use mcpat_diag::Severity;

fn s(text: &str) -> Val {
    Val::Str(text.to_owned())
}

fn text_obj(text: &str) -> Val {
    Val::Obj(vec![(String::from("text"), s(text))])
}

/// Renders a report as a SARIF 2.1.0 document.
#[must_use]
pub fn to_sarif(report: &Report) -> String {
    let rules = Rule::all()
        .iter()
        .map(|r| {
            Val::Obj(vec![
                (String::from("id"), s(r.id())),
                (String::from("shortDescription"), text_obj(r.summary())),
                (
                    String::from("defaultConfiguration"),
                    Val::Obj(vec![(String::from("level"), s(level(r.severity())))]),
                ),
            ])
        })
        .collect();

    let results = report
        .findings
        .iter()
        .map(|f| {
            Val::Obj(vec![
                (String::from("ruleId"), s(f.rule.id())),
                (String::from("level"), s(level(f.severity))),
                (String::from("message"), text_obj(&f.message)),
                (
                    String::from("locations"),
                    Val::Arr(vec![Val::Obj(vec![(
                        String::from("physicalLocation"),
                        Val::Obj(vec![
                            (
                                String::from("artifactLocation"),
                                Val::Obj(vec![
                                    (String::from("uri"), s(&f.file)),
                                    (String::from("uriBaseId"), s("%SRCROOT%")),
                                ]),
                            ),
                            (
                                String::from("region"),
                                Val::Obj(vec![(
                                    String::from("startLine"),
                                    Val::Num(f.line as f64),
                                )]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();

    let doc = Val::Obj(vec![
        (
            String::from("$schema"),
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        (String::from("version"), s("2.1.0")),
        (
            String::from("runs"),
            Val::Arr(vec![Val::Obj(vec![
                (
                    String::from("tool"),
                    Val::Obj(vec![(
                        String::from("driver"),
                        Val::Obj(vec![
                            (String::from("name"), s("mcpat-lint")),
                            (
                                String::from("informationUri"),
                                s("https://github.com/mcpat-rs/mcpat-rs"),
                            ),
                            (String::from("rules"), Val::Arr(rules)),
                        ]),
                    )]),
                ),
                (String::from("results"), Val::Arr(results)),
            ])]),
        ),
    ]);
    let mut out = doc.render();
    out.push('\n');
    out
}

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::lint_source;

    #[test]
    fn sarif_document_carries_findings_and_rule_table() {
        let report = lint_source("bad.rs", "pub fn f(v: &[u32]) -> u32 { v[0] }\n");
        let sarif = to_sarif(&report);
        let doc = Val::parse(&sarif).expect("valid json");
        assert_eq!(doc.get("version").and_then(Val::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Val::as_arr).expect("runs");
        let run = runs.first().expect("one run");
        let results = run.get("results").and_then(Val::as_arr).expect("results");
        assert_eq!(results.len(), report.findings.len());
        let first = results.first().expect("finding");
        assert_eq!(first.get("ruleId").and_then(Val::as_str), Some("L001"));
        assert_eq!(first.get("level").and_then(Val::as_str), Some("error"));
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Val::as_arr)
            .expect("rules");
        assert_eq!(rules.len(), Rule::all().len());
    }

    #[test]
    fn empty_report_is_still_a_valid_run() {
        let report = lint_source("ok.rs", "pub fn ok() {}\n");
        let doc = Val::parse(&to_sarif(&report)).expect("valid json");
        let runs = doc.get("runs").and_then(Val::as_arr).expect("runs");
        let results = runs
            .first()
            .and_then(|r| r.get("results"))
            .and_then(Val::as_arr)
            .expect("results");
        assert!(results.is_empty());
    }
}
