//! A minimal JSON value tree with a total parser and a canonical
//! writer — just enough for the incremental cache ([`crate::cache`])
//! to round-trip its own output.
//!
//! The linter deliberately depends on nothing but `mcpat-diag`, and it
//! lints its own sources, so this module follows the house rules: no
//! panicking indexing, no unwraps, a recursion cap instead of trusting
//! the input. Anything the parser cannot understand yields `None`, and
//! the cache treats that as a cold start — never an error.

/// One JSON value. Numbers are kept as `f64`; the cache stores
/// anything wider (content hashes) as hex strings instead.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Val>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Val)>),
}

/// Nesting depth beyond which the parser gives up: the cache writer
/// never nests past ~8, so 64 is pure defense.
const MAX_DEPTH: usize = 64;

impl Val {
    /// Parses a complete JSON document; `None` on any syntax error or
    /// trailing garbage.
    #[must_use]
    pub fn parse(text: &str) -> Option<Val> {
        let chars: Vec<char> = text.chars().collect();
        let mut pos = 0usize;
        let v = parse_value(&chars, &mut pos, 0)?;
        skip_ws(&chars, &mut pos);
        (pos == chars.len()).then_some(v)
    }

    /// Serializes the value, compact.
    pub fn write(&self, out: &mut String) {
        match self {
            Val::Null => out.push_str("null"),
            Val::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Val::Num(n) => {
                // Integral values print without the trailing `.0` so the
                // output matches what a hand-written emitter produces.
                // lint: allow(L002, integrality test for canonical printing, not a value comparison)
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Val::Str(s) => write_str(s, out),
            Val::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Val::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The value rendered as a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Non-negative integral payload, if this is such a number.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            // lint: allow(L002, integrality test guarding the cast, not a value comparison)
            Val::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9.0e15 => Some(*n as usize),
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Val]> {
        match self {
            Val::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Object entries in insertion order, if this is an object.
    #[must_use]
    pub fn entries(&self) -> Option<&[(String, Val)]> {
        match self {
            Val::Obj(entries) => Some(entries.as_slice()),
            _ => None,
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn peek(chars: &[char], pos: usize) -> Option<char> {
    chars.get(pos).copied()
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while peek(chars, *pos).is_some_and(|c| c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        *pos = pos.saturating_add(1);
    }
}

/// Consumes `lit` (after the first char, already matched) or fails.
fn expect_lit(chars: &[char], pos: &mut usize, lit: &str) -> Option<()> {
    for want in lit.chars() {
        if peek(chars, *pos) != Some(want) {
            return None;
        }
        *pos = pos.saturating_add(1);
    }
    Some(())
}

fn parse_value(chars: &[char], pos: &mut usize, depth: usize) -> Option<Val> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(chars, pos);
    match peek(chars, *pos)? {
        'n' => expect_lit(chars, pos, "null").map(|()| Val::Null),
        't' => expect_lit(chars, pos, "true").map(|()| Val::Bool(true)),
        'f' => expect_lit(chars, pos, "false").map(|()| Val::Bool(false)),
        '"' => parse_string(chars, pos).map(Val::Str),
        '[' => {
            *pos = pos.saturating_add(1);
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if peek(chars, *pos) == Some(']') {
                *pos = pos.saturating_add(1);
                return Some(Val::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos, depth.saturating_add(1))?);
                skip_ws(chars, pos);
                match peek(chars, *pos)? {
                    ',' => *pos = pos.saturating_add(1),
                    ']' => {
                        *pos = pos.saturating_add(1);
                        return Some(Val::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        '{' => {
            *pos = pos.saturating_add(1);
            let mut entries = Vec::new();
            skip_ws(chars, pos);
            if peek(chars, *pos) == Some('}') {
                *pos = pos.saturating_add(1);
                return Some(Val::Obj(entries));
            }
            loop {
                skip_ws(chars, pos);
                let key = parse_string(chars, pos)?;
                skip_ws(chars, pos);
                if peek(chars, *pos) != Some(':') {
                    return None;
                }
                *pos = pos.saturating_add(1);
                entries.push((key, parse_value(chars, pos, depth.saturating_add(1))?));
                skip_ws(chars, pos);
                match peek(chars, *pos)? {
                    ',' => *pos = pos.saturating_add(1),
                    '}' => {
                        *pos = pos.saturating_add(1);
                        return Some(Val::Obj(entries));
                    }
                    _ => return None,
                }
            }
        }
        c if c == '-' || c.is_ascii_digit() => parse_number(chars, pos),
        _ => None,
    }
}

fn parse_string(chars: &[char], pos: &mut usize) -> Option<String> {
    if peek(chars, *pos) != Some('"') {
        return None;
    }
    *pos = pos.saturating_add(1);
    let mut out = String::new();
    loop {
        let c = peek(chars, *pos)?;
        *pos = pos.saturating_add(1);
        match c {
            '"' => return Some(out),
            '\\' => {
                let esc = peek(chars, *pos)?;
                *pos = pos.saturating_add(1);
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let h = peek(chars, *pos)?.to_digit(16)?;
                            code = code.saturating_mul(16).saturating_add(h);
                            *pos = pos.saturating_add(1);
                        }
                        // Surrogates are not paired up — the writer
                        // never emits them (it only escapes controls).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return None,
                }
            }
            c => out.push(c),
        }
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> Option<Val> {
    let start = *pos;
    if peek(chars, *pos) == Some('-') {
        *pos = pos.saturating_add(1);
    }
    while peek(chars, *pos).is_some_and(|c| {
        c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-'
    }) {
        *pos = pos.saturating_add(1);
    }
    let text: String = chars.get(start..*pos)?.iter().collect();
    text.parse::<f64>().ok().map(Val::Num)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_cache_shapes() {
        let v = Val::Obj(vec![
            (String::from("version"), Val::Num(3.0)),
            (
                String::from("files"),
                Val::Obj(vec![(
                    String::from("a.rs"),
                    Val::Obj(vec![
                        (String::from("hash"), Val::Str(String::from("deadbeef"))),
                        (String::from("ok"), Val::Bool(true)),
                        (
                            String::from("lines"),
                            Val::Arr(vec![Val::Num(1.0), Val::Num(2.0)]),
                        ),
                        (String::from("none"), Val::Null),
                    ]),
                )]),
            ),
        ]);
        let text = v.render();
        let back = Val::parse(&text).expect("round trip");
        assert_eq!(back, v);
        assert_eq!(back.get("version").and_then(Val::as_usize), Some(3));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Val::Str(String::from("a\"b\\c\nd\te\u{1}"));
        let text = v.render();
        assert_eq!(Val::parse(&text), Some(v));
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1e", "\"\\q\"", "{} extra",
        ] {
            assert_eq!(Val::parse(bad), None, "{bad}");
        }
        let deep = "[".repeat(500);
        assert_eq!(Val::parse(&deep), None);
    }

    #[test]
    fn numbers_parse_and_print() {
        assert_eq!(Val::parse("-12"), Some(Val::Num(-12.0)));
        assert_eq!(Val::parse("3.5e2"), Some(Val::Num(350.0)));
        assert_eq!(Val::Num(42.0).render(), "42");
    }
}
