//! A small, string/char/comment-aware Rust lexer.
//!
//! The invariant rules in [`crate::rules`] need token streams, not
//! grapheme soup: `x[i]` inside a string literal or a doc comment is
//! not an indexing expression, `'a` in `&'a str` is not an unclosed
//! char literal, and `1.0` must come out as *one float token* so that
//! `x == 1.0` is recognizable. That is all this lexer guarantees — it
//! does not build an AST, resolve macros, or validate syntax. Anything
//! it cannot classify is emitted as punctuation and ignored by the
//! rules.
//!
//! Comments are not discarded: they carry the `// lint: allow(...)`
//! annotations, so they are returned alongside the token stream with
//! their line numbers and whether they had code before them on the
//! same line.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (`foo`, `fn`, `self`).
    Ident,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// An integer literal (`42`, `0xFF`, `10usize`).
    Int,
    /// A floating-point literal (`1.0`, `2e-3`, `0.5f32`).
    Float,
    /// A string or byte-string literal, raw or not.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Any operator or delimiter (`::`, `==`, `[`, `.`).
    Punct,
}

/// One lexed token with its 1-based source line and byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexeme class.
    pub kind: Kind,
    /// The token text. For [`Kind::Str`] and [`Kind::Char`] this is a
    /// placeholder, not the literal's contents — no rule looks inside.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
    /// Byte offset one past the token's last byte. Invariants (fuzzed
    /// in `tests/fuzz.rs`): `start <= end <= src.len()`, and both fall
    /// on UTF-8 character boundaries.
    pub end: usize,
}

/// One `//` line comment (doc comments included), with position info
/// the allow-annotation parser needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text after the `//`, untrimmed.
    pub text: String,
    /// 1-based line the comment is on.
    pub line: usize,
    /// Byte offset of the `//` that opens the comment.
    pub start: usize,
    /// True when a token precedes the comment on the same line
    /// (a *trailing* comment annotates its own line; an *own-line*
    /// comment annotates the next token-bearing line).
    pub trailing: bool,
}

/// The full result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All `//` comments in source order.
    pub comments: Vec<Comment>,
}

/// Rust's strict and reserved keywords, minus `self`: the rules treat
/// `self[i]` as a real indexing expression, so `self` stays an
/// ordinary (indexable) identifier for their purposes.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "do", "dyn", "else",
    "enum", "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match",
    "mod", "move", "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true",
    "try", "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// True for every keyword that cannot be the tail of an expression
/// (see [`KEYWORDS`] for the deliberate `self` exception).
#[must_use]
pub fn is_keyword(ident: &str) -> bool {
    KEYWORDS.contains(&ident)
}

/// Character cursor over the source with safe lookahead.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    byte: usize,
}

impl Cursor {
    fn new(src: &str) -> Cursor {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            byte: 0,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos.saturating_add(ahead)).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0);
        if let Some(ch) = c {
            self.pos = self.pos.saturating_add(1);
            self.byte = self.byte.saturating_add(ch.len_utf8());
            if ch == '\n' {
                self.line = self.line.saturating_add(1);
            }
        }
        c
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek(0) {
            if pred(c) {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into tokens and comments. Total: never panics, never
/// fails — unrecognizable bytes come out as single-char punctuation.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    // Line of the most recently emitted token, to mark comments as
    // trailing when they share it.
    let mut last_token_line = 0usize;

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        let start = cur.byte;

        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Line comments, doc comments included.
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            let text = cur.eat_while(|ch| ch != '\n');
            out.comments.push(Comment {
                text,
                line,
                start,
                trailing: last_token_line == line,
            });
            continue;
        }

        // Block comments, nested per Rust.
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth = depth.saturating_add(1);
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth = depth.saturating_sub(1);
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }

        // Raw and byte strings: r"..", r#".."#, b"..", br#".."#. A raw
        // prefix only counts when hashes (if any) are followed by a
        // quote — `r#type` is a raw identifier, not a string.
        if matches!(c, 'r' | 'b') {
            let raw_quote_after = |start: usize| {
                let mut k = start;
                while cur.peek(k) == Some('#') {
                    k = k.saturating_add(1);
                }
                cur.peek(k) == Some('"')
            };
            let (skip, is_raw) = match (c, cur.peek(1)) {
                ('r', Some('"' | '#')) if raw_quote_after(1) => (1usize, true),
                ('b', Some('r')) if raw_quote_after(2) => (2, true),
                ('b', Some('"')) => (1, false),
                ('b', Some('\'')) => {
                    // Byte literal b'x': delegate to the char branch by
                    // consuming the `b` here.
                    cur.bump();
                    lex_char_literal(&mut cur);
                    out.tokens.push(Token {
                        kind: Kind::Char,
                        text: String::from("<byte>"),
                        line,
                        start,
                        end: cur.byte,
                    });
                    last_token_line = line;
                    continue;
                }
                _ => (0, false),
            };
            if skip > 0 {
                for _ in 0..skip {
                    cur.bump();
                }
                if is_raw {
                    let hashes = cur.eat_while(|ch| ch == '#').chars().count();
                    cur.bump(); // opening quote
                    lex_raw_string_body(&mut cur, hashes);
                } else {
                    cur.bump(); // opening quote
                    lex_string_body(&mut cur);
                }
                out.tokens.push(Token {
                    kind: Kind::Str,
                    text: String::from("<str>"),
                    line,
                    start,
                    end: cur.byte,
                });
                last_token_line = line;
                continue;
            }
        }

        // Identifiers and keywords (including the r/b that fell
        // through above).
        if is_ident_start(c) {
            let text = cur.eat_while(is_ident_continue);
            out.tokens.push(Token {
                kind: Kind::Ident,
                text,
                line,
                start,
                end: cur.byte,
            });
            last_token_line = line;
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let after_dot = out
                .tokens
                .last()
                .is_some_and(|t| t.kind == Kind::Punct && t.text == ".");
            let kind = lex_number(&mut cur, after_dot);
            out.tokens.push(Token {
                kind,
                text: String::from("<num>"),
                line,
                start,
                end: cur.byte,
            });
            last_token_line = line;
            continue;
        }

        // Plain strings.
        if c == '"' {
            cur.bump();
            lex_string_body(&mut cur);
            out.tokens.push(Token {
                kind: Kind::Str,
                text: String::from("<str>"),
                line,
                start,
                end: cur.byte,
            });
            last_token_line = line;
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            let next = cur.peek(1);
            let is_lifetime = match next {
                Some(n) if is_ident_start(n) => {
                    // 'a' is a char, 'a is a lifetime: decide by the
                    // char after the identifier run.
                    let mut k = 2usize;
                    while cur.peek(k).is_some_and(is_ident_continue) {
                        k = k.saturating_add(1);
                    }
                    cur.peek(k) != Some('\'') || k > 2
                }
                _ => false,
            };
            if is_lifetime {
                cur.bump(); // the quote
                let name = cur.eat_while(is_ident_continue);
                out.tokens.push(Token {
                    kind: Kind::Lifetime,
                    text: name,
                    line,
                    start,
                    end: cur.byte,
                });
            } else {
                lex_char_literal(&mut cur);
                out.tokens.push(Token {
                    kind: Kind::Char,
                    text: String::from("<char>"),
                    line,
                    start,
                    end: cur.byte,
                });
            }
            last_token_line = line;
            continue;
        }

        // Multi-char operators, longest first.
        let matched = PUNCTS.iter().find(|p| {
            p.chars()
                .enumerate()
                .all(|(i, want)| cur.peek(i) == Some(want))
        });
        if let Some(p) = matched {
            for _ in 0..p.chars().count() {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: Kind::Punct,
                text: (*p).to_owned(),
                line,
                start,
                end: cur.byte,
            });
            last_token_line = line;
            continue;
        }

        // Single-char punctuation (or anything unrecognized).
        cur.bump();
        out.tokens.push(Token {
            kind: Kind::Punct,
            text: c.to_string(),
            line,
            start,
            end: cur.byte,
        });
        last_token_line = line;
    }

    out
}

/// Consumes a string body after the opening quote, honoring `\`
/// escapes. Stops after the closing quote or at end of input.
fn lex_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string body after the opening quote; `hashes` is the
/// number of `#` between the `r` and the quote.
fn lex_raw_string_body(cur: &mut Cursor, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut seen = 0usize;
            while seen < hashes && cur.peek(0) == Some('#') {
                cur.bump();
                seen = seen.saturating_add(1);
            }
            if seen == hashes {
                break;
            }
        }
    }
}

/// Consumes a char/byte literal starting at the opening quote.
fn lex_char_literal(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

/// Consumes a numeric literal whose first digit is under the cursor
/// and classifies it as [`Kind::Int`] or [`Kind::Float`].
///
/// `after_dot` marks tuple-index position (`pair.0`): there the digits
/// are always an integer index and a following `.` belongs to the next
/// field access, never to a fraction.
fn lex_number(cur: &mut Cursor, after_dot: bool) -> Kind {
    // Radix prefixes are always integers.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return Kind::Int;
    }
    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    if after_dot {
        return Kind::Int;
    }
    let mut is_float = false;
    // Fractional part: a dot NOT followed by another dot (range) or an
    // identifier start (method call / tuple chain).
    if cur.peek(0) == Some('.') {
        let next = cur.peek(1);
        let fraction = match next {
            Some(n) => n.is_ascii_digit() || !(n == '.' || is_ident_start(n)),
            None => true,
        };
        if fraction {
            is_float = true;
            cur.bump();
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (s1, s2) = (cur.peek(1), cur.peek(2));
        let exp = match s1 {
            Some(d) if d.is_ascii_digit() => true,
            Some('+' | '-') => s2.is_some_and(|d| d.is_ascii_digit()),
            _ => false,
        };
        if exp {
            is_float = true;
            cur.bump(); // e
            cur.bump(); // sign or first digit
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix.
    let suffix = cur.eat_while(is_ident_continue);
    if suffix.starts_with('f') {
        is_float = true;
    }
    if is_float {
        Kind::Float
    } else {
        Kind::Int
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let l = lex("let s = \"x[i].unwrap()\"; // y[j] == 1.0\n/* z[k] */ foo");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "y" && t.text != "z"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments.first().unwrap().trailing);
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let l = lex("let s = r#\"a \" b [0]\"#; after");
        assert!(l.tokens.iter().any(|t| t.text == "after"));
        assert!(!l.tokens.iter().any(|t| t.text == "b"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x } 'x'");
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "a"]);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == Kind::Char).count(),
            1,
            "{:?}",
            l.tokens
        );
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let got = kinds("1 1.0 1e9 2e-3 0.5f32 10usize 0xFF 1_000.5 7f64");
        let want_kinds = [
            Kind::Int,
            Kind::Float,
            Kind::Float,
            Kind::Float,
            Kind::Float,
            Kind::Int,
            Kind::Int,
            Kind::Float,
            Kind::Float,
        ];
        let got_kinds: Vec<Kind> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(got_kinds, want_kinds);
    }

    #[test]
    fn ranges_and_tuple_indices_are_not_floats() {
        let got = kinds("0..10 x.0 x.0.1 1.max(2)");
        assert!(
            got.iter().all(|(k, _)| *k != Kind::Float),
            "no float expected in {got:?}"
        );
    }

    #[test]
    fn operators_munch_maximally() {
        let got = kinds("a == b != c :: d => e -> f ..= g");
        let puncts: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == Kind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "=>", "->", "..="]);
    }

    #[test]
    fn own_line_vs_trailing_comments() {
        let l = lex("// own line\nlet x = 1; // trailing\n");
        assert_eq!(l.comments.len(), 2);
        assert!(!l.comments.first().unwrap().trailing);
        assert!(l.comments.get(1).unwrap().trailing);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let l = lex("/* one\ntwo */\nlet s = \"a\nb\";\nfoo");
        let foo = l.tokens.iter().find(|t| t.text == "foo").unwrap();
        assert_eq!(foo.line, 5);
    }
}
