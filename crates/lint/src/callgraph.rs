//! The cross-crate call graph and budget-checkpoint reachability.
//!
//! Built from per-file function summaries (name, enclosing impl type,
//! call sites), the graph answers one question for L012: *starting
//! from this call, can execution reach an `mcpat-guard` checkpoint
//! within a bounded number of frames?* PR 6 wired checkpoints into
//! every long path; L008 could only see a checkpoint spelled out in
//! the loop body itself, which forced audited allows on every loop
//! whose callee checkpoints internally (`Processor::build`, the array
//! solver). Reachability retires those.
//!
//! Resolution is name-based — the linter has no type information — but
//! hint-narrowed and *optimistic*:
//!
//! 1. A path call `Type::f(...)` prefers functions in an `impl Type`;
//!    a path call `mcpat_xyz::f(...)` prefers functions in crate `xyz`.
//! 2. A bare or method call prefers candidates in the calling crate,
//!    then falls back to the whole workspace.
//! 3. A call reaches a checkpoint if **any** candidate does.
//!
//! Optimism keeps false positives down (the lint gate runs at zero
//! findings); the single-file fixtures exercise the precise behavior.
//! Test functions are never candidates — a test helper sharing a
//! production name must not vouch for reachability.

use std::collections::BTreeMap;

/// Checkpoint idents that satisfy budget reachability when called:
/// the `mcpat_guard` entry points and the crate-local wrappers that
/// forward to them.
pub const BUDGET_CHECKS: &[&str] = &["check", "check_self", "budget_check", "checkpoint"];

/// Maximum frames between a loop body and a checkpoint for L012 to
/// accept it: the loop's own call is frame 1, so a chain
/// `loop → build → build_inner → check()` resolves at depth 3.
pub const MAX_CHECKPOINT_DEPTH: usize = 4;

/// One call site as the graph sees it: the callee's final segment plus
/// any leading path segments (hints for resolution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRef {
    /// Final path segment (`build`, `check`).
    pub name: String,
    /// Leading segments of a path call (`Processor::build` →
    /// `["Processor"]`); empty for bare and method calls.
    pub path: Vec<String>,
}

impl CallRef {
    /// Whether this call *is* a checkpoint invocation, directly: the
    /// name is one of [`BUDGET_CHECKS`] (optionally qualified through
    /// `mcpat_guard`). Matches L008's historical syntactic test, so a
    /// crate-local wrapper named `checkpoint` still counts.
    #[must_use]
    pub fn is_checkpoint(&self) -> bool {
        BUDGET_CHECKS.contains(&self.name.as_str())
    }
}

/// One function node contributed by a file summary.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Owning crate (directory name under `crates/`).
    pub crate_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, if associated.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the fn lives in a test region (never a candidate).
    pub is_test: bool,
    /// Every call expression in the body.
    pub calls: Vec<CallRef>,
}

/// The workspace call graph with checkpoint depths precomputed.
#[derive(Debug, Default)]
pub struct CallGraph {
    nodes: Vec<FnNode>,
    /// name → indices of non-test nodes bearing it.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Minimum frames from this node's entry to a checkpoint call:
    /// `Some(0)` when the body calls one directly, `Some(1)` when a
    /// callee does, … `None` when no checkpoint is reachable at all.
    depth: Vec<Option<usize>>,
}

/// Normalizes a crate-path segment to the workspace directory name:
/// `mcpat_guard` / `mcpat-guard` → `guard`, `mcpat` → `core` (the
/// umbrella modeling crate lives in `crates/core`).
fn crate_of_segment(seg: &str) -> Option<&str> {
    let norm = seg
        .strip_prefix("mcpat_")
        .or_else(|| seg.strip_prefix("mcpat-"));
    match norm {
        Some(rest) => Some(rest),
        None if seg == "mcpat" => Some("core"),
        None => None,
    }
}

impl CallGraph {
    /// Builds the graph and runs the checkpoint-depth fixed point.
    #[must_use]
    pub fn build(nodes: Vec<FnNode>) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if !n.is_test {
                by_name.entry(n.name.clone()).or_default().push(i);
            }
        }
        let mut graph = CallGraph {
            depth: vec![None; nodes.len()],
            nodes,
            by_name,
        };

        // Seed: bodies that call a checkpoint directly.
        for (i, n) in graph.nodes.iter().enumerate() {
            if n.calls.iter().any(CallRef::is_checkpoint) {
                if let Some(d) = graph.depth.get_mut(i) {
                    *d = Some(0);
                }
            }
        }

        // Fixed point over callee depths. Depths only decrease and are
        // bounded by MAX_CHECKPOINT_DEPTH, so this terminates after at
        // most that many sweeps.
        for _ in 0..MAX_CHECKPOINT_DEPTH {
            let mut changed = false;
            for i in 0..graph.nodes.len() {
                let current = graph.depth.get(i).copied().flatten();
                if current == Some(0) {
                    continue;
                }
                let calls = graph
                    .nodes
                    .get(i)
                    .map(|n| n.calls.clone())
                    .unwrap_or_default();
                let from_crate = graph
                    .nodes
                    .get(i)
                    .map(|n| n.crate_name.clone())
                    .unwrap_or_default();
                let mut best = current;
                for call in &calls {
                    for cand in graph.resolve(&from_crate, call) {
                        if let Some(d) = graph.depth.get(cand).copied().flatten() {
                            let through = d.saturating_add(1);
                            if through < MAX_CHECKPOINT_DEPTH && best.is_none_or(|b| through < b) {
                                best = Some(through);
                            }
                        }
                    }
                }
                if best != current {
                    if let Some(d) = graph.depth.get_mut(i) {
                        *d = best;
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        graph
    }

    /// All nodes (for reporting).
    #[must_use]
    pub fn nodes(&self) -> &[FnNode] {
        &self.nodes
    }

    /// Candidate node indices for a call, hint-narrowed per the module
    /// docs. Empty when the callee is opaque (closure parameters,
    /// std/vendored functions).
    #[must_use]
    pub fn resolve(&self, from_crate: &str, call: &CallRef) -> Vec<usize> {
        let Some(all) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        // Path hints: `Type::f` narrows by impl type, `mcpat_xyz::f`
        // narrows by crate.
        if let Some(last) = call.path.last() {
            let by_impl: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| {
                    self.nodes
                        .get(i)
                        .is_some_and(|n| n.impl_type.as_deref() == Some(last.as_str()))
                })
                .collect();
            if !by_impl.is_empty() {
                return by_impl;
            }
            if let Some(crate_name) = call.path.first().and_then(|s| crate_of_segment(s)) {
                let by_crate: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.nodes
                            .get(i)
                            .is_some_and(|n| n.crate_name == crate_name)
                    })
                    .collect();
                if !by_crate.is_empty() {
                    return by_crate;
                }
            }
        }
        // Same-crate preference, then the whole workspace.
        let same: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| {
                self.nodes
                    .get(i)
                    .is_some_and(|n| n.crate_name == from_crate)
            })
            .collect();
        if same.is_empty() {
            all.clone()
        } else {
            same
        }
    }

    /// Minimum checkpoint depth of a node, when reachable.
    #[must_use]
    pub fn checkpoint_depth(&self, node: usize) -> Option<usize> {
        self.depth.get(node).copied().flatten()
    }

    /// Whether *invoking* this call can reach a checkpoint within
    /// [`MAX_CHECKPOINT_DEPTH`] frames: the call itself is frame 1.
    /// A direct checkpoint invocation trivially qualifies.
    #[must_use]
    pub fn call_reaches_checkpoint(&self, from_crate: &str, call: &CallRef) -> bool {
        if call.is_checkpoint() {
            return true;
        }
        self.resolve(from_crate, call).iter().any(|&i| {
            self.checkpoint_depth(i)
                .is_some_and(|d| d.saturating_add(1) <= MAX_CHECKPOINT_DEPTH)
        })
    }

    /// Whether the call resolves to at least one known function.
    #[must_use]
    pub fn resolves(&self, from_crate: &str, call: &CallRef) -> bool {
        !self.resolve(from_crate, call).is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn node(crate_name: &str, name: &str, impl_type: Option<&str>, calls: &[&str]) -> FnNode {
        FnNode {
            crate_name: crate_name.to_owned(),
            file: format!("crates/{crate_name}/src/lib.rs"),
            name: name.to_owned(),
            impl_type: impl_type.map(str::to_owned),
            line: 1,
            is_test: false,
            calls: calls
                .iter()
                .map(|c| CallRef {
                    name: (*c).to_owned(),
                    path: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn direct_and_transitive_depths() {
        let g = CallGraph::build(vec![
            node("guard", "check", None, &[]),
            node("array", "solve_inner", None, &["check"]),
            node("array", "solve", None, &["solve_inner"]),
            node("core", "build", Some("Processor"), &["solve"]),
            node("circuit", "pure_math", None, &["mul"]),
        ]);
        assert_eq!(g.checkpoint_depth(1), Some(0));
        assert_eq!(g.checkpoint_depth(2), Some(1));
        assert_eq!(g.checkpoint_depth(3), Some(2));
        assert_eq!(g.checkpoint_depth(4), None);
    }

    #[test]
    fn calls_reach_through_the_chain_but_not_past_the_bound() {
        let g = CallGraph::build(vec![
            node("guard", "budget_check", None, &[]),
            node("a", "f1", None, &["budget_check"]),
            node("a", "f2", None, &["f1"]),
            node("a", "f3", None, &["f2"]),
            node("a", "f4", None, &["f3"]),
            node("a", "f5", None, &["f4"]),
        ]);
        let call = |n: &str| CallRef {
            name: n.to_owned(),
            path: Vec::new(),
        };
        assert!(g.call_reaches_checkpoint("a", &call("f1")));
        assert!(g.call_reaches_checkpoint("a", &call("f3")));
        // f5 is 5 frames from the checkpoint: past the bound.
        assert!(!g.call_reaches_checkpoint("a", &call("f5")));
        // Unknown callees are opaque, not reaching.
        assert!(!g.call_reaches_checkpoint("a", &call("mystery")));
        // A literal checkpoint call always qualifies.
        assert!(g.call_reaches_checkpoint("a", &call("check")));
    }

    #[test]
    fn same_crate_candidates_shadow_the_workspace() {
        // `build` in crate "circuit" does NOT checkpoint; the one in
        // crate "core" does. A circuit-crate call must bind locally.
        let g = CallGraph::build(vec![
            node("guard", "check", None, &[]),
            node("circuit", "build", Some("RepeatedWire"), &["mul"]),
            node("core", "build", Some("Processor"), &["check"]),
        ]);
        let bare = CallRef {
            name: String::from("build"),
            path: Vec::new(),
        };
        assert!(!g.call_reaches_checkpoint("circuit", &bare));
        assert!(g.call_reaches_checkpoint("bench", &bare));
        // An impl-type hint overrides crate preference.
        let hinted = CallRef {
            name: String::from("build"),
            path: vec![String::from("Processor")],
        };
        assert!(g.call_reaches_checkpoint("circuit", &hinted));
    }

    #[test]
    fn test_fns_are_never_candidates() {
        let mut helper = node("a", "build", None, &["check"]);
        helper.is_test = true;
        let g = CallGraph::build(vec![node("guard", "check", None, &[]), helper]);
        let call = CallRef {
            name: String::from("build"),
            path: Vec::new(),
        };
        assert!(!g.call_reaches_checkpoint("a", &call));
    }

    #[test]
    fn crate_path_hints_narrow() {
        let g = CallGraph::build(vec![
            node("guard", "enter", None, &["check"]),
            node("obs", "enter", None, &["noop"]),
        ]);
        let hinted = CallRef {
            name: String::from("enter"),
            path: vec![String::from("mcpat_obs")],
        };
        // Narrowed to the obs crate, which does not checkpoint.
        assert!(!g.call_reaches_checkpoint("bench", &hinted));
        let guard_hinted = CallRef {
            name: String::from("enter"),
            path: vec![String::from("mcpat_guard")],
        };
        assert!(g.call_reaches_checkpoint("bench", &guard_hinted));
    }
}
