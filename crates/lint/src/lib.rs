//! # mcpat-lint — the workspace invariant checker
//!
//! PR 1 made the modeling core panic-free and PR 2 made it concurrent;
//! this crate makes those properties *enforced* instead of
//! conventional. It tokenizes every `crates/*/src` file with a small
//! hand-rolled lexer ([`lexer`]) — no rustc plumbing, no network —
//! builds a per-file structural IR ([`parse`], [`ir`]: items, impls,
//! functions, loops, calls, `use` resolution) and a cross-crate call
//! graph ([`callgraph`]), and checks the project invariants as named
//! rules ([`rules`]) with `file:line` diagnostics that reuse
//! [`mcpat_diag::Severity`].
//!
//! Run it as `cargo lint` (alias for `cargo run -p mcpat-lint`; exit
//! code 1 on violations). `--json`/`--sarif` emit machine-readable
//! reports; `--cache FILE` skips re-analysis of unchanged files by
//! content hash ([`cache`]). A violation that is genuinely fine
//! carries a `// lint: allow(L00n, reason)` annotation at the site;
//! the reason is mandatory and unused annotations are themselves
//! reported, so the set of exceptions stays audited.
//!
//! The pipeline has two stages. Per file (pure in the file's bytes,
//! hence cacheable): lex → parse → single-file rules → *facts* (allow
//! annotations, L004 struct/validate evidence, L008/L012 function
//! summaries). Globally (always re-run, cheap): the per-crate L004
//! pass, the call-graph build and checkpoint-reachability pass, allow
//! application.
//!
//! See `DESIGN.md` § "Static analysis & invariants" for the rationale
//! behind each rule.

pub mod cache;
pub mod callgraph;
pub mod ir;
mod json;
pub mod lexer;
pub mod parse;
pub mod rules;
mod sarif;

use callgraph::{CallGraph, FnNode};
use rules::{Allow, AnalyzeOptions, CrateValidation, FileAnalysis, Finding};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The result of linting a set of sources.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived allow suppression, sorted by file/line.
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when any finding is an error (exit code 1).
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity == mcpat_diag::Severity::Error)
    }

    /// Error findings only.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == mcpat_diag::Severity::Error)
            .count()
    }

    /// Warning findings only.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.findings.len().saturating_sub(self.error_count())
    }

    /// Renders the report as a JSON document (hand-rolled — the linter
    /// deliberately depends on nothing but `mcpat-diag`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"files_scanned\": {},\n  \"errors\": {},\n  \"warnings\": {},\n  \"findings\": [",
            self.files_scanned,
            self.error_count(),
            self.warning_count()
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"}}",
                f.rule.id(),
                f.severity,
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the report as a SARIF 2.1.0 document for code-scanning
    /// upload.
    #[must_use]
    pub fn to_sarif(&self) -> String {
        sarif::to_sarif(self)
    }

    /// Renders human-readable diagnostics, one per line, followed by a
    /// summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}[{}]: {}:{}: {}\n",
                f.severity,
                f.rule.id(),
                f.file,
                f.line,
                f.message
            ));
        }
        out.push_str(&format!(
            "mcpat-lint: {} error(s), {} warning(s) across {} file(s)\n",
            self.error_count(),
            self.warning_count(),
            self.files_scanned
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One in-memory source file: workspace-relative path, owning crate,
/// text.
#[derive(Debug, Clone)]
pub struct Source {
    /// Workspace-relative path (used in diagnostics).
    pub path: String,
    /// Crate the file belongs to (L004 merges validate() evidence per
    /// crate).
    pub crate_name: String,
    /// File contents.
    pub text: String,
}

/// Analyzes one source through the per-file (cacheable) stage:
/// lex → parse → single-file rules → facts.
fn analyze_one(src: &Source) -> FileAnalysis {
    let lexed = lexer::lex(&src.text);
    let file_ir = parse::parse(&lexed);
    rules::analyze(
        &src.path,
        &lexed,
        &file_ir,
        AnalyzeOptions {
            knobs_file: src.path.ends_with("knobs.rs"),
            obs_crate: src.crate_name == "obs",
            par_crate: src.crate_name == "par",
        },
    )
}

/// Lints a set of in-memory sources. This is the whole pipeline:
/// per-file analysis, per-crate L004, the call-graph L008/L012 pass,
/// allow suppression.
#[must_use]
pub fn lint_sources(sources: &[Source]) -> Report {
    lint_sources_cached(sources, &mut cache::Cache::default())
}

/// [`lint_sources`], consulting (and filling) an incremental cache:
/// a file whose content hash matches reuses its stored facts instead
/// of being re-analyzed. The cross-file passes always re-run over the
/// facts, so a change in one file still updates interprocedural
/// findings everywhere.
#[must_use]
pub fn lint_sources_cached(sources: &[Source], file_cache: &mut cache::Cache) -> Report {
    let analyses: Vec<FileAnalysis> = sources
        .iter()
        .map(|src| {
            let hash = cache::content_hash(&src.text);
            file_cache.take(&src.path, hash).unwrap_or_else(|| {
                let analysis = analyze_one(src);
                file_cache.put(&src.path, hash, &analysis);
                analysis
            })
        })
        .collect();

    let mut findings: Vec<Finding> = Vec::new();
    let mut allows_by_file: BTreeMap<String, Vec<Allow>> = BTreeMap::new();
    let mut crates: BTreeMap<String, CrateValidation> = BTreeMap::new();
    let mut nodes: Vec<FnNode> = Vec::new();

    for (src, analysis) in sources.iter().zip(&analyses) {
        findings.extend(analysis.findings.iter().cloned());
        findings.extend(analysis.annotation_warnings.iter().cloned());
        allows_by_file
            .entry(src.path.clone())
            .or_default()
            .extend(analysis.allows.iter().cloned());
        crates
            .entry(src.crate_name.clone())
            .or_default()
            .absorb(analysis);
        nodes.extend(analysis.fns.iter().map(|f| FnNode {
            crate_name: src.crate_name.clone(),
            file: src.path.clone(),
            name: f.name.clone(),
            impl_type: f.impl_type.clone(),
            line: f.line,
            is_test: f.is_test,
            calls: f.calls.clone(),
        }));
    }

    let graph = CallGraph::build(nodes);
    for (src, analysis) in sources.iter().zip(&analyses) {
        rules::check_loop_reachability(
            &src.path,
            &src.crate_name,
            &analysis.fns,
            &graph,
            &mut findings,
        );
    }

    for validation in crates.values() {
        findings.extend(validation.findings());
    }

    let mut findings = rules::apply_allows(findings, &allows_by_file);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Report {
        findings,
        files_scanned: sources.len(),
    }
}

/// Lints one in-memory source as its own single-file crate — the
/// entry point the fixture tests use.
#[must_use]
pub fn lint_source(path: &str, text: &str) -> Report {
    lint_sources(&[Source {
        path: path.to_owned(),
        crate_name: String::from("fixture"),
        text: text.to_owned(),
    }])
}

/// Collects every `.rs` file under `crates/*/src` plus the umbrella
/// package's `src/`, in sorted (deterministic) order.
///
/// # Errors
///
/// An [`std::io::Error`] if a directory or file cannot be read.
pub fn collect_workspace_sources(root: &Path) -> std::io::Result<Vec<Source>> {
    let mut sources = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs_files(root, &src, &crate_name, &mut sources)?;
        }
    }

    let umbrella = root.join("src");
    if umbrella.is_dir() {
        collect_rs_files(root, &umbrella, "mcpat-suite", &mut sources)?;
    }

    Ok(sources)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<Source>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(root, &path, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            out.push(Source {
                path: rel,
                crate_name: crate_name.to_owned(),
                text: std::fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// An [`std::io::Error`] if sources cannot be enumerated or read.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    Ok(lint_sources(&collect_workspace_sources(root)?))
}

/// Lints the whole workspace with an incremental cache at
/// `cache_path`: loaded before, stored after (best-effort — a cache
/// that cannot be written does not fail the lint).
///
/// # Errors
///
/// An [`std::io::Error`] if sources cannot be enumerated or read.
pub fn lint_workspace_cached(root: &Path, cache_path: &Path) -> std::io::Result<Report> {
    let sources = collect_workspace_sources(root)?;
    let mut file_cache = cache::Cache::load(cache_path);
    let report = lint_sources_cached(&sources, &mut file_cache);
    let _ = file_cache.store(cache_path);
    Ok(report)
}

/// The workspace root this crate was compiled in — the default lint
/// target for `cargo run -p mcpat-lint` and the self-run test.
#[must_use]
pub fn default_root() -> PathBuf {
    // crates/lint → crates → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn clean_source_yields_empty_report() {
        let report = lint_source(
            "clean.rs",
            "pub fn first(v: &[u32]) -> Option<u32> { v.iter().copied().next() }\n",
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(!report.has_errors());
        assert_eq!(report.files_scanned, 1);
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = lint_source("bad.rs", "pub fn f(v: &[u32]) -> u32 { v[0] }\n");
        assert!(report.has_errors());
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"L001\""), "{json}");
        assert!(json.contains("\"line\": 1"), "{json}");
        let human = report.render();
        assert!(human.contains("error[L001]: bad.rs:1:"), "{human}");
    }
}
