//! A lightweight recursive-descent layer over the lexer that builds
//! the per-file [`FileIr`].
//!
//! The parser is a single forward pass with balanced-delimiter
//! tracking. It recognizes exactly the structure the rules need —
//! `use` declarations, `impl` blocks, `fn` items with their bodies,
//! loops, and call expressions — and skips everything else. Like the
//! lexer it is **total**: any byte sequence produces *some* IR, never
//! a panic or an error (the fuzz tests in `tests/fuzz.rs` mutate every
//! workspace source file to defend this).
//!
//! Shared span helpers (`match_close`, `fn_body_span`, `test_spans`)
//! live here so the token-level rules and the parser agree on what a
//! body is.

use crate::ir::{CallIr, CallKind, FileIr, FnIr, ImplIr, LoopIr, TokSpan, UseIr};
use crate::lexer::{is_keyword, Kind, Lexed, Token};

fn tok(tokens: &[Token], idx: usize) -> Option<&Token> {
    tokens.get(idx)
}

fn prev(tokens: &[Token], idx: usize) -> Option<&Token> {
    idx.checked_sub(1).and_then(|j| tokens.get(j))
}

pub(crate) fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == Kind::Punct && t.text == text
}

pub(crate) fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == Kind::Ident && t.text == text
}

/// Index of the delimiter closing the one at `open_idx` (which must
/// hold `open`). Returns the last token index if unbalanced.
pub(crate) fn match_close(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while let Some(t) = tok(tokens, i) {
        if is_punct(t, open) {
            depth = depth.saturating_add(1);
        } else if is_punct(t, close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i = i.saturating_add(1);
    }
    tokens.len().saturating_sub(1)
}

/// The `{`..`}` token span of the body of the `fn` at `fn_idx`, or
/// `None` for body-less declarations (trait methods, externs).
pub(crate) fn fn_body_span(tokens: &[Token], fn_idx: usize) -> Option<(usize, usize)> {
    let mut i = fn_idx.saturating_add(1);
    let mut paren_depth = 0usize;
    let mut angle_depth = 0usize;
    while let Some(t) = tok(tokens, i) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" => paren_depth = paren_depth.saturating_add(1),
                ")" => paren_depth = paren_depth.saturating_sub(1),
                "<" => angle_depth = angle_depth.saturating_add(1),
                ">" => angle_depth = angle_depth.saturating_sub(1),
                ">>" => angle_depth = angle_depth.saturating_sub(2),
                "{" if paren_depth == 0 && angle_depth == 0 => {
                    return Some((i, match_close(tokens, i, "{", "}")));
                }
                ";" if paren_depth == 0 => return None,
                _ => {}
            }
        }
        i = i.saturating_add(1);
    }
    None
}

/// Token-index spans covered by `#[cfg(test)]` / `#[test]` items.
///
/// After a test attribute, every further attribute is skipped and the
/// next braced block (the `mod`/`fn` body) is the span. An attribute
/// mentioning `test` on a `mod tests;` external declaration has no
/// brace and contributes nothing.
pub(crate) fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while let Some(t) = tok(tokens, i) {
        if is_punct(t, "#") && tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, "[")) {
            let attr_start = i.saturating_add(1);
            let attr_end = match_close(tokens, attr_start, "[", "]");
            let idents: Vec<&str> = tokens
                .get(attr_start..=attr_end)
                .unwrap_or_default()
                .iter()
                .filter(|t| t.kind == Kind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            // `#[test]` or a positive `#[cfg(... test ...)]` — but not
            // `#[cfg(not(test))]` (library code!) or `#[cfg_attr(...)]`.
            let mentions_test = match idents.split_first() {
                Some((&"test", rest)) => rest.is_empty(),
                Some((&"cfg", rest)) => rest.contains(&"test") && !rest.contains(&"not"),
                _ => false,
            };
            if mentions_test {
                // Skip any further attributes, then find the item body.
                let mut j = attr_end.saturating_add(1);
                while tok(tokens, j).is_some_and(|t| is_punct(t, "#"))
                    && tok(tokens, j.saturating_add(1)).is_some_and(|t| is_punct(t, "["))
                {
                    j = match_close(tokens, j.saturating_add(1), "[", "]").saturating_add(1);
                }
                let mut body_start = None;
                while let Some(t) = tok(tokens, j) {
                    if is_punct(t, "{") {
                        body_start = Some(j);
                        break;
                    }
                    if is_punct(t, ";") {
                        break;
                    }
                    j = j.saturating_add(1);
                }
                if let Some(start) = body_start {
                    let end = match_close(tokens, start, "{", "}");
                    spans.push((start, end));
                    i = end.saturating_add(1);
                    continue;
                }
            }
            i = attr_end.saturating_add(1);
            continue;
        }
        i = i.saturating_add(1);
    }
    spans
}

/// The braced body span of the loop whose `for`/`while`/`loop` keyword
/// sits at `kw_idx`: the first `{` at top delimiter depth after the
/// keyword (Rust bans bare struct literals in loop headers, so nothing
/// else opens a brace there). `None` when the header never closes.
pub(crate) fn loop_body_span(tokens: &[Token], kw_idx: usize) -> Option<(usize, usize)> {
    let mut j = kw_idx.saturating_add(1);
    let (mut paren, mut bracket) = (0usize, 0usize);
    while let Some(h) = tok(tokens, j) {
        if h.kind == Kind::Punct {
            match h.text.as_str() {
                "(" => paren = paren.saturating_add(1),
                ")" => paren = paren.saturating_sub(1),
                "[" => bracket = bracket.saturating_add(1),
                "]" => bracket = bracket.saturating_sub(1),
                "{" if paren == 0 && bracket == 0 => {
                    return Some((j, match_close(tokens, j, "{", "}")));
                }
                ";" if paren == 0 && bracket == 0 => return None,
                _ => {}
            }
        }
        j = j.saturating_add(1);
    }
    None
}

/// Parses one lexed file into its structural IR.
#[must_use]
pub fn parse(lexed: &Lexed) -> FileIr {
    let tokens = &lexed.tokens;
    let spans = test_spans(tokens);
    let in_test = |idx: usize| spans.iter().any(|&(a, b)| idx >= a && idx <= b);

    let mut ir = FileIr {
        uses: parse_uses(tokens),
        impls: parse_impls(tokens),
        functions: Vec::new(),
    };

    // Pass 1: every `fn` with a body, innermost-aware via span sizes.
    let mut fns: Vec<FnIr> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !is_ident(t, "fn") {
            continue;
        }
        let Some(name_tok) = tok(tokens, i.saturating_add(1)) else {
            continue;
        };
        if name_tok.kind != Kind::Ident {
            continue;
        }
        let Some((body_start, body_end)) = fn_body_span(tokens, i) else {
            continue;
        };
        let impl_type = ir
            .impls
            .iter()
            .filter(|im| im.body.contains(i))
            .min_by_key(|im| im.body.len())
            .map(|im| im.type_name.clone());
        fns.push(FnIr {
            name: name_tok.text.clone(),
            impl_type,
            line: t.line,
            body: TokSpan {
                start: body_start,
                end: body_end.saturating_add(1),
            },
            is_test: in_test(i),
            calls: Vec::new(),
            loops: Vec::new(),
        });
    }

    // Pass 2: attribute each call and loop to the *innermost* fn whose
    // body contains it (calls in a nested fn belong to the nested fn;
    // calls in closures belong to the closure's enclosing fn).
    fn owner_of(fns: &[FnIr], idx: usize) -> Option<usize> {
        fns.iter()
            .enumerate()
            .filter(|(_, f)| f.body.contains(idx))
            .min_by_key(|(_, f)| f.body.len())
            .map(|(k, _)| k)
    }

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        // Loops.
        if matches!(t.text.as_str(), "for" | "while" | "loop") {
            if let Some(owner) = owner_of(&fns, i) {
                if let Some((start, end)) = loop_body_span(tokens, i) {
                    if let Some(f) = fns.get_mut(owner) {
                        f.loops.push(LoopIr {
                            line: t.line,
                            keyword: i,
                            body: TokSpan {
                                start,
                                end: end.saturating_add(1),
                            },
                        });
                    }
                }
            }
            continue;
        }
        // Calls: an identifier directly followed by `(`.
        if is_keyword(&t.text) || t.text == "self" {
            continue;
        }
        let next_is_open = tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, "("));
        if !next_is_open {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if prev(tokens, i).is_some_and(|p| is_ident(p, "fn")) {
            continue;
        }
        let Some(owner) = owner_of(&fns, i) else {
            continue;
        };
        let (kind, path) = match prev(tokens, i) {
            Some(p) if is_punct(p, ".") => (CallKind::Method, Vec::new()),
            Some(p) if is_punct(p, "::") => {
                // Walk the leading `seg::`* chain backwards.
                let mut segs: Vec<String> = Vec::new();
                let mut k = i.saturating_sub(1); // the `::`
                while k >= 1 {
                    let Some(seg) = tokens.get(k.saturating_sub(1)) else {
                        break;
                    };
                    if seg.kind != Kind::Ident {
                        break;
                    }
                    segs.push(seg.text.clone());
                    let Some(before) = k.checked_sub(2).and_then(|j| tokens.get(j)) else {
                        break;
                    };
                    if !is_punct(before, "::") {
                        break;
                    }
                    k = k.saturating_sub(2);
                }
                segs.reverse();
                (CallKind::Path, segs)
            }
            _ => (CallKind::Bare, Vec::new()),
        };
        if let Some(f) = fns.get_mut(owner) {
            f.calls.push(CallIr {
                name: t.text.clone(),
                path,
                kind,
                line: t.line,
                tok: i,
            });
        }
        // Callback edges: a bare identifier passed as a *direct*
        // argument to this call may be a function value the callee
        // invokes (`lookup_or_solve(…, solve_uncached)`). Record it so
        // reachability survives the indirection; plain variables
        // resolve to nothing downstream and are harmless.
        let open = i.saturating_add(1);
        let close = match_close(tokens, open, "(", ")");
        let mut depth = 0usize;
        let mut j = open.saturating_add(1);
        while j < close {
            let Some(a) = tok(tokens, j) else { break };
            if a.kind == Kind::Punct {
                match a.text.as_str() {
                    "(" | "[" | "{" => depth = depth.saturating_add(1),
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            let is_arg_ref = depth == 0
                && a.kind == Kind::Ident
                && !is_keyword(&a.text)
                && a.text != "self"
                && prev(tokens, j)
                    .is_some_and(|p| is_punct(p, "(") || is_punct(p, ",") || is_punct(p, "&"))
                && tok(tokens, j.saturating_add(1))
                    .is_some_and(|n| is_punct(n, ",") || is_punct(n, ")"));
            if is_arg_ref {
                if let Some(f) = fns.get_mut(owner) {
                    f.calls.push(CallIr {
                        name: a.text.clone(),
                        path: Vec::new(),
                        kind: CallKind::Callback,
                        line: a.line,
                        tok: j,
                    });
                }
            }
            j = j.saturating_add(1);
        }
    }

    ir.functions = fns;
    ir
}

/// Collects every `impl` block with a nameable subject type.
fn parse_impls(tokens: &[Token]) -> Vec<ImplIr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(t) = tok(tokens, i) {
        if !is_ident(t, "impl") {
            i = i.saturating_add(1);
            continue;
        }
        // Scan the header for the subject type: the last angle-depth-0
        // identifier before the body `{` — re-collected after `for`, so
        // `impl Display for Foo` and `impl Foo` both yield `Foo`.
        let mut j = i.saturating_add(1);
        let mut angle = 0usize;
        let mut subject: Option<String> = None;
        let mut body_start: Option<usize> = None;
        while let Some(h) = tok(tokens, j) {
            match h.kind {
                Kind::Punct => match h.text.as_str() {
                    "<" => angle = angle.saturating_add(1),
                    ">" => angle = angle.saturating_sub(1),
                    ">>" => angle = angle.saturating_sub(2),
                    "{" if angle == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    ";" if angle == 0 => break,
                    _ => {}
                },
                Kind::Ident if angle == 0 => match h.text.as_str() {
                    "for" => subject = None,
                    "where" => {}
                    "dyn" | "mut" => {}
                    name if !is_keyword(name) => subject = Some(name.to_owned()),
                    _ => {}
                },
                _ => {}
            }
            j = j.saturating_add(1);
        }
        let (Some(type_name), Some(start)) = (subject, body_start) else {
            i = j.saturating_add(1);
            continue;
        };
        let end = match_close(tokens, start, "{", "}");
        out.push(ImplIr {
            type_name,
            line: t.line,
            body: TokSpan {
                start,
                end: end.saturating_add(1),
            },
        });
        // Continue *inside* the impl body: nested impls are rare but
        // legal, and fns inside are discovered by the caller anyway.
        i = start.saturating_add(1);
    }
    out
}

/// Collects every `use` declaration leaf into (local name, full path)
/// pairs, expanding one level of `{...}` groups (nested groups recurse
/// through the same stack-free scan).
fn parse_uses(tokens: &[Token]) -> Vec<UseIr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(t) = tok(tokens, i) {
        if !is_ident(t, "use") {
            i = i.saturating_add(1);
            continue;
        }
        // A `use` keyword opens a declaration only at item position;
        // we accept any and rely on the `;` terminator.
        let end = {
            let mut j = i.saturating_add(1);
            loop {
                match tok(tokens, j) {
                    None => break j,
                    Some(t) if is_punct(t, ";") => break j,
                    Some(_) => j = j.saturating_add(1),
                }
            }
        };
        let decl = tokens.get(i.saturating_add(1)..end).unwrap_or_default();
        expand_use_tree(decl, &mut Vec::new(), &mut out);
        i = end.saturating_add(1);
    }
    out
}

/// Recursively expands one use-tree token slice under `prefix`.
fn expand_use_tree(decl: &[Token], prefix: &mut Vec<String>, out: &mut Vec<UseIr>) {
    let depth_before = prefix.len();
    let mut i = 0usize;
    let mut last_seg: Option<String> = None;
    while let Some(t) = decl.get(i) {
        match t.kind {
            Kind::Ident if t.text == "as" => {
                // `path as alias`: the next ident is the local name.
                if let (Some(alias), Some(seg)) = (decl.get(i.saturating_add(1)), last_seg.take()) {
                    if alias.kind == Kind::Ident {
                        prefix.push(seg);
                        out.push(UseIr {
                            local: alias.text.clone(),
                            path: prefix.clone(),
                        });
                        prefix.pop();
                    }
                }
                i = i.saturating_add(2);
                continue;
            }
            Kind::Ident => {
                // Flush a pending segment that turned out to be a full
                // leaf (happens in groups: `{a, b}`).
                last_seg = Some(t.text.clone());
            }
            Kind::Punct => match t.text.as_str() {
                "::" => {
                    if let Some(seg) = last_seg.take() {
                        prefix.push(seg);
                    }
                }
                "," => {
                    if let Some(seg) = last_seg.take() {
                        prefix.push(seg);
                        out.push(UseIr {
                            local: prefix.last().cloned().unwrap_or_default(),
                            path: prefix.clone(),
                        });
                        prefix.pop();
                    }
                    prefix.truncate(depth_before);
                }
                "{" => {
                    let close = {
                        let mut depth = 0usize;
                        let mut j = i;
                        loop {
                            match decl.get(j) {
                                None => break j,
                                Some(t) if is_punct(t, "{") => {
                                    depth = depth.saturating_add(1);
                                    j = j.saturating_add(1);
                                }
                                Some(t) if is_punct(t, "}") => {
                                    depth = depth.saturating_sub(1);
                                    if depth == 0 {
                                        break j;
                                    }
                                    j = j.saturating_add(1);
                                }
                                Some(_) => j = j.saturating_add(1),
                            }
                        }
                    };
                    let inner = decl.get(i.saturating_add(1)..close).unwrap_or_default();
                    expand_use_tree(inner, prefix, out);
                    i = close.saturating_add(1);
                    continue;
                }
                "*" => {
                    // Glob import: no single local name to record.
                    last_seg = None;
                }
                _ => {}
            },
            _ => {}
        }
        i = i.saturating_add(1);
    }
    if let Some(seg) = last_seg {
        prefix.push(seg);
        out.push(UseIr {
            local: prefix.last().cloned().unwrap_or_default(),
            path: prefix.clone(),
        });
        prefix.pop();
    }
    prefix.truncate(depth_before);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ir_of(src: &str) -> FileIr {
        parse(&lex(src))
    }

    #[test]
    fn fns_and_impls_are_found_with_subjects() {
        let ir = ir_of(
            "impl Processor { fn build(&self) {} }\n\
             impl std::fmt::Display for Report { fn fmt(&self) {} }\n\
             fn free() {}\n",
        );
        let names: Vec<(&str, Option<&str>)> = ir
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            [
                ("build", Some("Processor")),
                ("fmt", Some("Report")),
                ("free", None)
            ]
        );
    }

    #[test]
    fn calls_classify_method_path_bare() {
        let ir =
            ir_of("fn f() { g(); x.h(); mcpat_guard::check(); a::b::c(); mac!(no); }\nfn g() {}");
        let f = ir.functions.first().unwrap();
        let got: Vec<(&str, CallKind, &[String])> = f
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.kind, c.path.as_slice()))
            .collect();
        assert_eq!(got.len(), 4, "{got:?}");
        assert_eq!(got[0].0, "g");
        assert_eq!(got[0].1, CallKind::Bare);
        assert_eq!(got[1].0, "h");
        assert_eq!(got[1].1, CallKind::Method);
        assert_eq!(got[2].0, "check");
        assert_eq!(got[2].2, ["mcpat_guard"]);
        assert_eq!(got[3].2, ["a", "b"]);
    }

    #[test]
    fn nested_fn_calls_do_not_leak_to_the_outer_fn() {
        let ir = ir_of("fn outer() { fn inner() { deep(); } inner(); }");
        let outer = ir.functions.iter().find(|f| f.name == "outer").unwrap();
        let inner = ir.functions.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(
            outer
                .calls
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            ["inner"]
        );
        assert_eq!(
            inner
                .calls
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            ["deep"]
        );
    }

    #[test]
    fn loops_are_attributed_with_bodies() {
        let ir = ir_of("fn f() { for i in 0..3 { solve(i); } while x { spin(); } }");
        let f = ir.functions.first().unwrap();
        assert_eq!(f.loops.len(), 2);
        let for_calls = f.calls_in(f.loops[0].body);
        let got: Vec<(&str, CallKind)> = for_calls
            .iter()
            .map(|c| (c.name.as_str(), c.kind))
            .collect();
        // `solve` is the call; its bare-ident argument `i` is recorded
        // as a potential callback edge.
        assert_eq!(got, [("solve", CallKind::Bare), ("i", CallKind::Callback)]);
    }

    #[test]
    fn bare_ident_arguments_become_callback_edges() {
        let ir = ir_of(
            "fn f() { lookup_or_solve(tech, &spec, g(x), solve_uncached); t.h(Foo { a }, cb); }",
        );
        let f = ir.functions.first().unwrap();
        let callbacks: Vec<&str> = f
            .calls
            .iter()
            .filter(|c| c.kind == CallKind::Callback)
            .map(|c| c.name.as_str())
            .collect();
        // Direct bare-ident args only: nested-call args (`x`) belong to
        // the nested call, struct-literal fields (`a`) are skipped.
        assert_eq!(callbacks, ["tech", "spec", "solve_uncached", "x", "cb"]);
    }

    #[test]
    fn use_trees_expand_groups_and_aliases() {
        let ir = ir_of(
            "use std::collections::{HashMap, HashSet};\n\
             use mcpat_guard::check as guard_check;\n\
             use mcpat_diag::Severity;\n",
        );
        let find = |local: &str| ir.resolve_use(local).map(|p| p.join("::"));
        assert_eq!(
            find("HashMap").as_deref(),
            Some("std::collections::HashMap")
        );
        assert_eq!(
            find("HashSet").as_deref(),
            Some("std::collections::HashSet")
        );
        assert_eq!(find("guard_check").as_deref(), Some("mcpat_guard::check"));
        assert_eq!(find("Severity").as_deref(), Some("mcpat_diag::Severity"));
        assert_eq!(find("missing"), None);
    }

    #[test]
    fn test_regions_mark_fns() {
        let ir =
            ir_of("fn lib() {}\n#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\n");
        let by_name = |n: &str| ir.functions.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("lib").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("t").is_test);
    }

    #[test]
    fn parser_is_total_on_garbage() {
        let _ = ir_of("fn {{{ impl use :: }} for while ((( \"unterminated");
        let _ = ir_of("");
        let _ = ir_of("}}}}");
    }
}
