//! The per-file structural IR the parser ([`crate::parse`]) builds on
//! top of the token stream.
//!
//! PR 3's rules pattern-matched raw tokens; that was enough for "is
//! there a `[` after an identifier" but not for anything that needs to
//! know *which function* a token lives in, *what* a loop body calls, or
//! *where* a call might lead. This IR is the minimal structure those
//! questions need: items (functions, impls, structs, `use` decls),
//! loops, and call expressions, all carrying token-index spans back
//! into the lexed stream so rules can still drop down to tokens when
//! they want to.
//!
//! It is deliberately **not** an AST: expressions are not represented,
//! types are not resolved, and macros are opaque. Everything here is
//! recoverable by a single forward pass with balanced-delimiter
//! tracking, which keeps the parser total (it never fails, never
//! panics — malformed input just yields fewer items, a property the
//! fuzz tests in `tests/fuzz.rs` hammer on).

/// A half-open span of token indices into [`crate::lexer::Lexed::tokens`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokSpan {
    /// Index of the first token of the span.
    pub start: usize,
    /// Index one past the last token of the span.
    pub end: usize,
}

impl TokSpan {
    /// Whether `idx` falls inside the span.
    #[must_use]
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start && idx < self.end
    }

    /// Number of tokens covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the span covers nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// How a call expression names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(...)` — a method call; the receiver's type is
    /// unknown, so resolution is by name with same-crate preference.
    Method,
    /// `a::b::name(...)` — a path call; `CallIr::path` carries the
    /// leading segments (e.g. `["mcpat_guard"]` for
    /// `mcpat_guard::check()`).
    Path,
    /// `name(...)` — a bare call, resolved through the file's `use`
    /// map first, then by name.
    Bare,
    /// `f(..., name, ...)` — not a call at all, but a bare identifier
    /// passed as an argument: a *potential* callee handed to a
    /// higher-order function (`lookup_or_solve(…, solve_uncached)`).
    /// The call graph treats these as edges so checkpoint reachability
    /// survives function-pointer indirection; an argument that is
    /// merely a variable resolves to no workspace `fn` and contributes
    /// nothing.
    Callback,
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallIr {
    /// The callee's final path segment (`check`, `build`, `solve`).
    pub name: String,
    /// Leading path segments for [`CallKind::Path`] calls, innermost
    /// last (`a::b::f()` → `["a", "b"]`); empty otherwise.
    pub path: Vec<String>,
    /// Call shape (method / path / bare).
    pub kind: CallKind,
    /// 1-based line of the callee token.
    pub line: usize,
    /// Token index of the callee identifier.
    pub tok: usize,
}

/// One `for`/`while`/`loop` inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopIr {
    /// 1-based line of the loop keyword.
    pub line: usize,
    /// Token index of the loop keyword.
    pub keyword: usize,
    /// Token span of the braced body, `{` and `}` included.
    pub body: TokSpan,
}

/// One `fn` item, free or associated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnIr {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` type name, when the fn is an associated item
    /// (`impl Processor { fn build … }` → `Some("Processor")`).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token span of the braced body (`{`..`}` inclusive). Body-less
    /// declarations (trait methods, externs) are not represented.
    pub body: TokSpan,
    /// Whether the fn sits inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// Call expressions in the body, in source order. Calls inside
    /// closures belong to the enclosing fn; calls inside *nested fns*
    /// belong to the nested fn only.
    pub calls: Vec<CallIr>,
    /// Loops in the body, outermost and nested alike, in source order.
    pub loops: Vec<LoopIr>,
}

impl FnIr {
    /// The calls whose callee token sits inside `span` (used to ask
    /// "what does this loop body call?").
    #[must_use]
    pub fn calls_in(&self, span: TokSpan) -> Vec<&CallIr> {
        self.calls.iter().filter(|c| span.contains(c.tok)).collect()
    }
}

/// One `impl` block (inherent or trait) with its subject type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplIr {
    /// The implementing type's name (`impl Foo` and
    /// `impl Trait for Foo` both yield `Foo`).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// Token span of the impl body.
    pub body: TokSpan,
}

/// One `use` declaration leaf: a local name and the full path it binds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseIr {
    /// The name visible in this file (the last segment, or the `as`
    /// alias).
    pub local: String,
    /// Full path segments, e.g. `["std", "collections", "HashMap"]`.
    pub path: Vec<String>,
}

/// The structural IR of one source file.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FileIr {
    /// Every `use` leaf, in source order.
    pub uses: Vec<UseIr>,
    /// Every `impl` block, in source order.
    pub impls: Vec<ImplIr>,
    /// Every `fn` with a body, in source order (nested fns included,
    /// each with its own entry).
    pub functions: Vec<FnIr>,
}

impl FileIr {
    /// Resolves a bare name through the file's `use` map: the full
    /// path it was imported as, if any.
    #[must_use]
    pub fn resolve_use(&self, name: &str) -> Option<&[String]> {
        self.uses
            .iter()
            .find(|u| u.local == name)
            .map(|u| u.path.as_slice())
    }
}
