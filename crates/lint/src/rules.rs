//! The project-invariant rules, L001–L012.
//!
//! Most rules are pure functions over one file's token stream; L004
//! adds a per-crate accumulation step, and L008/L012 run over the
//! cross-crate call graph ([`crate::callgraph`]) built from the
//! per-file IR ([`crate::parse`]). Rules never look inside strings or
//! comments — the lexer already hid those — and every rule skips
//! `#[cfg(test)]` / `#[test]` regions, where panics and direct env
//! manipulation are legitimate.
//!
//! | Rule | Invariant |
//! |---|---|
//! | L001 | no panicking `x[i]` indexing in library code |
//! | L002 | no raw `==`/`!=` against float literals |
//! | L003 | `std::env` reads confined to the `knobs` module |
//! | L004 | every `*Config`/`*Spec` field mentioned in a `validate()` |
//! | L005 | no `.lock()` guard bound in a scope that fans out |
//! | L006 | no `unwrap`/`expect`/`panic!` family in library code |
//! | L007 | no before/after deltas over global `memo`/`pool` counters |
//! | L008 | solver/build loop calls only *opaque* callees and has no checkpoint |
//! | L009 | no per-iteration heap allocation in `lint: hot` regions |
//! | L010 | no mixing unit-suffixed identifiers across dimensions/scales |
//! | L011 | no hash-ordered iteration, thread-dependence, or unordered float reduction |
//! | L012 | solver/build loops *reach* an `mcpat-guard` checkpoint (call graph) |
//!
//! L008 and L012 split one invariant by evidence: a loop whose callees
//! resolve in the call graph but provably never reach a checkpoint
//! within [`crate::callgraph::MAX_CHECKPOINT_DEPTH`] frames is an
//! L012; a loop whose callees are all opaque (closures, std) falls
//! back to the old syntactic L008.
//!
//! A violation is silenced by `// lint: allow(L00n, reason)` — trailing
//! on the offending line, or on its own line immediately above (the
//! annotation then covers the next token-bearing line). The reason is
//! mandatory; an annotation that silences nothing is itself reported,
//! so stale allows cannot accumulate.

use crate::callgraph::{CallGraph, CallRef, BUDGET_CHECKS, MAX_CHECKPOINT_DEPTH};
use crate::ir::FileIr;
use crate::lexer::{is_keyword, Kind, Lexed, Token};
use crate::parse::{fn_body_span, match_close, test_spans};
use mcpat_diag::Severity;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Identifier of one invariant rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Panicking slice/array indexing.
    L001,
    /// Raw float equality.
    L002,
    /// `std::env` read outside the knobs module.
    L003,
    /// `*Config`/`*Spec` field never mentioned in a `validate()`.
    L004,
    /// Lock guard bound in a scope that also fans out.
    L005,
    /// `unwrap`/`expect`/`panic!`-family call in library code.
    L006,
    /// Before/after delta over the global `memo::stats()` /
    /// `pool::stats()` counters outside `mcpat-obs`.
    L007,
    /// A loop over candidates/probes/rungs (one calling solver or
    /// build APIs) whose callees are all opaque to the call graph and
    /// whose body has no syntactic budget checkpoint.
    L008,
    /// Heap allocation inside a `// lint: hot` region — the solver's
    /// per-candidate loops and other marked cold-path hot spots.
    L009,
    /// Unit-suffixed identifiers added/compared/assigned across
    /// incompatible physical dimensions or scales.
    L010,
    /// Nondeterminism hazard in result-affecting code: hash-ordered
    /// iteration, thread-count/thread-id dependence, or an unordered
    /// float reduction.
    L011,
    /// A solver/build loop whose resolved callees provably never reach
    /// an `mcpat-guard` checkpoint within the bounded call depth.
    L012,
    /// A `lint: allow` annotation that silenced nothing, or is
    /// malformed (missing its mandatory reason).
    Allowance,
}

impl Rule {
    /// Stable rule id as it appears in reports and annotations.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
            Rule::L009 => "L009",
            Rule::L010 => "L010",
            Rule::L011 => "L011",
            Rule::L012 => "L012",
            Rule::Allowance => "allow",
        }
    }

    /// Parses a numbered rule id (`"L004"`); `None` for anything else,
    /// including the annotation pseudo-rule.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "L001" => Some(Rule::L001),
            "L002" => Some(Rule::L002),
            "L003" => Some(Rule::L003),
            "L004" => Some(Rule::L004),
            "L005" => Some(Rule::L005),
            "L006" => Some(Rule::L006),
            "L007" => Some(Rule::L007),
            "L008" => Some(Rule::L008),
            "L009" => Some(Rule::L009),
            "L010" => Some(Rule::L010),
            "L011" => Some(Rule::L011),
            "L012" => Some(Rule::L012),
            _ => None,
        }
    }

    /// Violations of the numbered rules are errors; annotation hygiene
    /// problems are warnings.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Rule::Allowance => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Every rule, in report order (for SARIF tool metadata).
    #[must_use]
    pub fn all() -> &'static [Rule] {
        &[
            Rule::L001,
            Rule::L002,
            Rule::L003,
            Rule::L004,
            Rule::L005,
            Rule::L006,
            Rule::L007,
            Rule::L008,
            Rule::L009,
            Rule::L010,
            Rule::L011,
            Rule::L012,
            Rule::Allowance,
        ]
    }

    /// One-line invariant statement (SARIF `shortDescription`).
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::L001 => "no panicking index expressions in library code",
            Rule::L002 => "no raw float equality",
            Rule::L003 => "environment reads confined to the knobs module",
            Rule::L004 => "every Config/Spec field mentioned in a validate()",
            Rule::L005 => "no lock guard bound in a scope that fans out",
            Rule::L006 => "no unwrap/expect/panic-family calls in library code",
            Rule::L007 => "no before/after deltas over global memo/pool counters",
            Rule::L008 => "solver/build loop with opaque callees needs a syntactic checkpoint",
            Rule::L009 => "no per-iteration heap allocation in lint:hot regions",
            Rule::L010 => "no mixing unit-suffixed identifiers across dimensions or scales",
            Rule::L011 => "no hash-ordered iteration or thread-dependent values in results",
            Rule::L012 => "solver/build loops must reach an mcpat-guard checkpoint",
            Rule::Allowance => "lint allow annotations must be well-formed and in use",
        }
    }
}

/// One rule violation (or annotation-hygiene warning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which invariant was violated.
    pub rule: Rule,
    /// Error or warning, from [`Rule::severity`].
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the violation.
    pub line: usize,
    /// Alternate line an allow annotation may sit on (for L004, the
    /// `struct` line waives every field at once).
    pub alt_line: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

/// One parsed `// lint: allow(RULE, reason)` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The silenced rule.
    pub rule: Rule,
    /// Mandatory justification text.
    pub reason: String,
    /// The line whose findings this annotation covers.
    pub target_line: usize,
    /// The line the annotation itself sits on (for reporting).
    pub comment_line: usize,
}

/// Everything one file contributes: raw findings, allow annotations,
/// and its share of the cross-file state (L004 validation facts,
/// L008/L012 function summaries). This is exactly what the
/// incremental cache ([`crate::cache`]) persists per file.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct FileAnalysis {
    /// Raw findings, before allow suppression (L004 excluded — that
    /// rule needs the whole crate).
    pub findings: Vec<Finding>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
    /// Malformed-annotation warnings (already final).
    pub annotation_warnings: Vec<Finding>,
    /// `*Config`/`*Spec` structs defined in this file.
    pub structs: Vec<StructDef>,
    /// Identifiers mentioned inside `validate*` function bodies
    /// (ordered — the cache serializes this set).
    pub validate_idents: BTreeSet<String>,
    /// Whether the file defines any `validate*` function.
    pub has_validate: bool,
    /// Function summaries for the call-graph passes (L008/L012).
    pub fns: Vec<FnFact>,
}

/// One loop inside a function, summarized for the reachability pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopFact {
    /// 1-based line of the loop keyword.
    pub line: usize,
    /// Budgeted (solver/build) callee names seen in the body.
    pub budgeted: Vec<String>,
    /// Whether the body syntactically calls a checkpoint.
    pub direct_checkpoint: bool,
    /// Every call in the body, for reachability resolution.
    pub calls: Vec<CallRef>,
}

/// One function, summarized for the call graph. Derived from the
/// structural IR; serialized into the incremental cache so unchanged
/// files contribute to cross-file passes without re-analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFact {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, if associated.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the fn lives in a test region.
    pub is_test: bool,
    /// Every call expression in the body.
    pub calls: Vec<CallRef>,
    /// Loops in the body.
    pub loops: Vec<LoopFact>,
}

/// A `*Config`/`*Spec` struct definition found by the light parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// Line of the `struct` keyword.
    pub line: usize,
    /// Named fields with their lines.
    pub fields: Vec<(String, usize)>,
}

/// Per-file exemptions the caller derives from the file's location.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// The designated knobs module — exempt from L003 (it is *where*
    /// environment knobs are declared).
    pub knobs_file: bool,
    /// The `mcpat-obs` crate — exempt from L007 (scoped attribution is
    /// implemented there, so it legitimately reconciles the globals).
    pub obs_crate: bool,
    /// The `mcpat-par` crate — exempt from L011's thread checks
    /// (sizing the worker pool is its job).
    pub par_crate: bool,
}

/// Analyzes one lexed+parsed file against every single-file rule and
/// collects the raw material for the cross-file passes: the L004
/// struct/validate facts and the L008/L012 function summaries.
#[must_use]
pub fn analyze(rel_path: &str, lexed: &Lexed, ir: &FileIr, opts: AnalyzeOptions) -> FileAnalysis {
    let tokens = &lexed.tokens;
    let test_spans = test_spans(tokens);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx <= b);

    let mut out = FileAnalysis::default();
    parse_allows(rel_path, lexed, &mut out);

    check_indexing(rel_path, tokens, &in_test, &mut out.findings);
    check_float_eq(rel_path, tokens, &in_test, &mut out.findings);
    if !opts.knobs_file {
        check_env_reads(rel_path, tokens, &in_test, &mut out.findings);
    }
    check_lock_across_fanout(rel_path, tokens, &in_test, &mut out.findings);
    check_panicking_calls(rel_path, tokens, &in_test, &mut out.findings);
    if !opts.obs_crate {
        check_global_deltas(rel_path, tokens, &in_test, &mut out.findings);
    }
    check_hot_allocs(rel_path, lexed, &in_test, &mut out.findings);
    check_unit_mixing(rel_path, tokens, &in_test, &mut out.findings);
    check_determinism(
        rel_path,
        tokens,
        &in_test,
        opts.par_crate,
        &mut out.findings,
    );

    collect_structs(rel_path, tokens, &in_test, &mut out.structs);
    collect_validate_idents(tokens, &mut out);
    out.fns = collect_fn_facts(ir);

    dedupe(&mut out.findings);
    out
}

/// Drops repeated findings of the same rule on the same line (e.g.
/// `m[i][j]` is one annotatable site, not two).
fn dedupe(findings: &mut Vec<Finding>) {
    let mut seen: HashSet<(Rule, String, usize)> = HashSet::new();
    findings.retain(|f| seen.insert((f.rule, f.file.clone(), f.line)));
}

fn tok(tokens: &[Token], idx: usize) -> Option<&Token> {
    tokens.get(idx)
}

fn prev(tokens: &[Token], idx: usize) -> Option<&Token> {
    idx.checked_sub(1).and_then(|j| tokens.get(j))
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == Kind::Punct && t.text == text
}

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == Kind::Ident && t.text == text
}

/// L001 — a `[` directly after an expression tail (identifier, `)`,
/// `]`) opens a panicking index/slice expression.
fn check_indexing(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !is_punct(t, "[") || in_test(i) {
            continue;
        }
        let indexes_expr = prev(tokens, i).is_some_and(|p| {
            (p.kind == Kind::Ident && !is_keyword(&p.text)) || is_punct(p, ")") || is_punct(p, "]")
        });
        if indexes_expr {
            findings.push(Finding {
                rule: Rule::L001,
                severity: Rule::L001.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: String::from(
                    "panicking index expression; use .get()/.get_mut(), an iterator, \
                     or split_at/chunks — or justify with `// lint: allow(L001, reason)`",
                ),
            });
        }
    }
}

/// L002 — `==`/`!=` with a float literal on either side.
fn check_float_eq(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Punct || (t.text != "==" && t.text != "!=") || in_test(i) {
            continue;
        }
        let prev_float = prev(tokens, i).is_some_and(|p| p.kind == Kind::Float);
        let next = tok(tokens, i.saturating_add(1));
        let next_float = match next {
            Some(n) if n.kind == Kind::Float => true,
            Some(n) if is_punct(n, "-") => {
                tok(tokens, i.saturating_add(2)).is_some_and(|nn| nn.kind == Kind::Float)
            }
            _ => false,
        };
        if prev_float || next_float {
            findings.push(Finding {
                rule: Rule::L002,
                severity: Rule::L002.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: String::from(
                    "raw float equality; compare canonical bits (to_bits) or use a tolerance \
                     — or justify with `// lint: allow(L002, reason)`",
                ),
            });
        }
    }
}

/// Environment accessors whose use outside the knobs module L003 bans.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os", "set_var", "remove_var"];

/// L003 — `env::var`-family access outside the designated knobs module.
fn check_env_reads(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !is_ident(t, "env") || in_test(i) {
            continue;
        }
        let path_read = tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, "::"))
            && tok(tokens, i.saturating_add(2))
                .is_some_and(|n| n.kind == Kind::Ident && ENV_READS.contains(&n.text.as_str()));
        if path_read {
            findings.push(Finding {
                rule: Rule::L003,
                severity: Rule::L003.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: String::from(
                    "environment variable access outside the knobs module; declare the knob \
                     in mcpat_par::knobs instead",
                ),
            });
        }
    }
}

/// Fan-out entry points a held lock guard must not overlap with: the
/// public `mcpat_par` fan-outs plus the persistent pool's submission
/// seams (`submit`/`help_until` and the pooled wrappers). A guard held
/// across pool submission can deadlock against a worker that needs the
/// same lock to make progress.
const FANOUT_CALLS: &[&str] = &[
    "par_map",
    "join2",
    "join4",
    "join6",
    "par_map_pooled",
    "join2_pooled",
    "join4_pooled",
    "join6_pooled",
    "submit",
    "help_until",
];

/// L005 — a `let`-bound `.lock()` guard in a function whose body also
/// fans out (`par_map`/`join*`) or submits to the persistent pool
/// (`submit`/`help_until`/`*_pooled`). Conservative by design: the
/// guard may be dropped before the fan-out, but proving that needs an
/// AST, so such code carries an allow annotation with the argument
/// spelled out.
fn check_lock_across_fanout(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while let Some(t) = tok(tokens, i) {
        if !is_ident(t, "fn") || in_test(i) {
            i = i.saturating_add(1);
            continue;
        }
        let Some((body_start, body_end)) = fn_body_span(tokens, i) else {
            i = i.saturating_add(1);
            continue;
        };
        let body = tokens.get(body_start..=body_end).unwrap_or_default();
        let fans_out = body
            .iter()
            .any(|t| t.kind == Kind::Ident && FANOUT_CALLS.contains(&t.text.as_str()));
        if fans_out {
            for (j, bt) in body.iter().enumerate() {
                let lock_call = is_ident(bt, "lock")
                    && j.checked_sub(1)
                        .and_then(|k| body.get(k))
                        .is_some_and(|p| is_punct(p, "."))
                    && body
                        .get(j.saturating_add(1))
                        .is_some_and(|n| is_punct(n, "("));
                if lock_call && stmt_has_let(body, j) {
                    findings.push(Finding {
                        rule: Rule::L005,
                        severity: Rule::L005.severity(),
                        file: file.to_owned(),
                        line: bt.line,
                        alt_line: None,
                        message: String::from(
                            "lock guard bound in a scope that also fans out (par_map/join*) \
                             or submits to the thread pool (submit/help_until); holding a \
                             shard across a fan-out risks deadlock/contention — drop the \
                             guard first or justify with `// lint: allow(L005, reason)`",
                        ),
                    });
                }
            }
        }
        // Continue after the signature, not the body: nested fns are
        // re-scanned in their own right.
        i = body_start.saturating_add(1);
    }
}

/// Whether the statement containing token `idx` (scanning back to the
/// nearest `;`, `{` or `}`) starts with `let` — i.e. binds a name.
fn stmt_has_let(body: &[Token], idx: usize) -> bool {
    let mut j = idx;
    while let Some(k) = j.checked_sub(1) {
        let Some(t) = body.get(k) else { break };
        if is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") {
            break;
        }
        if is_ident(t, "let") {
            return true;
        }
        j = k;
    }
    false
}

/// Macros banned by L006 when invoked (`ident` followed by `!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// L006 — `.unwrap()` / `.expect(...)` calls and panic-family macro
/// invocations in library code. Backstop for the clippy deny lints,
/// enforced without needing a clean `cargo check`.
fn check_panicking_calls(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident || in_test(i) {
            continue;
        }
        let next_is =
            |text: &str| tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, text));
        let method_call = (t.text == "unwrap" || t.text == "expect")
            && prev(tokens, i).is_some_and(|p| is_punct(p, "."))
            && next_is("(");
        let macro_call = PANIC_MACROS.contains(&t.text.as_str()) && next_is("!");
        if method_call || macro_call {
            findings.push(Finding {
                rule: Rule::L006,
                severity: Rule::L006.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: format!(
                    "panicking call `{}` in library code; return a typed error or diagnostic \
                     — or justify with `// lint: allow(L006, reason)`",
                    t.text
                ),
            });
        }
    }
}

/// L007 — a before/after delta over the process-global counter
/// accessors: a function body that both calls `memo::stats()` or
/// `pool::stats()` and computes a `saturating_sub` is attributing
/// process-wide traffic to itself. Concurrent callers cross-bill each
/// other's cache misses, steals and allocations; scoped attribution
/// lives in `mcpat-obs` (enter a `Collector`, read its snapshot), the
/// one crate exempt from this rule. Tests are exempt too: a test that
/// serializes itself may legitimately assert on the globals.
fn check_global_deltas(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while let Some(t) = tok(tokens, i) {
        if !is_ident(t, "fn") || in_test(i) {
            i = i.saturating_add(1);
            continue;
        }
        let Some((body_start, body_end)) = fn_body_span(tokens, i) else {
            i = i.saturating_add(1);
            continue;
        };
        let body = tokens.get(body_start..=body_end).unwrap_or_default();
        let subtracts = body.iter().any(|bt| is_ident(bt, "saturating_sub"));
        if subtracts {
            for (j, bt) in body.iter().enumerate() {
                let stats_call = is_ident(bt, "stats")
                    && j.checked_sub(1)
                        .and_then(|k| body.get(k))
                        .is_some_and(|p| is_punct(p, "::"))
                    && j.checked_sub(2)
                        .and_then(|k| body.get(k))
                        .is_some_and(|p| is_ident(p, "memo") || is_ident(p, "pool"))
                    && body
                        .get(j.saturating_add(1))
                        .is_some_and(|n| is_punct(n, "("));
                if stats_call {
                    findings.push(Finding {
                        rule: Rule::L007,
                        severity: Rule::L007.severity(),
                        file: file.to_owned(),
                        line: bt.line,
                        alt_line: None,
                        message: String::from(
                            "before/after delta over the global memo/pool counters; concurrent \
                             callers cross-bill each other — enter an mcpat_obs::Collector scope \
                             and read its snapshot, or justify with `// lint: allow(L007, reason)`",
                        ),
                    });
                }
            }
        }
        // Continue after the signature, not the body: nested fns are
        // re-scanned in their own right.
        i = body_start.saturating_add(1);
    }
}

/// Solver/build entry points whose call inside a loop body marks that
/// loop as iterating candidates, probes, or rungs — the long-running
/// sweeps that must stay responsive to deadlines and cancellation.
const BUDGETED_CALLS: &[&str] = &[
    "solve",
    "solve_fixed",
    "solve_uncached",
    "lookup_or_solve",
    "evaluate_raw",
    "sweep_cell",
    "rebuild_with_clock",
    "rebuild_incremental",
    "rebuild_with",
    "config_at",
    "build",
    "build_inner",
];

/// Summarizes the structural IR into the serializable function facts
/// the call-graph passes (and the incremental cache) consume.
#[must_use]
pub fn collect_fn_facts(ir: &FileIr) -> Vec<FnFact> {
    let to_ref = |c: &crate::ir::CallIr| CallRef {
        name: c.name.clone(),
        path: c.path.clone(),
    };
    ir.functions
        .iter()
        .map(|f| {
            let loops = f
                .loops
                .iter()
                .map(|l| {
                    let body_calls = f.calls_in(l.body);
                    LoopFact {
                        line: l.line,
                        budgeted: body_calls
                            .iter()
                            .filter(|c| BUDGETED_CALLS.contains(&c.name.as_str()))
                            .map(|c| c.name.clone())
                            .collect(),
                        direct_checkpoint: body_calls
                            .iter()
                            .any(|c| BUDGET_CHECKS.contains(&c.name.as_str())),
                        calls: body_calls.iter().map(|c| to_ref(c)).collect(),
                    }
                })
                .collect();
            FnFact {
                name: f.name.clone(),
                impl_type: f.impl_type.clone(),
                line: f.line,
                is_test: f.is_test,
                calls: f.calls.iter().map(to_ref).collect(),
                loops,
            }
        })
        .collect()
}

/// L008/L012 — every solver/build loop must *reach* an `mcpat-guard`
/// checkpoint: syntactically in its body, or through its callees
/// within [`MAX_CHECKPOINT_DEPTH`] frames of the call graph. A loop
/// that fails splits by evidence:
///
/// * its budgeted calls **resolve** in the graph but provably never
///   reach a checkpoint → **L012** (interprocedural, hard evidence);
/// * its budgeted calls are all **opaque** (closures, trait objects,
///   vendored code) → **L008** (the old syntactic fallback).
///
/// Nested loops are judged independently: each iteration layer needs
/// its own checkpoint or a reaching callee.
pub fn check_loop_reachability(
    file: &str,
    crate_name: &str,
    fns: &[FnFact],
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) {
    for f in fns {
        if f.is_test {
            continue;
        }
        for l in &f.loops {
            if l.budgeted.is_empty() || l.direct_checkpoint {
                continue;
            }
            if l.calls
                .iter()
                .any(|c| graph.call_reaches_checkpoint(crate_name, c))
            {
                continue;
            }
            let budgeted_resolves = l
                .calls
                .iter()
                .filter(|c| BUDGETED_CALLS.contains(&c.name.as_str()))
                .any(|c| graph.resolves(crate_name, c));
            let (rule, message) = if budgeted_resolves {
                (
                    Rule::L012,
                    format!(
                        "loop's solver/build calls resolve in the call graph but none \
                         reaches an mcpat_guard checkpoint within {MAX_CHECKPOINT_DEPTH} \
                         frames; checkpoint inside the callee or the loop body so deadlines \
                         and cancellation stay responsive — or justify with \
                         `// lint: allow(L012, reason)`"
                    ),
                )
            } else {
                (
                    Rule::L008,
                    String::from(
                        "loop calls solver/build APIs that are opaque to the call graph \
                         and has no budget checkpoint; add an mcpat_guard::check() (or a \
                         wrapper forwarding to it) in the body so deadlines and \
                         cancellation stay responsive — or justify with \
                         `// lint: allow(L008, reason)`",
                    ),
                )
            };
            findings.push(Finding {
                rule,
                severity: rule.severity(),
                file: file.to_owned(),
                line: l.line,
                alt_line: None,
                message,
            });
        }
    }
}

/// Owning-container types whose `::new`/`::from`/`::with_capacity`
/// constructors hit the global allocator (or will on first push).
const ALLOC_OWNERS: &[&str] = &[
    "Vec", "VecDeque", "Box", "String", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

/// Constructor idents that allocate when invoked on an owner above.
const ALLOC_CTORS: &[&str] = &["new", "from", "with_capacity"];

/// Method calls that copy into fresh heap storage.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "clone"];

/// Macros that expand to heap allocation.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// The `// lint: hot` … `// lint: hot end` line ranges of a file:
/// explicitly marked per-candidate regions (the solver sweep, batch
/// build inner loops) that L009 patrols for heap allocation. An
/// unclosed opener extends to end of file.
fn hot_ranges(lexed: &Lexed) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut open: Option<usize> = None;
    for c in &lexed.comments {
        let Some(at) = c.text.find("lint:") else {
            continue;
        };
        let rest = c
            .text
            .get(at.saturating_add(5)..)
            .unwrap_or_default()
            .trim_start();
        let Some(tail) = rest.strip_prefix("hot") else {
            continue;
        };
        if tail.trim() == "end" {
            if let Some(start) = open.take() {
                ranges.push((start, c.line));
            }
        } else if tail.trim().is_empty() {
            open = open.or(Some(c.line));
        }
    }
    if let Some(start) = open {
        ranges.push((start, usize::MAX));
    }
    ranges
}

/// L009 — heap allocation inside a `// lint: hot` region. Hot regions
/// mark per-candidate code (the solver's scoring sweep runs tens of
/// thousands of times per cold build), where a single `Vec::new` or
/// `.clone()` of a non-`Copy` value turns into allocator churn that
/// dominates the profile. Flags owning-container constructors,
/// copy-to-heap methods, and allocating macros; scratch should come
/// from the arena or fixed-size lanes hoisted out of the loop.
fn check_hot_allocs(
    file: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let ranges = hot_ranges(lexed);
    if ranges.is_empty() {
        return;
    }
    let tokens = &lexed.tokens;
    let in_hot = |line: usize| ranges.iter().any(|&(a, b)| line >= a && line <= b);
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident || !in_hot(t.line) || in_test(i) {
            continue;
        }
        let name = t.text.as_str();
        let next_is =
            |text: &str| tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, text));
        // `Vec::new(`, `String::with_capacity(`, … — only on the known
        // owning containers, so `Multiplexer::new` and friends (plain
        // value constructors) pass untouched.
        let ctor = ALLOC_CTORS.contains(&name)
            && next_is("(")
            && prev(tokens, i).is_some_and(|p| is_punct(p, "::"))
            && i.checked_sub(2)
                .and_then(|j| tokens.get(j))
                .is_some_and(|o| o.kind == Kind::Ident && ALLOC_OWNERS.contains(&o.text.as_str()));
        // `.to_vec()`, `.to_owned()`, `.clone()` — copies into fresh
        // heap storage (a `Copy` scalar has no reason to be cloned, so
        // any `.clone()` in a hot region is worth an audited allow).
        let method = ALLOC_METHODS.contains(&name)
            && next_is("(")
            && prev(tokens, i).is_some_and(|p| is_punct(p, "."));
        // `vec![…]`, `format!(…)`.
        let mac = ALLOC_MACROS.contains(&name) && next_is("!");
        if ctor || method || mac {
            findings.push(Finding {
                rule: Rule::L009,
                severity: Rule::L009.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: format!(
                    "heap allocation `{name}` inside a `lint: hot` region; reuse arena \
                     scratch or fixed-size lanes hoisted out of the candidate loop — or \
                     justify with `// lint: allow(L009, reason)`"
                ),
            });
        }
    }
}

/// The physical-unit suffix table: `(suffix, dimension)`. An
/// identifier whose final `_`-separated segment appears here carries
/// that unit. Compatibility is *exact suffix* equality — `_w` against
/// `_mw` is a scale mismatch, `_w` against `_nj` a dimension mismatch,
/// and both are L010 findings. Bare `_f` is deliberately absent: it
/// collides with the feature-size idiom (`tech_f`), not farads.
const UNIT_SUFFIXES: &[(&str, &str)] = &[
    ("w", "power"),
    ("mw", "power"),
    ("uw", "power"),
    ("kw", "power"),
    ("j", "energy"),
    ("mj", "energy"),
    ("uj", "energy"),
    ("nj", "energy"),
    ("pj", "energy"),
    ("fj", "energy"),
    ("s", "time"),
    ("ms", "time"),
    ("us", "time"),
    ("ns", "time"),
    ("ps", "time"),
    ("mm2", "area"),
    ("um2", "area"),
    ("hz", "frequency"),
    ("khz", "frequency"),
    ("mhz", "frequency"),
    ("ghz", "frequency"),
    ("v", "voltage"),
    ("mv", "voltage"),
    ("ff", "capacitance"),
    ("pf", "capacitance"),
    ("nf", "capacitance"),
    ("ohm", "resistance"),
    ("kohm", "resistance"),
];

/// The unit an identifier carries, from its final `_`-suffix:
/// `leak_w` → `("w", "power")`. `None` when the name has no
/// underscore, an empty stem, or an unrecognized suffix.
fn unit_of(name: &str) -> Option<(&'static str, &'static str)> {
    let (stem, suffix) = name.rsplit_once('_')?;
    if stem.is_empty() {
        return None;
    }
    UNIT_SUFFIXES
        .iter()
        .find(|&&(s, _)| s == suffix)
        .map(|&(s, d)| (s, d))
}

/// Binary operators L010 patrols. Multiplication and division are
/// deliberately absent: they legitimately *change* dimension, so
/// `energy_nj = power_w * time_ns * 1e9` is the blessed conversion
/// seam (any operand adjacent to `*` or `/` is exempted below).
const UNIT_OPS: &[&str] = &["+", "-", "+=", "-=", "=", "==", "!=", "<", ">", "<=", ">="];

/// The first token of the `a.b::c.d` operand chain whose leaf sits at
/// `idx`, found by walking backwards over `.`/`::` joins.
fn chain_back(tokens: &[Token], idx: usize) -> usize {
    let mut k = idx;
    while let Some(p) = prev(tokens, k) {
        if !(is_punct(p, ".") || is_punct(p, "::")) {
            break;
        }
        let Some(before) = k.checked_sub(2).and_then(|j| tokens.get(j)) else {
            break;
        };
        if before.kind != Kind::Ident {
            break;
        }
        k = k.saturating_sub(2);
    }
    k
}

/// L010 — unit-suffixed identifiers mixed across incompatible
/// dimensions or scales in an addition, subtraction, comparison, or
/// assignment. Both operands must carry recognized suffixes (an
/// unsuffixed operand is unknowable and passes), and an operand
/// adjacent to `*` or `/` is inside a conversion expression whose
/// dimension the suffix no longer describes — exempt.
fn check_unit_mixing(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Punct || !UNIT_OPS.contains(&t.text.as_str()) || in_test(i) {
            continue;
        }
        // Left operand: the identifier directly before the operator,
        // its unit read from the suffix, its chain root checked for an
        // adjacent `*`/`/`.
        let Some(lhs_idx) = i.checked_sub(1) else {
            continue;
        };
        let Some(lhs) = tokens.get(lhs_idx).filter(|p| p.kind == Kind::Ident) else {
            continue;
        };
        let Some((lsuf, ldim)) = unit_of(&lhs.text) else {
            continue;
        };
        let root = chain_back(tokens, lhs_idx);
        if prev(tokens, root).is_some_and(|p| is_punct(p, "*") || is_punct(p, "/")) {
            continue;
        }
        // Right operand: skip a unary minus, then walk the
        // `a.b::c`-style chain forward to its leaf identifier.
        let mut j = i.saturating_add(1);
        if tok(tokens, j).is_some_and(|n| is_punct(n, "-")) {
            j = j.saturating_add(1);
        }
        let mut leaf: Option<usize> = None;
        while let Some(n) = tok(tokens, j) {
            if n.kind != Kind::Ident {
                break;
            }
            leaf = Some(j);
            let joined = tok(tokens, j.saturating_add(1))
                .is_some_and(|p| is_punct(p, ".") || is_punct(p, "::"))
                && tok(tokens, j.saturating_add(2)).is_some_and(|q| q.kind == Kind::Ident);
            if !joined {
                break;
            }
            j = j.saturating_add(2);
        }
        let Some(leaf_idx) = leaf else { continue };
        let Some(rhs) = tokens.get(leaf_idx) else {
            continue;
        };
        let Some((rsuf, rdim)) = unit_of(&rhs.text) else {
            continue;
        };
        // Token after the right operand (past a call's argument list):
        // `*`/`/` there means the operand feeds a conversion product.
        let mut after_idx = leaf_idx.saturating_add(1);
        if tok(tokens, after_idx).is_some_and(|n| is_punct(n, "(")) {
            after_idx = match_close(tokens, after_idx, "(", ")").saturating_add(1);
        }
        if tok(tokens, after_idx).is_some_and(|n| is_punct(n, "*") || is_punct(n, "/")) {
            continue;
        }
        if lsuf == rsuf {
            continue;
        }
        let detail = if ldim == rdim {
            format!("both are {ldim} but at different scales")
        } else {
            format!("`_{lsuf}` is {ldim}, `_{rsuf}` is {rdim}")
        };
        findings.push(Finding {
            rule: Rule::L010,
            severity: Rule::L010.severity(),
            file: file.to_owned(),
            line: t.line,
            alt_line: None,
            message: format!(
                "unit mismatch: `{}` (_{lsuf}) {} `{}` (_{rsuf}) — {detail}; convert \
                 explicitly (multiplication/division seams are exempt) or rename — or \
                 justify with `// lint: allow(L010, reason)`",
                lhs.text, t.text, rhs.text
            ),
        });
    }
}

/// Owning hash containers whose iteration order is nondeterministic.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods whose call on a hash container observes its iteration
/// order. `retain` is included: its closure runs in hash order, so
/// any side effect inside is order-dependent.
const HASH_ITERS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Calls whose result depends on the host's thread configuration.
const THREAD_DEPENDENT_CALLS: &[&str] = &["available_parallelism", "thread_rng"];

/// Identifier names bound to a hash container in this file: typed
/// bindings/params/fields (`m: HashMap<…>`, `m: &mut HashSet<…>`) and
/// constructor assignments (`let m = HashMap::new()`).
fn hash_bound_names(tokens: &[Token]) -> HashSet<String> {
    let mut names = HashSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // `name : [&] [mut] HashMap` — walk back over the type prefix.
        let mut j = i;
        while let Some(p) = prev(tokens, j) {
            if is_punct(p, "&") || is_ident(p, "mut") {
                j = j.saturating_sub(1);
            } else {
                break;
            }
        }
        if prev(tokens, j).is_some_and(|p| is_punct(p, ":")) {
            if let Some(name) = j
                .checked_sub(2)
                .and_then(|k| tokens.get(k))
                .filter(|n| n.kind == Kind::Ident && !is_keyword(&n.text))
            {
                names.insert(name.text.clone());
            }
        }
        // `name = HashMap::new(…)` / `with_capacity` / `from`.
        if prev(tokens, i).is_some_and(|p| is_punct(p, "="))
            && tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, "::"))
        {
            if let Some(name) = i
                .checked_sub(2)
                .and_then(|k| tokens.get(k))
                .filter(|n| n.kind == Kind::Ident && !is_keyword(&n.text))
            {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

/// L011 — nondeterminism hazards in result-affecting code: iterating
/// a hash container (order varies run to run, so any fold, output, or
/// first-match over it is unstable) and thread-configuration-dependent
/// values (`available_parallelism`, `thread::current`). The `par`
/// crate is exempt from the thread checks — sizing a worker pool is
/// its job; results must still not depend on the answer, which the
/// hash check and the perf-identity suite patrol from the other side.
fn check_determinism(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    par_crate: bool,
    findings: &mut Vec<Finding>,
) {
    let hash_names = hash_bound_names(tokens);
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident || in_test(i) {
            continue;
        }
        let name = t.text.as_str();
        // `m.iter()` / `m.values()` / … on a hash-bound name.
        if HASH_ITERS.contains(&name)
            && prev(tokens, i).is_some_and(|p| is_punct(p, "."))
            && tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, "("))
        {
            let recv = i.checked_sub(2).and_then(|k| tokens.get(k));
            if let Some(r) = recv.filter(|r| hash_names.contains(&r.text)) {
                findings.push(Finding {
                    rule: Rule::L011,
                    severity: Rule::L011.severity(),
                    file: file.to_owned(),
                    line: t.line,
                    alt_line: None,
                    message: format!(
                        "hash-ordered iteration `{}.{name}()`; the visit order varies run \
                         to run — use a BTreeMap/BTreeSet, or collect and sort before \
                         consuming — or justify with `// lint: allow(L011, reason)`",
                        r.text
                    ),
                });
            }
            continue;
        }
        // `for x in m` / `for x in &mut m` on a hash-bound name.
        if hash_names.contains(name)
            && !tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, "."))
        {
            let mut j = i;
            while let Some(p) = prev(tokens, j) {
                if is_punct(p, "&") || is_ident(p, "mut") {
                    j = j.saturating_sub(1);
                } else {
                    break;
                }
            }
            if prev(tokens, j).is_some_and(|p| is_ident(p, "in")) {
                findings.push(Finding {
                    rule: Rule::L011,
                    severity: Rule::L011.severity(),
                    file: file.to_owned(),
                    line: t.line,
                    alt_line: None,
                    message: format!(
                        "hash-ordered iteration over `{name}`; the visit order varies run \
                         to run — use a BTreeMap/BTreeSet, or collect and sort before \
                         consuming — or justify with `// lint: allow(L011, reason)`"
                    ),
                });
            }
            continue;
        }
        if par_crate {
            continue;
        }
        // `available_parallelism()` / `thread_rng()` and
        // `thread::current()` — host-configuration-dependent values.
        let thread_call = THREAD_DEPENDENT_CALLS.contains(&name)
            && tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, "("));
        let thread_current = name == "current"
            && prev(tokens, i).is_some_and(|p| is_punct(p, "::"))
            && i.checked_sub(2)
                .and_then(|k| tokens.get(k))
                .is_some_and(|p| is_ident(p, "thread"));
        if thread_call || thread_current {
            findings.push(Finding {
                rule: Rule::L011,
                severity: Rule::L011.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: format!(
                    "`{name}` depends on the host's thread configuration; results must \
                     not vary with worker count — confine it to mcpat-par's pool sizing \
                     or justify with `// lint: allow(L011, reason)`"
                ),
            });
        }
    }
}

/// Collects `*Config`/`*Spec` struct definitions (name, fields, lines)
/// for the per-crate L004 pass.
fn collect_structs(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<StructDef>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !is_ident(t, "struct") || in_test(i) {
            continue;
        }
        let Some(name_tok) = tok(tokens, i.saturating_add(1)) else {
            continue;
        };
        if name_tok.kind != Kind::Ident
            || !(name_tok.text.ends_with("Config") || name_tok.text.ends_with("Spec"))
        {
            continue;
        }
        if let Some(fields) = parse_named_fields(tokens, i.saturating_add(2)) {
            out.push(StructDef {
                name: name_tok.text.clone(),
                file: file.to_owned(),
                line: t.line,
                fields,
            });
        }
    }
}

/// From just after a struct's name, finds its `{ ... }` body (skipping
/// generics/where clauses) and extracts named fields. `None` for tuple
/// and unit structs.
fn parse_named_fields(tokens: &[Token], mut i: usize) -> Option<Vec<(String, usize)>> {
    let mut angle_depth = 0usize;
    let body_start = loop {
        let t = tok(tokens, i)?;
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "<" => angle_depth = angle_depth.saturating_add(1),
                ">" => angle_depth = angle_depth.saturating_sub(1),
                ">>" => angle_depth = angle_depth.saturating_sub(2),
                "{" if angle_depth == 0 => break i,
                "(" | ";" if angle_depth == 0 => return None,
                _ => {}
            }
        }
        i = i.saturating_add(1);
    };
    let body_end = match_close(tokens, body_start, "{", "}");
    let body = tokens.get(body_start.saturating_add(1)..body_end)?;

    let mut fields = Vec::new();
    let (mut brace, mut angle, mut paren, mut bracket) = (0usize, 0usize, 0usize, 0usize);
    let mut expecting = true;
    for (j, t) in body.iter().enumerate() {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" => brace = brace.saturating_add(1),
                "}" => brace = brace.saturating_sub(1),
                "<" => angle = angle.saturating_add(1),
                ">" => angle = angle.saturating_sub(1),
                ">>" => angle = angle.saturating_sub(2),
                "(" => paren = paren.saturating_add(1),
                ")" => paren = paren.saturating_sub(1),
                "[" => bracket = bracket.saturating_add(1),
                "]" => bracket = bracket.saturating_sub(1),
                "," if brace == 0 && angle == 0 && paren == 0 && bracket == 0 => {
                    expecting = true;
                }
                _ => {}
            }
            continue;
        }
        let at_top = brace == 0 && angle == 0 && paren == 0 && bracket == 0;
        if expecting
            && at_top
            && t.kind == Kind::Ident
            && !is_keyword(&t.text)
            && body
                .get(j.saturating_add(1))
                .is_some_and(|n| is_punct(n, ":"))
        {
            fields.push((t.text.clone(), t.line));
            expecting = false;
        }
    }
    Some(fields)
}

/// Adds every identifier inside `validate*` function bodies to the
/// file's mention set (L004's "is this field checked?" evidence).
fn collect_validate_idents(tokens: &[Token], out: &mut FileAnalysis) {
    for (i, t) in tokens.iter().enumerate() {
        let is_validate_fn = t.kind == Kind::Ident
            && t.text.starts_with("validate")
            && prev(tokens, i).is_some_and(|p| is_ident(p, "fn"));
        if !is_validate_fn {
            continue;
        }
        out.has_validate = true;
        if let Some((start, end)) = fn_body_span(tokens, i) {
            for bt in tokens.get(start..=end).unwrap_or_default() {
                if bt.kind == Kind::Ident && !is_keyword(&bt.text) {
                    out.validate_idents.insert(bt.text.clone());
                }
            }
        }
    }
}

/// Per-crate L004 state, merged from every file of the crate.
#[derive(Debug, Default)]
pub struct CrateValidation {
    /// All `*Config`/`*Spec` structs in the crate.
    pub structs: Vec<StructDef>,
    /// Union of identifiers mentioned in the crate's validate bodies.
    pub mentioned: BTreeSet<String>,
    /// Whether any validate function exists in the crate.
    pub has_validate: bool,
}

impl CrateValidation {
    /// Folds one file's contribution in.
    pub fn absorb(&mut self, analysis: &FileAnalysis) {
        self.structs.extend(analysis.structs.iter().cloned());
        self.mentioned
            .extend(analysis.validate_idents.iter().cloned());
        self.has_validate |= analysis.has_validate;
    }

    /// L004 — emits one finding per `*Config`/`*Spec` field that no
    /// validate body in the crate ever mentions. An allow annotation on
    /// the `struct` line waives the whole struct (`alt_line`).
    #[must_use]
    pub fn findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for def in &self.structs {
            if !self.has_validate {
                out.push(Finding {
                    rule: Rule::L004,
                    severity: Rule::L004.severity(),
                    file: def.file.clone(),
                    line: def.line,
                    alt_line: None,
                    message: format!(
                        "struct {} has no validate() anywhere in its crate; add one or \
                         justify with `// lint: allow(L004, reason)`",
                        def.name
                    ),
                });
                continue;
            }
            for (field, line) in &def.fields {
                if !self.mentioned.contains(field) {
                    out.push(Finding {
                        rule: Rule::L004,
                        severity: Rule::L004.severity(),
                        file: def.file.clone(),
                        line: *line,
                        alt_line: Some(def.line),
                        message: format!(
                            "field {}.{field} is never mentioned in any validate() of its \
                             crate; validate it or justify with `// lint: allow(L004, reason)`",
                            def.name
                        ),
                    });
                }
            }
        }
        out
    }
}

/// Parses every `lint: allow(RULE, reason)` annotation in the file's
/// comments; malformed ones become [`Rule::Allowance`] warnings.
fn parse_allows(rel_path: &str, lexed: &Lexed, out: &mut FileAnalysis) {
    // Sorted token lines, for resolving own-line annotations to the
    // next token-bearing line.
    let token_lines: Vec<usize> = {
        let set: std::collections::BTreeSet<usize> = lexed.tokens.iter().map(|t| t.line).collect();
        set.into_iter().collect()
    };
    for c in &lexed.comments {
        let Some(at) = c.text.find("lint:") else {
            continue;
        };
        let after = c.text.get(at..).unwrap_or_default();
        let Some(open) = after.find("allow(") else {
            continue;
        };
        let inner = after
            .get(open.saturating_add(6)..)
            .and_then(|rest| rest.rfind(')').and_then(|close| rest.get(..close)));
        let (id, reason) = match inner.map(|body| match body.split_once(',') {
            Some((id, reason)) => (id.trim().to_owned(), reason.trim().to_owned()),
            None => (body.trim().to_owned(), String::new()),
        }) {
            Some(parts) => parts,
            None => continue,
        };
        // Prose *about* the syntax (`allow(L00n, reason)` in docs) has
        // an unparseable rule id — skip it silently. A real rule id
        // with a missing reason is a genuine mistake and warns.
        let Some(rule) = Rule::from_id(&id) else {
            continue;
        };
        if reason.is_empty() {
            out.annotation_warnings.push(Finding {
                rule: Rule::Allowance,
                severity: Rule::Allowance.severity(),
                file: rel_path.to_owned(),
                line: c.line,
                alt_line: None,
                message: format!(
                    "lint annotation allow({id}) is missing its mandatory reason; \
                     write `lint: allow({id}, reason)`",
                ),
            });
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            let pos = token_lines.partition_point(|&l| l <= c.line);
            token_lines.get(pos).copied().unwrap_or(c.line)
        };
        out.allows.push(Allow {
            rule,
            reason,
            target_line,
            comment_line: c.line,
        });
    }
}

/// Applies allow annotations to findings: suppressed findings are
/// removed, allowances that silenced nothing become warnings.
/// (`BTreeMap`s throughout — the unused-allow warnings come out of an
/// iteration, and L011 dogfoods this very file.)
#[must_use]
pub fn apply_allows(
    findings: Vec<Finding>,
    allows_by_file: &BTreeMap<String, Vec<Allow>>,
) -> Vec<Finding> {
    let mut used: BTreeMap<(String, Rule, usize), bool> = BTreeMap::new();
    for (file, allows) in allows_by_file {
        for a in allows {
            used.entry((file.clone(), a.rule, a.target_line))
                .or_insert(false);
        }
    }

    let mut kept = Vec::new();
    for f in findings {
        let mut covered = false;
        for line in std::iter::once(f.line).chain(f.alt_line) {
            if let Some(flag) = used.get_mut(&(f.file.clone(), f.rule, line)) {
                *flag = true;
                covered = true;
                break;
            }
        }
        if !covered {
            kept.push(f);
        }
    }

    // Deterministic order for the unused-allow warnings.
    let unused: BTreeMap<(String, usize), Rule> = used
        .into_iter()
        .filter_map(|((file, rule, line), was_used)| (!was_used).then_some(((file, line), rule)))
        .collect();
    for ((file, line), rule) in unused {
        kept.push(Finding {
            rule: Rule::Allowance,
            severity: Rule::Allowance.severity(),
            file,
            line,
            alt_line: None,
            message: format!(
                "unused lint annotation: allow({}) silences nothing on this line; remove it",
                rule.id()
            ),
        });
    }
    kept
}
