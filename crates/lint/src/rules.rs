//! The project-invariant rules, L001–L009.
//!
//! Each rule is a pure function over one file's token stream (plus, for
//! L004, a per-crate accumulation step). Rules never look inside
//! strings or comments — the lexer already hid those — and every rule
//! skips `#[cfg(test)]` / `#[test]` regions, where panics and direct
//! env manipulation are legitimate.
//!
//! | Rule | Invariant |
//! |---|---|
//! | L001 | no panicking `x[i]` indexing in library code |
//! | L002 | no raw `==`/`!=` against float literals |
//! | L003 | `std::env` reads confined to the `knobs` module |
//! | L004 | every `*Config`/`*Spec` field mentioned in a `validate()` |
//! | L005 | no `.lock()` guard bound in a scope that fans out |
//! | L006 | no `unwrap`/`expect`/`panic!` family in library code |
//! | L007 | no before/after deltas over global `memo`/`pool` counters |
//! | L008 | solver/build loops carry a budget checkpoint |
//! | L009 | no per-iteration heap allocation in `lint: hot` regions |
//!
//! A violation is silenced by `// lint: allow(L00n, reason)` — trailing
//! on the offending line, or on its own line immediately above (the
//! annotation then covers the next token-bearing line). The reason is
//! mandatory; an annotation that silences nothing is itself reported,
//! so stale allows cannot accumulate.

use crate::lexer::{is_keyword, Kind, Lexed, Token};
use mcpat_diag::Severity;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Identifier of one invariant rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Panicking slice/array indexing.
    L001,
    /// Raw float equality.
    L002,
    /// `std::env` read outside the knobs module.
    L003,
    /// `*Config`/`*Spec` field never mentioned in a `validate()`.
    L004,
    /// Lock guard bound in a scope that also fans out.
    L005,
    /// `unwrap`/`expect`/`panic!`-family call in library code.
    L006,
    /// Before/after delta over the global `memo::stats()` /
    /// `pool::stats()` counters outside `mcpat-obs`.
    L007,
    /// A loop over candidates/probes/rungs (one calling solver or
    /// build APIs) with no budget checkpoint in its body.
    L008,
    /// Heap allocation inside a `// lint: hot` region — the solver's
    /// per-candidate loops and other marked cold-path hot spots.
    L009,
    /// A `lint: allow` annotation that silenced nothing, or is
    /// malformed (missing its mandatory reason).
    Allowance,
}

impl Rule {
    /// Stable rule id as it appears in reports and annotations.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
            Rule::L009 => "L009",
            Rule::Allowance => "allow",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        match id {
            "L001" => Some(Rule::L001),
            "L002" => Some(Rule::L002),
            "L003" => Some(Rule::L003),
            "L004" => Some(Rule::L004),
            "L005" => Some(Rule::L005),
            "L006" => Some(Rule::L006),
            "L007" => Some(Rule::L007),
            "L008" => Some(Rule::L008),
            "L009" => Some(Rule::L009),
            _ => None,
        }
    }

    /// Violations of the numbered rules are errors; annotation hygiene
    /// problems are warnings.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Rule::Allowance => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One rule violation (or annotation-hygiene warning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which invariant was violated.
    pub rule: Rule,
    /// Error or warning, from [`Rule::severity`].
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the violation.
    pub line: usize,
    /// Alternate line an allow annotation may sit on (for L004, the
    /// `struct` line waives every field at once).
    pub alt_line: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

/// One parsed `// lint: allow(RULE, reason)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The silenced rule.
    pub rule: Rule,
    /// Mandatory justification text.
    pub reason: String,
    /// The line whose findings this annotation covers.
    pub target_line: usize,
    /// The line the annotation itself sits on (for reporting).
    pub comment_line: usize,
}

/// Everything one file contributes: raw findings, allow annotations,
/// and its share of the per-crate L004 state.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Raw findings, before allow suppression (L004 excluded — that
    /// rule needs the whole crate).
    pub findings: Vec<Finding>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
    /// Malformed-annotation warnings (already final).
    pub annotation_warnings: Vec<Finding>,
    /// `*Config`/`*Spec` structs defined in this file.
    pub structs: Vec<StructDef>,
    /// Identifiers mentioned inside `validate*` function bodies.
    pub validate_idents: HashSet<String>,
    /// Whether the file defines any `validate*` function.
    pub has_validate: bool,
}

/// A `*Config`/`*Spec` struct definition found by the light parser.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// Line of the `struct` keyword.
    pub line: usize,
    /// Named fields with their lines.
    pub fields: Vec<(String, usize)>,
}

/// Analyzes one lexed file against every single-file rule and collects
/// the L004 raw material. `knobs_file` exempts the file from L003;
/// `obs_crate` exempts it from L007 (the observability crate is where
/// scoped attribution is implemented, so it legitimately reconciles
/// global counters).
#[must_use]
pub fn analyze(rel_path: &str, lexed: &Lexed, knobs_file: bool, obs_crate: bool) -> FileAnalysis {
    let tokens = &lexed.tokens;
    let test_spans = test_spans(tokens);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx <= b);

    let mut out = FileAnalysis::default();
    parse_allows(rel_path, lexed, &mut out);

    check_indexing(rel_path, tokens, &in_test, &mut out.findings);
    check_float_eq(rel_path, tokens, &in_test, &mut out.findings);
    if !knobs_file {
        check_env_reads(rel_path, tokens, &in_test, &mut out.findings);
    }
    check_lock_across_fanout(rel_path, tokens, &in_test, &mut out.findings);
    check_panicking_calls(rel_path, tokens, &in_test, &mut out.findings);
    if !obs_crate {
        check_global_deltas(rel_path, tokens, &in_test, &mut out.findings);
    }
    check_loop_budgets(rel_path, tokens, &in_test, &mut out.findings);
    check_hot_allocs(rel_path, lexed, &in_test, &mut out.findings);

    collect_structs(rel_path, tokens, &in_test, &mut out.structs);
    collect_validate_idents(tokens, &mut out);

    dedupe(&mut out.findings);
    out
}

/// Drops repeated findings of the same rule on the same line (e.g.
/// `m[i][j]` is one annotatable site, not two).
fn dedupe(findings: &mut Vec<Finding>) {
    let mut seen: HashSet<(Rule, String, usize)> = HashSet::new();
    findings.retain(|f| seen.insert((f.rule, f.file.clone(), f.line)));
}

fn tok(tokens: &[Token], idx: usize) -> Option<&Token> {
    tokens.get(idx)
}

fn prev(tokens: &[Token], idx: usize) -> Option<&Token> {
    idx.checked_sub(1).and_then(|j| tokens.get(j))
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == Kind::Punct && t.text == text
}

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == Kind::Ident && t.text == text
}

/// Token-index spans covered by `#[cfg(test)]` / `#[test]` items.
///
/// After a test attribute, every further attribute is skipped and the
/// next braced block (the `mod`/`fn` body) is the span. An attribute
/// mentioning `test` on a `mod tests;` external declaration has no
/// brace and contributes nothing.
fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while let Some(t) = tok(tokens, i) {
        if is_punct(t, "#") && tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, "[")) {
            let attr_start = i.saturating_add(1);
            let attr_end = match_close(tokens, attr_start, "[", "]");
            let idents: Vec<&str> = tokens
                .get(attr_start..=attr_end)
                .unwrap_or_default()
                .iter()
                .filter(|t| t.kind == Kind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            // `#[test]` or a positive `#[cfg(... test ...)]` — but not
            // `#[cfg(not(test))]` (library code!) or `#[cfg_attr(...)]`.
            let mentions_test = match idents.split_first() {
                Some((&"test", rest)) => rest.is_empty(),
                Some((&"cfg", rest)) => rest.contains(&"test") && !rest.contains(&"not"),
                _ => false,
            };
            if mentions_test {
                // Skip any further attributes, then find the item body.
                let mut j = attr_end.saturating_add(1);
                while tok(tokens, j).is_some_and(|t| is_punct(t, "#"))
                    && tok(tokens, j.saturating_add(1)).is_some_and(|t| is_punct(t, "["))
                {
                    j = match_close(tokens, j.saturating_add(1), "[", "]").saturating_add(1);
                }
                let mut body_start = None;
                while let Some(t) = tok(tokens, j) {
                    if is_punct(t, "{") {
                        body_start = Some(j);
                        break;
                    }
                    if is_punct(t, ";") {
                        break;
                    }
                    j = j.saturating_add(1);
                }
                if let Some(start) = body_start {
                    let end = match_close(tokens, start, "{", "}");
                    spans.push((start, end));
                    i = end.saturating_add(1);
                    continue;
                }
            }
            i = attr_end.saturating_add(1);
            continue;
        }
        i = i.saturating_add(1);
    }
    spans
}

/// Index of the delimiter closing the one at `open_idx` (which must
/// hold `open`). Returns the last token index if unbalanced.
fn match_close(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while let Some(t) = tok(tokens, i) {
        if is_punct(t, open) {
            depth = depth.saturating_add(1);
        } else if is_punct(t, close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i = i.saturating_add(1);
    }
    tokens.len().saturating_sub(1)
}

/// L001 — a `[` directly after an expression tail (identifier, `)`,
/// `]`) opens a panicking index/slice expression.
fn check_indexing(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !is_punct(t, "[") || in_test(i) {
            continue;
        }
        let indexes_expr = prev(tokens, i).is_some_and(|p| {
            (p.kind == Kind::Ident && !is_keyword(&p.text)) || is_punct(p, ")") || is_punct(p, "]")
        });
        if indexes_expr {
            findings.push(Finding {
                rule: Rule::L001,
                severity: Rule::L001.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: String::from(
                    "panicking index expression; use .get()/.get_mut(), an iterator, \
                     or split_at/chunks — or justify with `// lint: allow(L001, reason)`",
                ),
            });
        }
    }
}

/// L002 — `==`/`!=` with a float literal on either side.
fn check_float_eq(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Punct || (t.text != "==" && t.text != "!=") || in_test(i) {
            continue;
        }
        let prev_float = prev(tokens, i).is_some_and(|p| p.kind == Kind::Float);
        let next = tok(tokens, i.saturating_add(1));
        let next_float = match next {
            Some(n) if n.kind == Kind::Float => true,
            Some(n) if is_punct(n, "-") => {
                tok(tokens, i.saturating_add(2)).is_some_and(|nn| nn.kind == Kind::Float)
            }
            _ => false,
        };
        if prev_float || next_float {
            findings.push(Finding {
                rule: Rule::L002,
                severity: Rule::L002.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: String::from(
                    "raw float equality; compare canonical bits (to_bits) or use a tolerance \
                     — or justify with `// lint: allow(L002, reason)`",
                ),
            });
        }
    }
}

/// Environment accessors whose use outside the knobs module L003 bans.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os", "set_var", "remove_var"];

/// L003 — `env::var`-family access outside the designated knobs module.
fn check_env_reads(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !is_ident(t, "env") || in_test(i) {
            continue;
        }
        let path_read = tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, "::"))
            && tok(tokens, i.saturating_add(2))
                .is_some_and(|n| n.kind == Kind::Ident && ENV_READS.contains(&n.text.as_str()));
        if path_read {
            findings.push(Finding {
                rule: Rule::L003,
                severity: Rule::L003.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: String::from(
                    "environment variable access outside the knobs module; declare the knob \
                     in mcpat_par::knobs instead",
                ),
            });
        }
    }
}

/// Fan-out entry points a held lock guard must not overlap with: the
/// public `mcpat_par` fan-outs plus the persistent pool's submission
/// seams (`submit`/`help_until` and the pooled wrappers). A guard held
/// across pool submission can deadlock against a worker that needs the
/// same lock to make progress.
const FANOUT_CALLS: &[&str] = &[
    "par_map",
    "join2",
    "join4",
    "join6",
    "par_map_pooled",
    "join2_pooled",
    "join4_pooled",
    "join6_pooled",
    "submit",
    "help_until",
];

/// L005 — a `let`-bound `.lock()` guard in a function whose body also
/// fans out (`par_map`/`join*`) or submits to the persistent pool
/// (`submit`/`help_until`/`*_pooled`). Conservative by design: the
/// guard may be dropped before the fan-out, but proving that needs an
/// AST, so such code carries an allow annotation with the argument
/// spelled out.
fn check_lock_across_fanout(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while let Some(t) = tok(tokens, i) {
        if !is_ident(t, "fn") || in_test(i) {
            i = i.saturating_add(1);
            continue;
        }
        let Some((body_start, body_end)) = fn_body_span(tokens, i) else {
            i = i.saturating_add(1);
            continue;
        };
        let body = tokens.get(body_start..=body_end).unwrap_or_default();
        let fans_out = body
            .iter()
            .any(|t| t.kind == Kind::Ident && FANOUT_CALLS.contains(&t.text.as_str()));
        if fans_out {
            for (j, bt) in body.iter().enumerate() {
                let lock_call = is_ident(bt, "lock")
                    && j.checked_sub(1)
                        .and_then(|k| body.get(k))
                        .is_some_and(|p| is_punct(p, "."))
                    && body
                        .get(j.saturating_add(1))
                        .is_some_and(|n| is_punct(n, "("));
                if lock_call && stmt_has_let(body, j) {
                    findings.push(Finding {
                        rule: Rule::L005,
                        severity: Rule::L005.severity(),
                        file: file.to_owned(),
                        line: bt.line,
                        alt_line: None,
                        message: String::from(
                            "lock guard bound in a scope that also fans out (par_map/join*) \
                             or submits to the thread pool (submit/help_until); holding a \
                             shard across a fan-out risks deadlock/contention — drop the \
                             guard first or justify with `// lint: allow(L005, reason)`",
                        ),
                    });
                }
            }
        }
        // Continue after the signature, not the body: nested fns are
        // re-scanned in their own right.
        i = body_start.saturating_add(1);
    }
}

/// The `{`..`}` token span of the body of the `fn` at `fn_idx`, or
/// `None` for body-less declarations (trait methods, externs).
fn fn_body_span(tokens: &[Token], fn_idx: usize) -> Option<(usize, usize)> {
    let mut i = fn_idx.saturating_add(1);
    let mut paren_depth = 0usize;
    let mut angle_depth = 0usize;
    while let Some(t) = tok(tokens, i) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" => paren_depth = paren_depth.saturating_add(1),
                ")" => paren_depth = paren_depth.saturating_sub(1),
                "<" => angle_depth = angle_depth.saturating_add(1),
                ">" => angle_depth = angle_depth.saturating_sub(1),
                ">>" => angle_depth = angle_depth.saturating_sub(2),
                "{" if paren_depth == 0 && angle_depth == 0 => {
                    return Some((i, match_close(tokens, i, "{", "}")));
                }
                ";" if paren_depth == 0 => return None,
                _ => {}
            }
        }
        i = i.saturating_add(1);
    }
    None
}

/// Whether the statement containing token `idx` (scanning back to the
/// nearest `;`, `{` or `}`) starts with `let` — i.e. binds a name.
fn stmt_has_let(body: &[Token], idx: usize) -> bool {
    let mut j = idx;
    while let Some(k) = j.checked_sub(1) {
        let Some(t) = body.get(k) else { break };
        if is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") {
            break;
        }
        if is_ident(t, "let") {
            return true;
        }
        j = k;
    }
    false
}

/// Macros banned by L006 when invoked (`ident` followed by `!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// L006 — `.unwrap()` / `.expect(...)` calls and panic-family macro
/// invocations in library code. Backstop for the clippy deny lints,
/// enforced without needing a clean `cargo check`.
fn check_panicking_calls(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident || in_test(i) {
            continue;
        }
        let next_is =
            |text: &str| tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, text));
        let method_call = (t.text == "unwrap" || t.text == "expect")
            && prev(tokens, i).is_some_and(|p| is_punct(p, "."))
            && next_is("(");
        let macro_call = PANIC_MACROS.contains(&t.text.as_str()) && next_is("!");
        if method_call || macro_call {
            findings.push(Finding {
                rule: Rule::L006,
                severity: Rule::L006.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: format!(
                    "panicking call `{}` in library code; return a typed error or diagnostic \
                     — or justify with `// lint: allow(L006, reason)`",
                    t.text
                ),
            });
        }
    }
}

/// L007 — a before/after delta over the process-global counter
/// accessors: a function body that both calls `memo::stats()` or
/// `pool::stats()` and computes a `saturating_sub` is attributing
/// process-wide traffic to itself. Concurrent callers cross-bill each
/// other's cache misses, steals and allocations; scoped attribution
/// lives in `mcpat-obs` (enter a `Collector`, read its snapshot), the
/// one crate exempt from this rule. Tests are exempt too: a test that
/// serializes itself may legitimately assert on the globals.
fn check_global_deltas(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while let Some(t) = tok(tokens, i) {
        if !is_ident(t, "fn") || in_test(i) {
            i = i.saturating_add(1);
            continue;
        }
        let Some((body_start, body_end)) = fn_body_span(tokens, i) else {
            i = i.saturating_add(1);
            continue;
        };
        let body = tokens.get(body_start..=body_end).unwrap_or_default();
        let subtracts = body.iter().any(|bt| is_ident(bt, "saturating_sub"));
        if subtracts {
            for (j, bt) in body.iter().enumerate() {
                let stats_call = is_ident(bt, "stats")
                    && j.checked_sub(1)
                        .and_then(|k| body.get(k))
                        .is_some_and(|p| is_punct(p, "::"))
                    && j.checked_sub(2)
                        .and_then(|k| body.get(k))
                        .is_some_and(|p| is_ident(p, "memo") || is_ident(p, "pool"))
                    && body
                        .get(j.saturating_add(1))
                        .is_some_and(|n| is_punct(n, "("));
                if stats_call {
                    findings.push(Finding {
                        rule: Rule::L007,
                        severity: Rule::L007.severity(),
                        file: file.to_owned(),
                        line: bt.line,
                        alt_line: None,
                        message: String::from(
                            "before/after delta over the global memo/pool counters; concurrent \
                             callers cross-bill each other — enter an mcpat_obs::Collector scope \
                             and read its snapshot, or justify with `// lint: allow(L007, reason)`",
                        ),
                    });
                }
            }
        }
        // Continue after the signature, not the body: nested fns are
        // re-scanned in their own right.
        i = body_start.saturating_add(1);
    }
}

/// Solver/build entry points whose call inside a loop body marks that
/// loop as iterating candidates, probes, or rungs — the long-running
/// sweeps that must stay responsive to deadlines and cancellation.
const BUDGETED_CALLS: &[&str] = &[
    "solve",
    "solve_fixed",
    "solve_uncached",
    "lookup_or_solve",
    "evaluate_raw",
    "sweep_cell",
    "rebuild_with_clock",
    "rebuild_incremental",
    "build",
    "build_inner",
];

/// Checkpoint idents that satisfy L008 when called inside the loop:
/// the `mcpat_guard` entry points and the crate-local wrappers that
/// forward to them.
const BUDGET_CHECKS: &[&str] = &["check", "check_self", "budget_check", "checkpoint"];

/// L008 — a `for`/`while`/`loop` body that calls a solver or build API
/// (candidate sweeps, relaxation rungs, bisection probes, batch builds)
/// but contains no budget checkpoint. Such a loop cannot honor a
/// deadline or a cooperative cancel until it finishes on its own.
fn check_loop_budgets(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while let Some(t) = tok(tokens, i) {
        let loop_kw = t.kind == Kind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop");
        if !loop_kw || in_test(i) {
            i = i.saturating_add(1);
            continue;
        }
        // The loop body is the first `{` at top delimiter depth after
        // the keyword: Rust bans struct literals in loop headers, so
        // nothing else opens a brace there.
        let mut j = i.saturating_add(1);
        let (mut paren, mut bracket) = (0usize, 0usize);
        let mut body_start = None;
        while let Some(h) = tok(tokens, j) {
            if h.kind == Kind::Punct {
                match h.text.as_str() {
                    "(" => paren = paren.saturating_add(1),
                    ")" => paren = paren.saturating_sub(1),
                    "[" => bracket = bracket.saturating_add(1),
                    "]" => bracket = bracket.saturating_sub(1),
                    "{" if paren == 0 && bracket == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    ";" if paren == 0 && bracket == 0 => break,
                    _ => {}
                }
            }
            j = j.saturating_add(1);
        }
        let Some(start) = body_start else {
            i = i.saturating_add(1);
            continue;
        };
        let end = match_close(tokens, start, "{", "}");
        let body = tokens.get(start..=end).unwrap_or_default();
        let calls = |names: &[&str]| {
            body.iter().enumerate().any(|(k, bt)| {
                bt.kind == Kind::Ident
                    && names.contains(&bt.text.as_str())
                    && body
                        .get(k.saturating_add(1))
                        .is_some_and(|n| is_punct(n, "("))
            })
        };
        if calls(BUDGETED_CALLS) && !calls(BUDGET_CHECKS) {
            findings.push(Finding {
                rule: Rule::L008,
                severity: Rule::L008.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: String::from(
                    "loop calls solver/build APIs but has no budget checkpoint; add an \
                     mcpat_guard::check() (or a wrapper forwarding to it) in the body so \
                     deadlines and cancellation stay responsive — or justify with \
                     `// lint: allow(L008, reason)`",
                ),
            });
        }
        // Advance one token only: nested loops are scanned in their own
        // right (each iteration layer needs its own checkpoint or an
        // inner one that covers it).
        i = i.saturating_add(1);
    }
}

/// Owning-container types whose `::new`/`::from`/`::with_capacity`
/// constructors hit the global allocator (or will on first push).
const ALLOC_OWNERS: &[&str] = &[
    "Vec",
    "VecDeque",
    "Box",
    "String",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
];

/// Constructor idents that allocate when invoked on an owner above.
const ALLOC_CTORS: &[&str] = &["new", "from", "with_capacity"];

/// Method calls that copy into fresh heap storage.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "clone"];

/// Macros that expand to heap allocation.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// The `// lint: hot` … `// lint: hot end` line ranges of a file:
/// explicitly marked per-candidate regions (the solver sweep, batch
/// build inner loops) that L009 patrols for heap allocation. An
/// unclosed opener extends to end of file.
fn hot_ranges(lexed: &Lexed) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut open: Option<usize> = None;
    for c in &lexed.comments {
        let Some(at) = c.text.find("lint:") else {
            continue;
        };
        let rest = c.text.get(at.saturating_add(5)..).unwrap_or_default().trim_start();
        let Some(tail) = rest.strip_prefix("hot") else {
            continue;
        };
        if tail.trim() == "end" {
            if let Some(start) = open.take() {
                ranges.push((start, c.line));
            }
        } else if tail.trim().is_empty() {
            open = open.or(Some(c.line));
        }
    }
    if let Some(start) = open {
        ranges.push((start, usize::MAX));
    }
    ranges
}

/// L009 — heap allocation inside a `// lint: hot` region. Hot regions
/// mark per-candidate code (the solver's scoring sweep runs tens of
/// thousands of times per cold build), where a single `Vec::new` or
/// `.clone()` of a non-`Copy` value turns into allocator churn that
/// dominates the profile. Flags owning-container constructors,
/// copy-to-heap methods, and allocating macros; scratch should come
/// from the arena or fixed-size lanes hoisted out of the loop.
fn check_hot_allocs(
    file: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let ranges = hot_ranges(lexed);
    if ranges.is_empty() {
        return;
    }
    let tokens = &lexed.tokens;
    let in_hot = |line: usize| ranges.iter().any(|&(a, b)| line >= a && line <= b);
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Ident || !in_hot(t.line) || in_test(i) {
            continue;
        }
        let name = t.text.as_str();
        let next_is = |text: &str| {
            tok(tokens, i.saturating_add(1)).is_some_and(|n| is_punct(n, text))
        };
        // `Vec::new(`, `String::with_capacity(`, … — only on the known
        // owning containers, so `Multiplexer::new` and friends (plain
        // value constructors) pass untouched.
        let ctor = ALLOC_CTORS.contains(&name)
            && next_is("(")
            && prev(tokens, i).is_some_and(|p| is_punct(p, "::"))
            && i.checked_sub(2)
                .and_then(|j| tokens.get(j))
                .is_some_and(|o| o.kind == Kind::Ident && ALLOC_OWNERS.contains(&o.text.as_str()));
        // `.to_vec()`, `.to_owned()`, `.clone()` — copies into fresh
        // heap storage (a `Copy` scalar has no reason to be cloned, so
        // any `.clone()` in a hot region is worth an audited allow).
        let method = ALLOC_METHODS.contains(&name)
            && next_is("(")
            && prev(tokens, i).is_some_and(|p| is_punct(p, "."));
        // `vec![…]`, `format!(…)`.
        let mac = ALLOC_MACROS.contains(&name) && next_is("!");
        if ctor || method || mac {
            findings.push(Finding {
                rule: Rule::L009,
                severity: Rule::L009.severity(),
                file: file.to_owned(),
                line: t.line,
                alt_line: None,
                message: format!(
                    "heap allocation `{name}` inside a `lint: hot` region; reuse arena \
                     scratch or fixed-size lanes hoisted out of the candidate loop — or \
                     justify with `// lint: allow(L009, reason)`"
                ),
            });
        }
    }
}

/// Collects `*Config`/`*Spec` struct definitions (name, fields, lines)
/// for the per-crate L004 pass.
fn collect_structs(
    file: &str,
    tokens: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<StructDef>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !is_ident(t, "struct") || in_test(i) {
            continue;
        }
        let Some(name_tok) = tok(tokens, i.saturating_add(1)) else {
            continue;
        };
        if name_tok.kind != Kind::Ident
            || !(name_tok.text.ends_with("Config") || name_tok.text.ends_with("Spec"))
        {
            continue;
        }
        if let Some(fields) = parse_named_fields(tokens, i.saturating_add(2)) {
            out.push(StructDef {
                name: name_tok.text.clone(),
                file: file.to_owned(),
                line: t.line,
                fields,
            });
        }
    }
}

/// From just after a struct's name, finds its `{ ... }` body (skipping
/// generics/where clauses) and extracts named fields. `None` for tuple
/// and unit structs.
fn parse_named_fields(tokens: &[Token], mut i: usize) -> Option<Vec<(String, usize)>> {
    let mut angle_depth = 0usize;
    let body_start = loop {
        let t = tok(tokens, i)?;
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "<" => angle_depth = angle_depth.saturating_add(1),
                ">" => angle_depth = angle_depth.saturating_sub(1),
                ">>" => angle_depth = angle_depth.saturating_sub(2),
                "{" if angle_depth == 0 => break i,
                "(" | ";" if angle_depth == 0 => return None,
                _ => {}
            }
        }
        i = i.saturating_add(1);
    };
    let body_end = match_close(tokens, body_start, "{", "}");
    let body = tokens.get(body_start.saturating_add(1)..body_end)?;

    let mut fields = Vec::new();
    let (mut brace, mut angle, mut paren, mut bracket) = (0usize, 0usize, 0usize, 0usize);
    let mut expecting = true;
    for (j, t) in body.iter().enumerate() {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" => brace = brace.saturating_add(1),
                "}" => brace = brace.saturating_sub(1),
                "<" => angle = angle.saturating_add(1),
                ">" => angle = angle.saturating_sub(1),
                ">>" => angle = angle.saturating_sub(2),
                "(" => paren = paren.saturating_add(1),
                ")" => paren = paren.saturating_sub(1),
                "[" => bracket = bracket.saturating_add(1),
                "]" => bracket = bracket.saturating_sub(1),
                "," if brace == 0 && angle == 0 && paren == 0 && bracket == 0 => {
                    expecting = true;
                }
                _ => {}
            }
            continue;
        }
        let at_top = brace == 0 && angle == 0 && paren == 0 && bracket == 0;
        if expecting
            && at_top
            && t.kind == Kind::Ident
            && !is_keyword(&t.text)
            && body
                .get(j.saturating_add(1))
                .is_some_and(|n| is_punct(n, ":"))
        {
            fields.push((t.text.clone(), t.line));
            expecting = false;
        }
    }
    Some(fields)
}

/// Adds every identifier inside `validate*` function bodies to the
/// file's mention set (L004's "is this field checked?" evidence).
fn collect_validate_idents(tokens: &[Token], out: &mut FileAnalysis) {
    for (i, t) in tokens.iter().enumerate() {
        let is_validate_fn = t.kind == Kind::Ident
            && t.text.starts_with("validate")
            && prev(tokens, i).is_some_and(|p| is_ident(p, "fn"));
        if !is_validate_fn {
            continue;
        }
        out.has_validate = true;
        if let Some((start, end)) = fn_body_span(tokens, i) {
            for bt in tokens.get(start..=end).unwrap_or_default() {
                if bt.kind == Kind::Ident && !is_keyword(&bt.text) {
                    out.validate_idents.insert(bt.text.clone());
                }
            }
        }
    }
}

/// Per-crate L004 state, merged from every file of the crate.
#[derive(Debug, Default)]
pub struct CrateValidation {
    /// All `*Config`/`*Spec` structs in the crate.
    pub structs: Vec<StructDef>,
    /// Union of identifiers mentioned in the crate's validate bodies.
    pub mentioned: HashSet<String>,
    /// Whether any validate function exists in the crate.
    pub has_validate: bool,
}

impl CrateValidation {
    /// Folds one file's contribution in.
    pub fn absorb(&mut self, analysis: &FileAnalysis) {
        self.structs.extend(analysis.structs.iter().cloned());
        self.mentioned
            .extend(analysis.validate_idents.iter().cloned());
        self.has_validate |= analysis.has_validate;
    }

    /// L004 — emits one finding per `*Config`/`*Spec` field that no
    /// validate body in the crate ever mentions. An allow annotation on
    /// the `struct` line waives the whole struct (`alt_line`).
    #[must_use]
    pub fn findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for def in &self.structs {
            if !self.has_validate {
                out.push(Finding {
                    rule: Rule::L004,
                    severity: Rule::L004.severity(),
                    file: def.file.clone(),
                    line: def.line,
                    alt_line: None,
                    message: format!(
                        "struct {} has no validate() anywhere in its crate; add one or \
                         justify with `// lint: allow(L004, reason)`",
                        def.name
                    ),
                });
                continue;
            }
            for (field, line) in &def.fields {
                if !self.mentioned.contains(field) {
                    out.push(Finding {
                        rule: Rule::L004,
                        severity: Rule::L004.severity(),
                        file: def.file.clone(),
                        line: *line,
                        alt_line: Some(def.line),
                        message: format!(
                            "field {}.{field} is never mentioned in any validate() of its \
                             crate; validate it or justify with `// lint: allow(L004, reason)`",
                            def.name
                        ),
                    });
                }
            }
        }
        out
    }
}

/// Parses every `lint: allow(RULE, reason)` annotation in the file's
/// comments; malformed ones become [`Rule::Allowance`] warnings.
fn parse_allows(rel_path: &str, lexed: &Lexed, out: &mut FileAnalysis) {
    // Sorted token lines, for resolving own-line annotations to the
    // next token-bearing line.
    let token_lines: Vec<usize> = {
        let set: std::collections::BTreeSet<usize> = lexed.tokens.iter().map(|t| t.line).collect();
        set.into_iter().collect()
    };
    for c in &lexed.comments {
        let Some(at) = c.text.find("lint:") else {
            continue;
        };
        let after = c.text.get(at..).unwrap_or_default();
        let Some(open) = after.find("allow(") else {
            continue;
        };
        let inner = after
            .get(open.saturating_add(6)..)
            .and_then(|rest| rest.rfind(')').and_then(|close| rest.get(..close)));
        let (id, reason) = match inner.map(|body| match body.split_once(',') {
            Some((id, reason)) => (id.trim().to_owned(), reason.trim().to_owned()),
            None => (body.trim().to_owned(), String::new()),
        }) {
            Some(parts) => parts,
            None => continue,
        };
        // Prose *about* the syntax (`allow(L00n, reason)` in docs) has
        // an unparseable rule id — skip it silently. A real rule id
        // with a missing reason is a genuine mistake and warns.
        let Some(rule) = Rule::from_id(&id) else {
            continue;
        };
        if reason.is_empty() {
            out.annotation_warnings.push(Finding {
                rule: Rule::Allowance,
                severity: Rule::Allowance.severity(),
                file: rel_path.to_owned(),
                line: c.line,
                alt_line: None,
                message: format!(
                    "lint annotation allow({id}) is missing its mandatory reason; \
                     write `lint: allow({id}, reason)`",
                ),
            });
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            let pos = token_lines.partition_point(|&l| l <= c.line);
            token_lines.get(pos).copied().unwrap_or(c.line)
        };
        out.allows.push(Allow {
            rule,
            reason,
            target_line,
            comment_line: c.line,
        });
    }
}

/// Applies allow annotations to findings: suppressed findings are
/// removed, allowances that silenced nothing become warnings.
#[must_use]
pub fn apply_allows(
    findings: Vec<Finding>,
    allows_by_file: &HashMap<String, Vec<Allow>>,
) -> Vec<Finding> {
    let mut used: HashMap<(String, Rule, usize), bool> = HashMap::new();
    for (file, allows) in allows_by_file {
        for a in allows {
            used.entry((file.clone(), a.rule, a.target_line))
                .or_insert(false);
        }
    }

    let mut kept = Vec::new();
    for f in findings {
        let mut covered = false;
        for line in std::iter::once(f.line).chain(f.alt_line) {
            if let Some(flag) = used.get_mut(&(f.file.clone(), f.rule, line)) {
                *flag = true;
                covered = true;
                break;
            }
        }
        if !covered {
            kept.push(f);
        }
    }

    // Deterministic order for the unused-allow warnings.
    let unused: BTreeMap<(String, usize), Rule> = used
        .into_iter()
        .filter_map(|((file, rule, line), was_used)| (!was_used).then_some(((file, line), rule)))
        .collect();
    for ((file, line), rule) in unused {
        kept.push(Finding {
            rule: Rule::Allowance,
            severity: Rule::Allowance.severity(),
            file,
            line,
            alt_line: None,
            message: format!(
                "unused lint annotation: allow({}) silences nothing on this line; remove it",
                rule.id()
            ),
        });
    }
    kept
}
