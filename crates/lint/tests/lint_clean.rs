#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! The linter's two ground truths: every fixture trips exactly the rule
//! it demonstrates, and the workspace itself is clean under a self-run.

use mcpat_lint::{default_root, lint_source, lint_workspace};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn every_fixture_trips_its_rule() {
    for (file, rule) in [
        ("l001_indexing.rs", "L001"),
        ("l002_float_eq.rs", "L002"),
        ("l003_env_read.rs", "L003"),
        ("l004_unvalidated_field.rs", "L004"),
        ("l005_lock_across_fanout.rs", "L005"),
        ("l005_lock_across_pool_submit.rs", "L005"),
        ("l006_panicking_call.rs", "L006"),
        ("l007_global_delta.rs", "L007"),
        ("l008_unguarded_loop.rs", "L008"),
        ("l009_hot_alloc.rs", "L009"),
    ] {
        let report = lint_source(file, &fixture(file));
        assert!(
            report.findings.iter().any(|f| f.rule.id() == rule),
            "{file} should trip {rule}, got: {:?}",
            report.findings
        );
    }
}

#[test]
fn fixture_findings_name_their_lines() {
    let report = lint_source("l001_indexing.rs", &fixture("l001_indexing.rs"));
    let f = report
        .findings
        .iter()
        .find(|f| f.rule.id() == "L001")
        .expect("an L001 finding");
    assert_eq!(f.file, "l001_indexing.rs");
    assert!(f.line >= 3, "index expression is past the doc header");
}

#[test]
fn an_allow_with_reason_silences_the_fixture() {
    let annotated = fixture("l006_panicking_call.rs").replace(
        "v.unwrap()",
        "// lint: allow(L006, fixture demonstrates suppression)\n    v.unwrap()",
    );
    let report = lint_source("l006_panicking_call.rs", &annotated);
    assert!(
        !report.findings.iter().any(|f| f.rule.id() == "L006"),
        "allow should suppress: {:?}",
        report.findings
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = default_root();
    let report = lint_workspace(&root).unwrap();
    assert!(
        report.files_scanned > 50,
        "expected the whole workspace, scanned {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace must stay lint-clean (errors AND warnings):\n{}",
        report.render()
    );
}
