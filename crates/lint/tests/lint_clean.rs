#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! The linter's two ground truths: every fixture trips exactly the rule
//! it demonstrates, and the workspace itself is clean under a self-run.

use mcpat_lint::{default_root, lint_source, lint_workspace};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn every_fixture_trips_its_rule() {
    for (file, rule) in [
        ("l001_indexing.rs", "L001"),
        ("l002_float_eq.rs", "L002"),
        ("l003_env_read.rs", "L003"),
        ("l004_unvalidated_field.rs", "L004"),
        ("l005_lock_across_fanout.rs", "L005"),
        ("l005_lock_across_pool_submit.rs", "L005"),
        ("l006_panicking_call.rs", "L006"),
        ("l007_global_delta.rs", "L007"),
        ("l008_unguarded_loop.rs", "L008"),
        ("l009_hot_alloc.rs", "L009"),
        ("l010_unit_mix.rs", "L010"),
        ("l011_nondeterminism.rs", "L011"),
        ("l012_unreachable_checkpoint.rs", "L012"),
        ("l012_unguarded_dse_loop.rs", "L012"),
    ] {
        let report = lint_source(file, &fixture(file));
        assert!(
            report.findings.iter().any(|f| f.rule.id() == rule),
            "{file} should trip {rule}, got: {:?}",
            report.findings
        );
    }
}

#[test]
fn fixture_findings_name_their_lines() {
    let report = lint_source("l001_indexing.rs", &fixture("l001_indexing.rs"));
    let f = report
        .findings
        .iter()
        .find(|f| f.rule.id() == "L001")
        .expect("an L001 finding");
    assert_eq!(f.file, "l001_indexing.rs");
    assert!(f.line >= 3, "index expression is past the doc header");
}

#[test]
fn an_allow_with_reason_silences_the_fixture() {
    let annotated = fixture("l006_panicking_call.rs").replace(
        "v.unwrap()",
        "// lint: allow(L006, fixture demonstrates suppression)\n    v.unwrap()",
    );
    let report = lint_source("l006_panicking_call.rs", &annotated);
    assert!(
        !report.findings.iter().any(|f| f.rule.id() == "L006"),
        "allow should suppress: {:?}",
        report.findings
    );
}

#[test]
fn unit_mix_fires_only_on_additive_and_comparison_ops() {
    let report = lint_source("l010_unit_mix.rs", &fixture("l010_unit_mix.rs"));
    let l010_lines: Vec<usize> = report
        .findings
        .iter()
        .filter(|f| f.rule.id() == "L010")
        .map(|f| f.line)
        .collect();
    assert_eq!(l010_lines.len(), 3, "{:?}", report.findings);
    let src = fixture("l010_unit_mix.rs");
    for (n, line) in src.lines().enumerate() {
        if line.contains("// OK") || line.contains("_nj * ") || line.contains("read_nj + write_nj")
        {
            assert!(
                !l010_lines.contains(&(n + 1)),
                "conversion seams and same-unit math must stay clean: line {}",
                n + 1
            );
        }
    }
}

#[test]
fn new_rules_are_silenced_by_reasoned_allows() {
    for (file, rule, site) in [
        ("l010_unit_mix.rs", "L010", "leakage_w + dynamic_mw"),
        (
            "l011_nondeterminism.rs",
            "L011",
            "for (_, w) in parts.iter() {",
        ),
        (
            "l012_unreachable_checkpoint.rs",
            "L012",
            "for c in candidates {",
        ),
        (
            "l012_unguarded_dse_loop.rs",
            "L012",
            "while let Some(clock) = config_at(grid, cursor) {",
        ),
    ] {
        let count = |report: &mcpat_lint::Report| {
            report
                .findings
                .iter()
                .filter(|f| f.rule.id() == rule)
                .count()
        };
        let before = count(&lint_source(file, &fixture(file)));
        let allow = format!("// lint: allow({rule}, fixture demonstrates suppression)\n    {site}");
        let annotated = fixture(file).replace(site, &allow);
        let after = count(&lint_source(file, &annotated));
        assert_eq!(
            after,
            before - 1,
            "{file}: allow should suppress exactly the annotated {rule} site"
        );
    }
}

#[test]
fn the_linter_lints_its_own_sources() {
    let sources = mcpat_lint::collect_workspace_sources(&default_root()).unwrap();
    let own: Vec<&str> = sources
        .iter()
        .map(|s| s.path.as_str())
        .filter(|p| p.starts_with("crates/lint/src/"))
        .collect();
    for file in [
        "crates/lint/src/lib.rs",
        "crates/lint/src/lexer.rs",
        "crates/lint/src/parse.rs",
        "crates/lint/src/ir.rs",
        "crates/lint/src/callgraph.rs",
        "crates/lint/src/rules.rs",
        "crates/lint/src/cache.rs",
        "crates/lint/src/json.rs",
        "crates/lint/src/sarif.rs",
        "crates/lint/src/main.rs",
    ] {
        assert!(own.contains(&file), "self-lint must cover {file}: {own:?}");
    }
}

#[test]
fn workspace_is_lint_clean() {
    let root = default_root();
    let report = lint_workspace(&root).unwrap();
    assert!(
        report.files_scanned > 50,
        "expected the whole workspace, scanned {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace must stay lint-clean (errors AND warnings):\n{}",
        report.render()
    );
}
