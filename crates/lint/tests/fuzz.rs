#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Property tests for the lexer and parser: both are documented as
//! *total* — any byte sequence yields some tokens and some IR, never a
//! panic — and every recorded position stays inside the input.
//!
//! The corpus is every workspace source file, each run through a
//! deterministic mutation fuzzer (truncation, splicing, byte flips,
//! delimiter injection). The RNG is a seeded xorshift; set
//! `MCPAT_LINT_FUZZ_SEED=<n>` to replay a failing run, and widen
//! `MCPAT_LINT_FUZZ_ROUNDS=<n>` for longer soaks. Failures print the
//! seed so they reproduce exactly.

use mcpat_lint::{collect_workspace_sources, default_root, lexer, lint_source, parse};

/// Deterministic xorshift64* — no external RNG crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One random edit. All slicing is done on char boundaries so the
/// mutant stays valid UTF-8 (the linter only ever sees `&str`).
fn mutate(rng: &mut Rng, text: &str) -> String {
    let boundaries: Vec<usize> = text
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(text.len()))
        .collect();
    let at = |rng: &mut Rng| boundaries[rng.below(boundaries.len())];
    match rng.below(6) {
        // Truncate: unterminated strings, half-open braces.
        0 => {
            let cut = at(rng);
            text[..cut].to_owned()
        }
        // Delete a span.
        1 => {
            let (a, b) = (at(rng), at(rng));
            let (a, b) = (a.min(b), a.max(b));
            format!("{}{}", &text[..a], &text[b..])
        }
        // Duplicate a span somewhere else (confuses balanced-delimiter
        // tracking if anything will).
        2 => {
            let (a, b) = (at(rng), at(rng));
            let (a, b) = (a.min(b), a.max(b));
            let dest = at(rng);
            format!("{}{}{}", &text[..dest], &text[a..b], &text[dest..])
        }
        // Inject structure-bearing tokens at a random point.
        3 => {
            let noise = [
                "{",
                "}",
                "(",
                ")",
                "[",
                "]",
                "\"",
                "'",
                "//",
                "/*",
                "*/",
                "::",
                "fn ",
                "impl ",
                "use ",
                "for ",
                "#[",
                "b\"",
                "r#\"",
                "'\\u{",
                "¢",
                "日",
                "\u{10FFFF}",
            ];
            let dest = at(rng);
            let ins = noise[rng.below(noise.len())];
            format!("{}{}{}", &text[..dest], ins, &text[dest..])
        }
        // Replace one char with a random ASCII byte.
        4 => {
            let dest = at(rng);
            let c = char::from(32 + (rng.below(95) as u8));
            let mut out = String::with_capacity(text.len() + 1);
            out.push_str(&text[..dest]);
            out.push(c);
            let rest = &text[dest..];
            let skip = rest.chars().next().map_or(0, char::len_utf8);
            out.push_str(&rest[skip..]);
            out
        }
        // Swap two halves.
        _ => {
            let cut = at(rng);
            format!("{}{}", &text[cut..], &text[..cut])
        }
    }
}

/// The core property: lex and parse succeed, and every recorded
/// position is a valid char-boundary offset (tokens) or in-bounds
/// token index (IR spans).
fn check_total(text: &str, context: &str) {
    let lexed = lexer::lex(text);
    for t in &lexed.tokens {
        assert!(t.start <= t.end, "{context}: token start > end");
        assert!(t.end <= text.len(), "{context}: token end out of bounds");
        assert!(
            text.is_char_boundary(t.start) && text.is_char_boundary(t.end),
            "{context}: token offsets split a char"
        );
        assert!(t.line >= 1, "{context}: token line is 0");
    }
    for c in &lexed.comments {
        assert!(
            c.start <= text.len(),
            "{context}: comment start out of bounds"
        );
        assert!(
            text.is_char_boundary(c.start),
            "{context}: comment offset splits a char"
        );
    }
    let ir = parse::parse(&lexed);
    let n = lexed.tokens.len();
    for f in &ir.functions {
        assert!(f.body.end <= n, "{context}: fn body span out of bounds");
        for call in &f.calls {
            assert!(call.tok < n, "{context}: call token out of bounds");
        }
        for l in &f.loops {
            assert!(l.keyword < n, "{context}: loop keyword out of bounds");
            assert!(l.body.end <= n, "{context}: loop body span out of bounds");
        }
    }
    for im in &ir.impls {
        assert!(im.body.end <= n, "{context}: impl body span out of bounds");
    }
}

#[test]
fn every_workspace_source_fuzzes_clean() {
    let sources = collect_workspace_sources(&default_root()).expect("workspace sources");
    assert!(sources.len() > 50, "corpus unexpectedly small");
    let seed = env_u64("MCPAT_LINT_FUZZ_SEED", 0x9e37_79b9_7f4a_7c15);
    let rounds = env_u64("MCPAT_LINT_FUZZ_ROUNDS", 8) as usize;
    let mut rng = Rng(seed | 1);
    for src in &sources {
        check_total(&src.text, &src.path);
        let mut mutant = src.text.clone();
        for round in 0..rounds {
            mutant = mutate(&mut rng, &mutant);
            check_total(
                &mutant,
                &format!("{} (seed {seed:#x}, round {round})", src.path),
            );
        }
    }
}

#[test]
fn full_pipeline_survives_hostile_mutants() {
    // The whole lint pipeline — rules, call graph, allow parsing — on
    // deeply mutated versions of a structurally rich corpus slice.
    let sources = collect_workspace_sources(&default_root()).expect("workspace sources");
    let seed = env_u64("MCPAT_LINT_FUZZ_SEED", 0xdead_beef_cafe_f00d);
    let mut rng = Rng(seed | 1);
    for src in sources.iter().step_by(7) {
        let mut mutant = src.text.clone();
        for _ in 0..20 {
            mutant = mutate(&mut rng, &mutant);
        }
        // Must not panic; findings on garbage are fine.
        let report = lint_source(&src.path, &mutant);
        let _ = report.render();
        let _ = report.to_json();
        let _ = report.to_sarif();
    }
}

#[test]
fn adversarial_seeds_from_construction() {
    // Hand-built nasties the random mutator is unlikely to hit early.
    for (name, text) in [
        ("empty", String::new()),
        ("only_closers", "}}}])))\u{300}".to_owned()),
        ("unterminated_string", "fn f() { \"abc".to_owned()),
        ("unterminated_raw", "fn f() { r#\"abc".to_owned()),
        ("unterminated_block_comment", "/* fn f() {".to_owned()),
        ("lifetime_vs_char", "'a 'b' '\\'' 'unclosed".to_owned()),
        ("deep_nesting", "fn f() {".repeat(512) + &"}".repeat(512)),
        ("use_soup", "use ::{{{as as as}}};".to_owned()),
        ("impl_soup", "impl<for<'a>> for for {} impl {}".to_owned()),
        ("bom_and_controls", "\u{feff}fn\u{0}f(){\u{7f}}".to_owned()),
        ("just_attrs", "#[cfg(test)] #[test] #[".to_owned()),
        ("shebang", "#!/usr/bin/env rust\nfn f() {}".to_owned()),
    ] {
        check_total(&text, name);
        let _ = lint_source(name, &text);
    }
}
