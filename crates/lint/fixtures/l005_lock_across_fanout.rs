//! L005 fixture: a mutex guard held in a scope that also fans out.

pub fn tally(m: &std::sync::Mutex<u32>, items: &[u32]) -> u32 {
    let guard = m.lock();
    let doubled = par_map(items, 2, |_, x| x * 2);
    let _ = (guard, doubled);
    0
}
