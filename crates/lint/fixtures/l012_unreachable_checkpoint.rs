//! L012 fixture: a sweep whose solver call *resolves* in the call
//! graph — and the resolved callee provably never reaches an
//! `mcpat_guard` checkpoint. Unlike L008 (opaque callee, syntactic
//! fallback) this is hard interprocedural evidence.

pub struct Candidate {
    pub width: f64,
}

/// Resolvable but checkpoint-free: two frames of pure arithmetic.
pub fn build_inner(width: f64) -> f64 {
    width * 2.0 + 1.0
}

pub fn build(c: &Candidate) -> f64 {
    build_inner(c.width)
}

pub fn sweep(candidates: &[Candidate]) -> f64 {
    let mut best = f64::INFINITY;
    // BAD (L012): `build` resolves to the fn above, which never calls
    // check()/budget_check() — a deadline cannot interrupt this loop.
    for c in candidates {
        let score = build(c);
        if score < best {
            best = score;
        }
    }
    best
}
