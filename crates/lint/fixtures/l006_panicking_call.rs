//! L006 fixture: unwrap in non-test library code.

pub fn force(v: Option<u32>) -> u32 {
    v.unwrap()
}
