//! L009 fixture: a marked hot region that hits the global allocator on
//! every candidate — fresh `Vec`s, formatted labels, and clones inside
//! the loop instead of arena scratch or hoisted lanes.

pub fn score_candidates(cells: &[(usize, usize)]) -> f64 {
    let mut best = f64::INFINITY;
    // lint: hot
    for &(rows, cols) in cells {
        let lanes: Vec<f64> = Vec::new();
        let label = format!("{rows}x{cols}");
        let copy = label.clone();
        let score = (rows.max(cols).max(lanes.len().max(copy.len()))) as f64;
        if score < best {
            best = score;
        }
    }
    // lint: hot end
    best
}
