//! L005 fixture: a mutex guard held in a scope that submits work to
//! the persistent thread pool.

pub fn enqueue(m: &std::sync::Mutex<u32>, shared: &'static Shared, tasks: Vec<TaskRef>) {
    let guard = m.lock();
    submit(shared, tasks);
    help_until(shared, &|| true);
    let _ = guard;
}
