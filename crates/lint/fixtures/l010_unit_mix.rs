//! L010 fixture: quantities whose identifier suffixes carry different
//! units (or the same unit at different scales) must not meet in
//! additive or comparison operators. Multiplication and division are
//! conversion seams and stay exempt.

pub fn mixed_scale_add(leakage_w: f64, dynamic_mw: f64) -> f64 {
    // BAD: watts + milliwatts without a conversion.
    leakage_w + dynamic_mw
}

pub fn mixed_dimension_compare(access_ps: f64, budget_nj: f64) -> bool {
    // BAD: a time compared against an energy.
    access_ps < budget_nj
}

pub fn mixed_assign(mut total_w: f64, extra_uw: f64) -> f64 {
    // BAD: accumulating microwatts into a watt total.
    total_w += extra_uw;
    total_w
}

pub fn conversion_is_fine(energy_nj: f64, delay_ps: f64) -> f64 {
    // OK: × and ÷ are how units legitimately combine.
    energy_nj * delay_ps
}

pub fn same_unit_is_fine(read_nj: f64, write_nj: f64) -> f64 {
    read_nj + write_nj
}
