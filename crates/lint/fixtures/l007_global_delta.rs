//! L007 fixture: a before/after delta over the global solve-cache
//! counters. Any concurrent build bills its misses into this window.

use mcpat_array::memo;

pub fn cache_misses_of(mut work: impl FnMut()) -> u64 {
    let before = memo::stats();
    work();
    let after = memo::stats();
    after.misses.saturating_sub(before.misses)
}
