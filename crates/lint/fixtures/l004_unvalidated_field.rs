//! L004 fixture: a config struct whose validate() forgets a field.

pub struct WidgetConfig {
    pub checked: u32,
    pub forgotten: u32,
}

impl WidgetConfig {
    pub fn validate(&self) -> bool {
        self.checked > 0
    }
}
