//! L003 fixture: an environment read outside the knobs module.

pub fn threads() -> Option<String> {
    std::env::var("MCPAT_THREADS").ok()
}
