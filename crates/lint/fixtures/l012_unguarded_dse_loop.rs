//! L012 fixture: a DSE-style generator/pruning loop whose per-candidate
//! work (`config_at` enumeration + `rebuild_with` delta probe) resolves
//! in the call graph and provably never reaches an `mcpat_guard`
//! checkpoint. Million-candidate sweeps iterate exactly this shape, so
//! a missing budget checkpoint here means deadlines and cooperative
//! cancellation cannot interrupt the sweep.

pub struct Grid {
    pub clocks: Vec<f64>,
}

pub struct Chip {
    pub power: f64,
}

/// Resolvable but checkpoint-free enumeration.
pub fn config_at(grid: &Grid, cursor: usize) -> Option<f64> {
    grid.clocks.get(cursor).copied()
}

/// Resolvable but checkpoint-free delta probe.
pub fn rebuild_with(base: &Chip, clock: f64) -> Chip {
    Chip {
        power: base.power * clock / 1.0e9,
    }
}

pub fn sweep(grid: &Grid, base: &Chip) -> f64 {
    let mut best = f64::INFINITY;
    let mut cursor = 0;
    // BAD (L012): the generator loop's `config_at` and `rebuild_with`
    // both resolve to the checkpoint-free fns above — a deadline cannot
    // interrupt this candidate stream.
    while let Some(clock) = config_at(grid, cursor) {
        let probe = rebuild_with(base, clock);
        if probe.power < best {
            best = probe.power;
        }
        cursor += 1;
    }
    best
}
