//! L001 fixture: panicking slice index in library code.

pub fn first(v: &[u32]) -> u32 {
    v[0]
}
