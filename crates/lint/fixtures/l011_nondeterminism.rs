//! L011 fixture: result-affecting code must not iterate hash-ordered
//! containers or consult the host's thread configuration — both make
//! model output vary run to run or host to host.

use std::collections::HashMap;

pub fn sum_in_hash_order(parts: &HashMap<String, f64>) -> f64 {
    let mut total = 0.0;
    // BAD: fold order follows the hash seed, so float summation
    // differs between runs.
    for (_, w) in parts.iter() {
        total += w;
    }
    total
}

pub fn keys_in_hash_order(parts: &HashMap<String, f64>) -> Vec<String> {
    // BAD: the report's row order would change run to run.
    parts.keys().cloned().collect()
}

pub fn host_shaped_result(work: &[f64]) -> f64 {
    // BAD: the chunk size (and thus float fold order) depends on the
    // machine the model runs on.
    let lanes = std::thread::available_parallelism().map_or(1, usize::from);
    work.chunks(work.len() / lanes.max(1)).map(|c| c.iter().sum::<f64>()).sum()
}
