//! L002 fixture: raw float equality outside a canonical-bits seam.

pub fn at_origin(x: f64) -> bool {
    x == 0.0
}
