//! L008 fixture: a candidate sweep calling the array solver with no
//! budget checkpoint in the loop body — a deadline or cancel cannot
//! interrupt it until the whole sweep finishes.

use mcpat_array::{ArraySpec, OptTarget};
use mcpat_tech::TechParams;

pub fn sweep_all(tech: &TechParams, specs: &[ArraySpec]) -> usize {
    let mut solved = 0;
    for spec in specs {
        if spec.solve(tech, OptTarget::EnergyDelay).is_ok() {
            solved += 1;
        }
    }
    solved
}
